"""E1 (Fig. 5 / §3): the scientific-discovery execution statistics.

Paper: "out of an input dataset of 11 papers, the pipeline managed to
extract 6 publicly available datasets related to colorectal cancers,
together with the associated URLs. ... the workload was executed in about
240s and with a cost of about 0.35 USD" under MaxQuality.
"""

import pytest

import repro as pz
from repro.evaluation.metrics import extraction_quality

PAPER_RECORDS = 6
PAPER_RUNTIME_SECONDS = 240.0
PAPER_COST_USD = 0.35


def test_e1_scientific_discovery_fig5(
    benchmark, scientific_pipeline, papers_source
):
    def run():
        return pz.Execute(scientific_pipeline, policy=pz.MaxQuality())

    records, stats = benchmark(run)

    # --- the Fig. 5 payload -------------------------------------------
    benchmark.extra_info.update({
        "paper_records": PAPER_RECORDS,
        "measured_records": len(records),
        "paper_runtime_s": PAPER_RUNTIME_SECONDS,
        "measured_runtime_s": round(stats.total_time_seconds, 1),
        "paper_cost_usd": PAPER_COST_USD,
        "measured_cost_usd": round(stats.total_cost_usd, 4),
        "plan": stats.plan_stats.plan_describe,
        "plans_considered": stats.plans_considered,
    })

    # Exact reproduction of the headline count.
    assert len(records) == PAPER_RECORDS
    # Every extracted dataset carries a valid URL (the authors "manually
    # verified the validity of these URLs").
    assert all(r.url and r.url.startswith("http") for r in records)
    # Extraction is perfect against ground truth under MaxQuality.
    card = extraction_quality(
        records, list(papers_source), ["name", "description", "url"]
    )
    assert card.f1 == 1.0
    # Runtime and cost land within 2x of the paper's measurements.
    assert PAPER_RUNTIME_SECONDS / 2 <= stats.total_time_seconds \
        <= PAPER_RUNTIME_SECONDS * 2
    assert PAPER_COST_USD / 2 <= stats.total_cost_usd <= PAPER_COST_USD * 2


def test_e1_per_operator_breakdown(benchmark, scientific_pipeline):
    """Fig. 5's per-operator view: filter feeds 8 papers to the convert."""

    def run():
        return pz.Execute(scientific_pipeline, policy=pz.MaxQuality())

    _, stats = benchmark(run)
    by_label = {
        op.op_label.split("[")[0]: op
        for op in stats.plan_stats.operator_stats
    }
    scan = by_label["MarshalAndScan"]
    assert scan.records_in == scan.records_out == 11
    filter_stats = next(
        op for op in stats.plan_stats.operator_stats if "Filter" in op.op_label
    )
    assert filter_stats.records_in == 11
    assert filter_stats.records_out == 8
    convert_stats = next(
        op for op in stats.plan_stats.operator_stats
        if "Convert" in op.op_label
    )
    assert convert_stats.records_in == 8
    assert convert_stats.records_out == 6
    benchmark.extra_info["operators"] = [
        op.to_dict() for op in stats.plan_stats.operator_stats
    ]
