"""E5 (Fig. 3): dataset registration through the chat interface.

"the user instructs PalimpChat to load an input dataset from PDFs of
scientific papers contained in a local folder ... The core PalimpChat
system includes a native PDFfile schema, which is automatically chosen to
parse the files in this dataset given their extension."
"""

import pytest

from repro.chat.session import PalimpChatSession
from repro.core.builtin_schemas import PDFFile
from repro.core.sources import DirectorySource


def test_e5_folder_registration_via_chat(benchmark, papers_dir):
    def run():
        session = PalimpChatSession()
        reply = session.chat(f'Load the papers from "{papers_dir}"')
        return session, reply

    session, reply = benchmark(run)
    benchmark.extra_info["reply"] = reply.text

    assert reply.tool_sequence == ["load_dataset"]
    assert "11 records" in reply.text
    # The native PDFFile schema was auto-chosen from the extension.
    assert "PDFFile" in reply.text
    assert session.workspace.current.schema is PDFFile


def test_e5_record_count_equals_file_count(benchmark, papers_dir):
    def run():
        source = DirectorySource(papers_dir, dataset_id="e5")
        return len(source), sum(1 for _ in source)

    declared, scanned = benchmark(run)
    files = len(list(papers_dir.glob("*.pdf")))
    benchmark.extra_info.update({"files": files, "records": scanned})
    assert declared == scanned == files == 11


def test_e5_text_layer_extracted(benchmark, papers_dir):
    def run():
        source = DirectorySource(papers_dir, dataset_id="e5b")
        return list(source)

    records = benchmark(run)
    # Every parsed PDF has a non-trivial text layer and a page count.
    for record in records:
        assert len(record.text_contents) > 500
        assert record.page_count >= 1
