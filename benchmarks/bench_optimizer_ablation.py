"""E9 (ablation): what the optimizer buys.

Compares the optimizer's budgeted pick against fixed strategies (always the
biggest model, always the smallest model, the median plan of the space), and
naive estimation against sentinel-calibrated estimation.
"""

import pytest

import repro as pz
from repro.corpora.papers import PAPERS_PREDICATE
from repro.evaluation.metrics import extraction_quality
from repro.llm.models import ModelCard, ModelRegistry, default_registry
from repro.optimizer.optimizer import Optimizer


def single_model_registry(name):
    base = default_registry().get(name)
    cards = [base] + default_registry().embedding_models()
    return ModelRegistry(cards)


def execute_and_score(pipeline, source, **kwargs):
    records, stats = pz.Execute(pipeline, **kwargs)
    card = extraction_quality(
        records, list(source), ["name", "description", "url"]
    )
    return {
        "f1": round(card.f1, 3),
        "cost_usd": round(stats.total_cost_usd, 4),
        "plan": stats.plan_stats.plan_describe,
    }


def test_e9_optimizer_vs_fixed_model_choices(
    benchmark, scientific_pipeline, papers_source
):
    def run():
        results = {}
        # The optimizer, under a cost budget that rules out the big model.
        results["optimizer@budget"] = execute_and_score(
            scientific_pipeline, papers_source,
            policy=pz.MaxQualityAtFixedCost(0.08),
        )
        # Fixed strategies: always-biggest and always-smallest registries.
        results["always-gpt-4o"] = execute_and_score(
            scientific_pipeline, papers_source,
            policy=pz.MaxQuality(),
            models=single_model_registry("gpt-4o"),
        )
        results["always-llama-3-8b"] = execute_and_score(
            scientific_pipeline, papers_source,
            policy=pz.MaxQuality(),
            models=single_model_registry("llama-3-8b"),
        )
        return results

    results = benchmark(run)
    benchmark.extra_info["results"] = results

    budgeted = results["optimizer@budget"]
    biggest = results["always-gpt-4o"]
    smallest = results["always-llama-3-8b"]

    # The budgeted optimizer undercuts the big model's cost...
    assert budgeted["cost_usd"] < biggest["cost_usd"]
    # ...while beating the small model's quality.
    assert budgeted["f1"] >= smallest["f1"]
    # And the full-quality plan remains the quality ceiling.
    assert biggest["f1"] >= budgeted["f1"]


def test_e9_sentinel_calibration(benchmark, scientific_pipeline, papers_source):
    """Sample-based estimates replace priors with observed statistics."""

    def run():
        naive = Optimizer(pz.MinCost()).optimize(
            scientific_pipeline.logical_plan(), papers_source
        )
        sampled = Optimizer(pz.MinCost(), sample_size=3).optimize(
            scientific_pipeline.logical_plan(), papers_source
        )
        return naive, sampled

    naive, sampled = benchmark(run)
    benchmark.extra_info.update({
        "naive_estimate": naive.chosen.estimate.describe(),
        "sampled_estimate": sampled.chosen.estimate.describe(),
        "sentinel_cost_usd": round(sampled.sentinel_cost_usd, 4),
    })
    assert not naive.chosen.estimate.from_sample
    assert sampled.chosen.estimate.from_sample
    assert sampled.sentinel_runs > 0
    # Calibration is paid for with a small amount of sampled execution.
    assert 0 < sampled.sentinel_cost_usd < 0.2


def test_e9_plan_space_ablation(benchmark, scientific_pipeline, papers_source):
    """Shrinking the strategy space (no token-reduction, no code-synthesis)
    makes the cheapest available plan more expensive."""

    def run():
        full = Optimizer(pz.MinCost()).optimize(
            scientific_pipeline.logical_plan(), papers_source
        )
        shrunk = Optimizer(
            pz.MinCost(),
            include_token_reduction=False,
            include_code_synthesis=False,
            include_embedding_filter=False,
        ).optimize(scientific_pipeline.logical_plan(), papers_source)
        return full, shrunk

    full, shrunk = benchmark(run)
    benchmark.extra_info.update({
        "full_space": full.plans_considered,
        "shrunk_space": shrunk.plans_considered,
        "full_min_cost": round(full.chosen.estimate.cost_usd, 4),
        "shrunk_min_cost": round(shrunk.chosen.estimate.cost_usd, 4),
    })
    assert shrunk.plans_considered < full.plans_considered
    assert full.chosen.estimate.cost_usd <= shrunk.chosen.estimate.cost_usd


def test_e9_sentinel_measures_quality(benchmark, scientific_pipeline,
                                      papers_source):
    """Sentinel runs score each frontier plan's sample output against the
    oracle-perfect reference, replacing the quality prior with measured F1."""

    def run():
        return Optimizer(pz.MaxQuality(), sample_size=5).optimize(
            scientific_pipeline.logical_plan(), papers_source
        )

    report = benchmark(run)
    sampled = [c for c in report.candidates if c.estimate.from_sample]
    benchmark.extra_info["sampled_plans"] = len(sampled)
    benchmark.extra_info["chosen_quality"] = report.chosen.estimate.quality
    assert sampled
    assert all(0.0 <= c.estimate.quality <= 1.0 for c in sampled)
    # On the curated corpus the chosen plan's measured sample F1 is perfect.
    assert report.chosen.estimate.quality == 1.0
