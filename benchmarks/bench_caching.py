"""E11 (ablation): semantic call caching.

Re-running a pipeline (or re-asking the same semantic question within a
run) should not pay for the same model call twice.  Measures cold vs warm
execution with a shared :class:`~repro.llm.cache.CallCache`.
"""

import pytest

import repro as pz
from repro.llm.cache import CallCache


def test_e11_warm_rerun_is_free(benchmark, scientific_pipeline):
    def run():
        cache = CallCache()
        _, cold = pz.Execute(
            scientific_pipeline, policy=pz.MaxQuality(), cache=cache
        )
        records, warm = pz.Execute(
            scientific_pipeline, policy=pz.MaxQuality(), cache=cache
        )
        return cold, warm, records, cache

    cold, warm, records, cache = benchmark(run)
    benchmark.extra_info.update({
        "cold_cost_usd": round(cold.total_cost_usd, 4),
        "warm_cost_usd": round(warm.total_cost_usd, 4),
        "cold_time_s": round(cold.total_time_seconds, 1),
        "warm_time_s": round(warm.total_time_seconds, 1),
        "cache_hit_rate": round(cache.stats.hit_rate, 3),
    })
    assert len(records) == 6  # cached answers are identical
    assert warm.total_cost_usd == 0.0
    assert warm.total_time_seconds < cold.total_time_seconds / 20
    assert cache.stats.hit_rate > 0.4


def test_e11_cache_dedupes_within_a_run(benchmark, scientific_pipeline):
    """Conventional extraction re-asks per-field questions; a cache folds
    the duplicate sub-questions of the one-to-many refinement passes."""

    def run():
        cache = CallCache()
        _, stats = pz.Execute(
            scientific_pipeline, policy=pz.MaxQuality(), cache=cache
        )
        return stats, cache

    stats, cache = benchmark(run)
    benchmark.extra_info.update({
        "lookups": cache.stats.lookups,
        "hits": cache.stats.hits,
        "cost_usd": round(stats.total_cost_usd, 4),
    })
    # Every semantic call consults the cache; within a single cold run the
    # hit count is small but the machinery is exercised end-to-end.
    assert cache.stats.lookups >= 40
