"""Shared benchmark fixtures: corpora, pipelines, and result recording.

Every benchmark regenerates one of the paper's evaluation artifacts (see
DESIGN.md's experiment index).  Reproduced quantities — record counts,
simulated runtime/cost, quality scores — are attached to
``benchmark.extra_info`` so they appear in ``--benchmark-json`` output, and
asserted against the *shape* of the paper's numbers.
"""

from __future__ import annotations

import pytest

import repro as pz
from repro.core.sources import DirectorySource
from repro.corpora.legal import generate_legal_corpus
from repro.corpora.papers import generate_paper_corpus
from repro.corpora.realestate import generate_realestate_corpus
from repro.corpora.papers import CLINICAL_FIELDS, PAPERS_PREDICATE


@pytest.fixture(scope="session")
def papers_dir(tmp_path_factory):
    return generate_paper_corpus(tmp_path_factory.mktemp("papers"))


@pytest.fixture(scope="session")
def legal_dir(tmp_path_factory):
    return generate_legal_corpus(tmp_path_factory.mktemp("legal"))


@pytest.fixture(scope="session")
def realestate_dir(tmp_path_factory):
    return generate_realestate_corpus(tmp_path_factory.mktemp("realestate"))


@pytest.fixture()
def papers_source(papers_dir):
    return DirectorySource(papers_dir, dataset_id="sigmod-demo-bench")


@pytest.fixture()
def sigmod_registered(papers_dir):
    from repro.core.sources import register_datasource

    source = DirectorySource(papers_dir, dataset_id="sigmod-demo")
    register_datasource(source, overwrite=True)
    return source


def clinical_schema():
    return pz.make_schema(
        "ClinicalData",
        "A schema for extracting clinical data datasets from papers.",
        CLINICAL_FIELDS,
    )


@pytest.fixture()
def scientific_pipeline(papers_source):
    """The Fig. 6 logical plan over the 11-paper corpus."""
    return (
        pz.Dataset(papers_source)
        .filter(PAPERS_PREDICATE)
        .convert(clinical_schema(), cardinality=pz.Cardinality.ONE_TO_MANY)
    )
