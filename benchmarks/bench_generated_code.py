"""E6 (Fig. 6): fidelity of the generated Palimpzest program.

"The final code generated can be seen in Figure 6 ... users may continue to
iterate on the code produced either through the chat interface or by
downloading a Jupyter notebook."  The generated program must (a) contain the
Fig. 6 pipeline stages and (b) re-execute to the same result as the chat run.
"""

import json

import pytest

from repro.chat.codegen import exec_program
from repro.chat.session import PalimpChatSession


def build_session():
    session = PalimpChatSession()
    session.chat("Load the papers from the sigmod-demo dataset")
    session.chat(
        "Keep only the papers about colorectal cancer and extract whatever "
        "public dataset is used by the study"
    )
    session.chat("Maximize quality and run the pipeline")
    return session


def test_e6_generated_code_matches_fig6(benchmark, sigmod_registered):
    session = build_session()

    def run():
        return session.generated_code()

    code = benchmark(run)
    benchmark.extra_info["generated_code"] = code

    # The Fig. 6 structure: input dataset, filter, dynamic schema,
    # one-to-many convert, MaxQuality execute.
    assert "pz.Dataset(source='sigmod-demo')" in code
    assert "dataset.filter(" in code
    assert "pz.make_schema(" in code
    assert "pz.Cardinality.ONE_TO_MANY" in code
    assert "policy = pz.MaxQuality()" in code
    assert "records, execution_stats = pz.Execute(dataset, policy=policy)" \
        in code


def test_e6_reexecution_equivalence(benchmark, sigmod_registered):
    session = build_session()
    chat_names = sorted(r.name for r in session.last_records)

    def run():
        return exec_program(session.generated_code())

    namespace = benchmark(run)
    regenerated = sorted(r.name for r in namespace["records"])
    benchmark.extra_info.update({
        "chat_records": chat_names,
        "reexecuted_records": regenerated,
    })
    assert regenerated == chat_names
    assert namespace["execution_stats"].records_out == 6


def test_e6_notebook_download(benchmark, sigmod_registered, tmp_path):
    session = build_session()

    def run():
        return session.export_notebook(tmp_path / "session.ipynb")

    path = benchmark(run)
    data = json.loads(path.read_text())
    assert data["nbformat"] == 4
    code_cells = [
        c for c in data["cells"] if c["cell_type"] == "code"
    ]
    assert code_cells, "the notebook must contain the generated snippets"
