"""E2 (§2.1): the policy trade-off table.

The optimizer claim: the same logical plan, executed under different
user preferences, yields different physical plans with the promised
trade-offs — MinCost is dramatically cheaper than MaxQuality, MinTime is
dramatically faster, and MaxQuality's output quality dominates both.
"""

import pytest

import repro as pz
from repro.corpora.papers import PAPERS_PREDICATE
from repro.evaluation.metrics import extraction_quality


def run_policy(pipeline, policy, source):
    records, stats = pz.Execute(pipeline, policy=policy)
    card = extraction_quality(
        records, list(source), ["name", "description", "url"]
    )
    return {
        "policy": policy.describe(),
        "records": len(records),
        "cost_usd": round(stats.total_cost_usd, 4),
        "time_s": round(stats.total_time_seconds, 1),
        "f1": round(card.f1, 3),
        "plan": stats.plan_stats.plan_describe,
    }


def test_e2_policy_tradeoff_table(
    benchmark, scientific_pipeline, papers_source
):
    policies = [pz.MaxQuality(), pz.MinCost(), pz.MinTime()]

    def run():
        return {
            policy.name: run_policy(scientific_pipeline, policy, papers_source)
            for policy in policies
        }

    rows = benchmark(run)
    benchmark.extra_info["table"] = rows

    quality_row = rows["max-quality"]
    cost_row = rows["min-cost"]
    time_row = rows["min-time"]

    # Who wins each column, and by roughly what factor.
    assert cost_row["cost_usd"] < quality_row["cost_usd"] / 10
    assert time_row["time_s"] < quality_row["time_s"] / 5
    assert quality_row["f1"] >= cost_row["f1"]
    assert quality_row["f1"] >= time_row["f1"]
    assert quality_row["f1"] == 1.0
    # The three policies actually choose different physical plans.
    assert len({row["plan"] for row in rows.values()}) >= 2


def test_e2_constrained_policies(benchmark, scientific_pipeline, papers_source):
    """'maximize the output quality while being under a certain latency'."""

    def run():
        unconstrained = run_policy(
            scientific_pipeline, pz.MaxQuality(), papers_source
        )
        budgeted = run_policy(
            scientific_pipeline,
            pz.MaxQualityAtFixedCost(0.05),
            papers_source,
        )
        timed = run_policy(
            scientific_pipeline,
            pz.MaxQualityAtFixedTime(60.0),
            papers_source,
        )
        return unconstrained, budgeted, timed

    unconstrained, budgeted, timed = benchmark(run)
    benchmark.extra_info.update({
        "unconstrained": unconstrained,
        "cost_budget_0.05": budgeted,
        "time_budget_60s": timed,
    })
    # The constraints bind: budget plans respect their caps (with estimate
    # slack) and trade away some quality.
    assert budgeted["cost_usd"] < unconstrained["cost_usd"]
    assert timed["time_s"] < unconstrained["time_s"]
    assert budgeted["f1"] <= unconstrained["f1"]


@pytest.fixture(scope="module")
def hard_papers(tmp_path_factory):
    """A harder corpus (difficulty 0.6) where cheap plans visibly lose."""
    from repro.corpora.papers import generate_paper_corpus

    directory = tmp_path_factory.mktemp("hard-papers")
    return generate_paper_corpus(
        directory, n_papers=20, n_relevant=14, n_with_datasets=10,
        difficulty=0.6, seed=5,
    )


def test_e2_quality_gap_on_hard_corpus(benchmark, hard_papers):
    """On ambiguous documents the MaxQuality plan's F1 clearly dominates
    the cheap plans — the trade-off the easy demo corpus masks."""
    from repro.core.sources import DirectorySource

    source = DirectorySource(hard_papers, dataset_id="hard-papers")

    def build():
        Clinical = pz.make_schema(
            "ClinicalDataHard", "Datasets from papers.",
            {"name": "The dataset name",
             "description": "A short description",
             "url": "The public URL"},
        )
        return (
            pz.Dataset(source)
            .filter(PAPERS_PREDICATE)
            .convert(Clinical, cardinality=pz.Cardinality.ONE_TO_MANY)
        )

    def run():
        return {
            policy.name: run_policy(build(), policy, source)
            for policy in (pz.MaxQuality(), pz.MinCost())
        }

    rows = benchmark(run)
    benchmark.extra_info["hard_corpus_table"] = rows
    assert rows["max-quality"]["f1"] >= rows["min-cost"]["f1"] + 0.1
    assert rows["min-cost"]["cost_usd"] < rows["max-quality"]["cost_usd"] / 20
