"""E4 (Fig. 4): chat-driven pipeline construction and decomposition.

The figure shows one natural-language request decomposing into a chain of
tool invocations (filter -> schema generation -> convert), followed by
policy selection and execution.  This benchmark replays the full recorded
conversation and asserts the tool chain.
"""

import pytest

from repro.chat.session import PalimpChatSession

FIG4_REQUEST = (
    "I am interested in papers that are about colorectal cancer, and I "
    "would like to extract the dataset name, description and url for any "
    "public dataset used by the study"
)


def run_conversation():
    session = PalimpChatSession()
    turns = [
        session.chat("Load the papers from the sigmod-demo dataset"),
        session.chat(FIG4_REQUEST),
        session.chat("Maximize quality and run the pipeline"),
        session.chat("How much did the LLM invocations cost?"),
    ]
    return session, turns


def test_e4_chat_decomposition(benchmark, sigmod_registered):
    session, turns = benchmark(run_conversation)

    sequences = [t.tool_sequence for t in turns]
    benchmark.extra_info["tool_sequences"] = sequences
    benchmark.extra_info["agent_cost_usd"] = round(
        session.agent_cost_usd(), 4
    )

    # Fig. 3: dataset registration.
    assert sequences[0] == ["load_dataset"]
    # Fig. 4: one request -> three chained tool invocations.
    assert sequences[1] == [
        "filter_dataset", "create_schema", "convert_dataset"
    ]
    # Policy + execution.
    assert sequences[2] == ["set_optimization_target", "execute_pipeline"]
    # Stats query.
    assert sequences[3] == ["get_execution_stats"]

    # The chat-run pipeline reproduces the E1 result.
    assert len(session.last_records) == 6
    # The agent's own reasoning was metered (it is an LLM too).
    assert session.agent_cost_usd() > 0


def test_e4_state_restore(benchmark, sigmod_registered):
    """Beaker's 'restore previous notebook states' over a chat session."""

    def run():
        session = PalimpChatSession()
        first = session.chat("Load the papers from the sigmod-demo dataset")
        session.chat("Keep only the papers about colorectal cancer")
        depth_before = len(session.workspace.current.logical_plan())
        session.restore(first.snapshot_index)
        depth_after = len(session.workspace.current.logical_plan())
        return depth_before, depth_after

    depth_before, depth_after = benchmark(run)
    assert depth_before == 2
    assert depth_after == 1
