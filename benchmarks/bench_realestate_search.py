"""E8: the real-estate-search scenario end-to-end.

Semantic filtering of free-text listings, structured extraction, and
conventional aggregation (average price, per-city group-by) over the
extracted attributes — the "mix LLMs and traditional data processing"
vision of §4.
"""

import pytest

import repro as pz
from repro.core.sources import DirectorySource
from repro.corpora.realestate import LISTING_FIELDS, REALESTATE_PREDICATE


@pytest.fixture()
def source(realestate_dir):
    return DirectorySource(realestate_dir, dataset_id="realestate-bench")


def listing_schema(name="Listing"):
    return pz.make_schema(name, "A structured listing.", LISTING_FIELDS)


def test_e8_waterfront_search_with_aggregation(benchmark, source):
    def run():
        pipeline = (
            pz.Dataset(source)
            .filter(REALESTATE_PREDICATE)
            .convert(listing_schema())
            .average("price")
        )
        return pz.Execute(pipeline, policy=pz.MaxQuality())

    records, stats = benchmark(run)
    average_price = records[0].average_price
    benchmark.extra_info.update({
        "average_waterfront_price": average_price,
        "cost_usd": round(stats.total_cost_usd, 4),
        "time_s": round(stats.total_time_seconds, 1),
    })
    assert len(records) == 1
    # Waterfront carries a +$250k premium in the corpus.
    assert average_price > 500_000


def test_e8_groupby_city(benchmark, source):
    def run():
        pipeline = (
            pz.Dataset(source)
            .convert(listing_schema("Listing2"))
            .groupby(["city"], [("count", None), ("avg", "price")])
        )
        return pz.Execute(pipeline, policy=pz.MaxQuality())

    records, _ = benchmark(run)
    table = {r.city: (r.count, r.average_price) for r in records}
    benchmark.extra_info["by_city"] = {
        city: {"count": count, "avg_price": avg}
        for city, (count, avg) in table.items()
    }
    assert len(table) == 4  # the corpus covers four cities
    assert sum(count for count, _ in table.values()) == 24


def test_e8_semantic_retrieve(benchmark, source):
    def run():
        pipeline = pz.Dataset(source).retrieve(
            "waterfront home with a private dock", k=5
        )
        return pz.Execute(pipeline)

    records, stats = benchmark(run)
    benchmark.extra_info["retrieved"] = [r.filename for r in records]
    assert len(records) == 5
    # Top-k retrieval surfaces mostly waterfront listings.
    from repro.llm.oracle import global_oracle

    hits = sum(
        1 for r in records
        if global_oracle().predicate_truth(
            r.document_text(), REALESTATE_PREDICATE
        )
    )
    assert hits >= 3
