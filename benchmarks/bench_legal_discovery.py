"""E7: the legal-discovery scenario end-to-end.

Responsive-document review (semantic filter) plus deal-term extraction,
reported with the same records/runtime/cost statistics as E1 — and the
quality gap between model tiers, which is wider here because legal prose is
registered with a higher difficulty than the papers corpus.
"""

import pytest

import repro as pz
from repro.core.sources import DirectorySource
from repro.corpora.legal import CONTRACT_FIELDS, LEGAL_PREDICATE
from repro.evaluation.metrics import filter_quality


@pytest.fixture()
def source(legal_dir):
    return DirectorySource(legal_dir, dataset_id="legal-bench")


def build_pipeline(source):
    Contract = pz.make_schema(
        "Contract", "Deal terms from responsive documents.", CONTRACT_FIELDS
    )
    return pz.Dataset(source).filter(LEGAL_PREDICATE).convert(Contract)


def test_e7_legal_discovery_end_to_end(benchmark, source):
    pipeline = build_pipeline(source)

    def run():
        return pz.Execute(pipeline, policy=pz.MaxQuality())

    records, stats = benchmark(run)
    benchmark.extra_info.update({
        "records": len(records),
        "cost_usd": round(stats.total_cost_usd, 4),
        "time_s": round(stats.total_time_seconds, 1),
        "plan": stats.plan_stats.plan_describe,
    })
    # 6 responsive documents; allow the error process a little slack.
    assert 4 <= len(records) <= 8
    buyers = {r.buyer for r in records if r.buyer}
    assert "Harbor Holdings LLC" in buyers
    deal_values = [r.deal_value for r in records if r.deal_value]
    assert any("million" in str(v) for v in deal_values)


def test_e7_model_tier_gap_on_hard_documents(benchmark, source):
    """Cheap plans visibly lose quality on the high-difficulty corpus."""

    def run():
        scores = {}
        for policy in (pz.MaxQuality(), pz.MinCost()):
            pipeline = pz.Dataset(source).filter(LEGAL_PREDICATE)
            records, stats = pz.Execute(pipeline, policy=policy)
            card = filter_quality(records, list(source), LEGAL_PREDICATE)
            scores[policy.name] = {
                "f1": round(card.f1, 3),
                "cost_usd": round(stats.total_cost_usd, 4),
            }
        return scores

    scores = benchmark(run)
    benchmark.extra_info["scores"] = scores
    assert scores["max-quality"]["f1"] >= scores["min-cost"]["f1"]
    assert scores["min-cost"]["cost_usd"] < scores["max-quality"]["cost_usd"]
