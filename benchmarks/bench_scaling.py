"""E10 (ablation): scaling with corpus size and execution parallelism.

The demo motivates Palimpzest with "large collections of unstructured
data"; this benchmark verifies that simulated cost scales linearly with
corpus size and that the parallel executor delivers near-linear speedup on
LLM-bound pipelines.
"""

import pytest

import repro as pz
from repro.core.sources import DirectorySource
from repro.corpora.papers import (
    CLINICAL_FIELDS,
    PAPERS_PREDICATE,
    generate_paper_corpus,
)

SIZES = (10, 40, 120)


@pytest.fixture(scope="module")
def corpora(tmp_path_factory):
    directories = {}
    for size in SIZES:
        directory = tmp_path_factory.mktemp(f"scale-{size}")
        generate_paper_corpus(
            directory,
            n_papers=size,
            n_relevant=int(size * 0.7),
            n_with_datasets=int(size * 0.5),
        )
        directories[size] = directory
    return directories


def pipeline_for(directory, size):
    source = DirectorySource(directory, dataset_id=f"scale-{size}")
    Clinical = pz.make_schema(
        f"Clinical{size}", "Clinical datasets.", CLINICAL_FIELDS
    )
    return (
        pz.Dataset(source)
        .filter(PAPERS_PREDICATE)
        .convert(Clinical, cardinality=pz.Cardinality.ONE_TO_MANY)
    )


def test_e10_cost_scales_linearly_with_corpus(benchmark, corpora):
    def run():
        measurements = {}
        for size, directory in corpora.items():
            _, stats = pz.Execute(
                pipeline_for(directory, size), policy=pz.MaxQuality()
            )
            measurements[size] = {
                "cost_usd": stats.total_cost_usd,
                "time_s": stats.total_time_seconds,
            }
        return measurements

    measurements = benchmark(run)
    benchmark.extra_info["measurements"] = {
        str(k): {m: round(v, 3) for m, v in row.items()}
        for k, row in measurements.items()
    }
    small = measurements[SIZES[0]]["cost_usd"] / SIZES[0]
    large = measurements[SIZES[-1]]["cost_usd"] / SIZES[-1]
    # Per-record cost is flat (within 30%) across a 12x corpus growth.
    assert large == pytest.approx(small, rel=0.3)


def test_e10_parallel_speedup(benchmark, corpora):
    directory = corpora[SIZES[1]]

    def run():
        results = {}
        for workers in (1, 4, 8):
            _, stats = pz.Execute(
                pipeline_for(directory, SIZES[1]),
                policy=pz.MaxQuality(),
                max_workers=workers,
            )
            results[workers] = stats.total_time_seconds
        return results

    results = benchmark(run)
    benchmark.extra_info["runtime_by_workers"] = {
        str(k): round(v, 1) for k, v in results.items()
    }
    speedup_4 = results[1] / results[4]
    speedup_8 = results[1] / results[8]
    assert speedup_4 > 2.5
    assert speedup_8 > speedup_4
    # Cost is work, not wall-clock: identical across worker counts —
    # asserted implicitly by linear-cost test above; here check ordering.
    assert results[8] < results[4] < results[1]
