"""E12 (ablation): documents that exceed the context window.

When the average document is bigger than a model's window, the planner
replaces the single-call convert strategies with the chunked map-reduce
strategy for that model (and truncates filter contexts), keeping small
models usable on long documents at a quality discount.
"""

import pytest

import repro as pz
from repro.core.builtin_schemas import TextFile
from repro.core.sources import MemorySource
from repro.llm.models import ModelCard, ModelRegistry, default_registry

Info = pz.make_schema(
    "Info", "Key facts.",
    {"url": "The URL mentioned", "email": "The contact e-mail"},
)


def long_documents(n=6):
    docs = []
    for i in range(n):
        docs.append(
            f"Report {i}. " + "filler prose segment " * 150
            + f" The data portal is https://portal{i}.example.org. "
            + "more filler content " * 150
            + f" Contact owner{i}@example.org with questions. "
            + "trailing notes " * 80
        )
    return MemorySource(docs, dataset_id="long-docs", schema=TextFile)


def small_window_registry(window=400):
    small = ModelCard(
        name="small-window-model", provider="bench",
        usd_per_1m_input=0.2, usd_per_1m_output=0.4,
        quality=1.0, context_window=window,
    )
    return ModelRegistry([small] + default_registry().embedding_models())


def test_e12_chunked_convert_recovers_scattered_facts(benchmark):
    source = long_documents()
    registry = small_window_registry()

    def run():
        dataset = pz.Dataset(source).convert(Info)
        return pz.Execute(
            dataset, policy=pz.MaxQuality(), models=registry
        )

    records, stats = benchmark(run)
    benchmark.extra_info.update({
        "plan": stats.plan_stats.plan_describe,
        "records": len(records),
        "llm_calls": stats.plan_stats.operator_stats[-1].llm_calls,
    })
    assert "ChunkedConvert" in stats.plan_stats.plan_describe
    assert len(records) == 6
    # Facts live in different chunks of each document; both recovered.
    assert all(r.url and r.url.startswith("http") for r in records)
    assert all(r.email and "@" in r.email for r in records)
    # More than one model call per record (multiple chunks).
    assert stats.plan_stats.operator_stats[-1].llm_calls > len(records)


def test_e12_big_window_models_skip_chunking(benchmark):
    source = long_documents()

    def run():
        dataset = pz.Dataset(source).convert(Info)
        return pz.Execute(dataset, policy=pz.MaxQuality())

    records, stats = benchmark(run)
    benchmark.extra_info["plan"] = stats.plan_stats.plan_describe
    assert "ChunkedConvert" not in stats.plan_stats.plan_describe
    assert len(records) == 6
