"""E13 (ablation): semantic joins and embedding blocking.

A semantic join is quadratic in model calls; the embedding-blocked variant
judges only the top-k most similar right records per left record.  This
bench runs both at execution time (not just on estimates) and measures the
call-count and cost reduction, plus the enrichment pattern of
``examples/dataset_catalog_join.py`` end to end.
"""

import pytest

import repro as pz
from repro.core.builtin_schemas import TextFile
from repro.core.sources import MemorySource
from repro.llm.oracle import DocumentTruth, global_oracle
from repro.physical.joins import EmbeddingBlockedJoin, LLMSemanticJoin

N_LEFT = 6
N_RIGHT = 10
PREDICATE = "the report cites the catalog entry"


@pytest.fixture(scope="module")
def join_world():
    """Left reports each citing exactly one of the right catalog entries."""
    lefts, rights = [], []
    for i in range(N_RIGHT):
        rights.append(
            f"Catalog entry {i}: the Registry-{i} collection with "
            f"specimen records series {i}."
        )
    for i in range(N_LEFT):
        lefts.append(
            f"Report {i} analyzes outcomes using the Registry-{i} "
            f"collection series {i} as its data source."
        )
    # Register pair ground truth: report i cites catalog i only.
    for li, left in enumerate(lefts):
        for ri, right in enumerate(rights):
            pair = f"LEFT RECORD:\n{left}\n\nRIGHT RECORD:\n{right}"
            global_oracle().register(
                pair,
                DocumentTruth(
                    predicates={PREDICATE: li == ri}, difficulty=0.0
                ),
            )
    left_source = MemorySource(lefts, dataset_id="join-left-bench",
                               schema=TextFile)
    right_source = MemorySource(rights, dataset_id="join-right-bench",
                                schema=TextFile)
    return left_source, right_source


def run_with(strategy_cls, join_world):
    left_source, right_source = join_world
    joined = pz.Dataset(left_source).join(
        pz.Dataset(right_source), predicate=PREDICATE
    )
    logical = joined.logical_plan().operators[-1]
    from repro.llm.models import default_registry
    from repro.execution.executors import SequentialExecutor
    from repro.physical.plan import PhysicalPlan
    from repro.physical.scan import MarshalAndScan

    model = default_registry().get("gpt-4o")
    if strategy_cls is EmbeddingBlockedJoin:
        op = EmbeddingBlockedJoin(
            logical, model, default_registry().embedding_models()[0]
        )
    else:
        op = LLMSemanticJoin(logical, model)
    plan = PhysicalPlan([
        MarshalAndScan(joined.logical_plan().scan, left_source), op,
    ])
    records, stats = SequentialExecutor().execute(plan)
    return records, stats


def test_e13_blocked_join_saves_calls(benchmark, join_world):
    def run():
        full_records, full_stats = run_with(LLMSemanticJoin, join_world)
        blocked_records, blocked_stats = run_with(
            EmbeddingBlockedJoin, join_world
        )
        return full_records, full_stats, blocked_records, blocked_stats

    full_records, full_stats, blocked_records, blocked_stats = benchmark(run)

    full_join = full_stats.operator_stats[-1]
    blocked_join = blocked_stats.operator_stats[-1]
    benchmark.extra_info.update({
        "full_llm_calls": full_join.llm_calls,
        "blocked_llm_calls": blocked_join.llm_calls,
        "full_cost": round(full_stats.total_cost_usd, 4),
        "blocked_cost": round(blocked_stats.total_cost_usd, 4),
        "full_matches": len(full_records),
        "blocked_matches": len(blocked_records),
    })
    # Full join: every (left, right) pair is judged.
    assert full_join.llm_calls == N_LEFT * N_RIGHT
    # Blocked join: at most BLOCK_SIZE judgments per left record
    # (embedding calls are separate and near-free).
    assert blocked_join.llm_calls < full_join.llm_calls
    assert blocked_stats.total_cost_usd < full_stats.total_cost_usd
    # Both recover every true pair: shared vocabulary puts the true match
    # inside the similarity block.
    assert len(full_records) == N_LEFT
    assert len(blocked_records) == N_LEFT
