"""E3 (§2.1): "a search space of all possible physical plans".

Measures plan-space size as a function of pipeline length and model
registry size, and that the optimizer ranks and picks from that space.
"""

import pytest

import repro as pz
from repro.core.sources import MemorySource
from repro.core.builtin_schemas import TextFile
from repro.llm.models import ModelCard, ModelRegistry, default_registry
from repro.optimizer.cost_model import CostModel
from repro.optimizer.planner import enumerate_plans, plan_space_size


def build_pipeline(source, n_semantic_ops):
    dataset = pz.Dataset(source)
    for index in range(n_semantic_ops):
        if index % 2 == 0:
            dataset = dataset.filter(f"condition number {index}")
        else:
            schema = pz.make_schema(
                f"Step{index}", "step", {f"value{index}": "the value"}
            )
            dataset = dataset.convert(schema)
    return dataset


@pytest.fixture()
def source():
    return MemorySource(
        [f"document {i} with some text" for i in range(10)],
        dataset_id="enum-bench",
        schema=TextFile,
    )


def test_e3_plan_space_grows_with_pipeline_length(benchmark, source):
    def run():
        sizes = {}
        for n_ops in (1, 2, 3):
            pipeline = build_pipeline(source, n_ops)
            sizes[n_ops] = plan_space_size(
                pipeline.logical_plan(), default_registry(), source
            )
        return sizes

    sizes = benchmark(run)
    benchmark.extra_info["plan_space_sizes"] = sizes
    n_chat = len(default_registry().chat_models())
    n_embed = len(default_registry().embedding_models())
    assert sizes[1] == n_chat + n_embed            # one filter
    assert sizes[2] == sizes[1] * 4 * n_chat       # + one convert
    assert sizes[3] == sizes[2] * (n_chat + n_embed)
    assert sizes[3] > 500  # a real search space, as the paper claims


def test_e3_plan_space_grows_with_model_registry(benchmark, source):
    def registry_of(n):
        cards = [
            ModelCard(
                name=f"model-{i}", provider="bench",
                usd_per_1m_input=0.1 * (i + 1),
                usd_per_1m_output=0.4 * (i + 1),
                quality=0.5 + 0.04 * i,
            )
            for i in range(n)
        ]
        return ModelRegistry(cards)

    def run():
        pipeline = build_pipeline(source, 2)
        return {
            n: plan_space_size(
                pipeline.logical_plan(), registry_of(n), source,
                include_embedding_filter=False,
            )
            for n in (2, 4, 8)
        }

    sizes = benchmark(run)
    benchmark.extra_info["sizes_by_models"] = sizes
    # filter: n models; convert: 4 strategies x n models -> 4 n^2 total.
    assert sizes[2] == 2 * 4 * 2
    assert sizes[4] == 4 * 4 * 4
    assert sizes[8] == 8 * 4 * 8


def test_e3_enumeration_and_ranking(benchmark, source):
    pipeline = build_pipeline(source, 2)

    def run():
        cost_model = CostModel(source.profile())
        return enumerate_plans(
            pipeline.logical_plan(), source, default_registry(), cost_model
        )

    candidates = benchmark(run)
    benchmark.extra_info["plans_enumerated"] = len(candidates)
    # All estimates are finite and orderable; the policy can rank them.
    best = pz.MaxQuality().choose([c.estimate for c in candidates])
    assert best.quality == max(c.estimate.quality for c in candidates)
    cheapest = pz.MinCost().choose([c.estimate for c in candidates])
    assert cheapest.cost_usd == min(c.estimate.cost_usd for c in candidates)
