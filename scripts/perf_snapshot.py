#!/usr/bin/env python
"""Real wall-clock performance snapshot for the hot paths.

Unlike the pytest benchmarks (which report *simulated* cost/latency on the
virtual clock), this harness measures actual CPU wall-clock with
``time.perf_counter`` over a fixed workload set, so regressions in the
Python hot paths (tokenization, fingerprinting, plan enumeration) are
visible across PRs.  Results append to ``BENCH_perf.json`` at the repo
root: each run records per-workload seconds plus environment metadata, and
keeps the prior runs so the file is a trajectory, not a point.

Workloads:

* ``plan_enum_exhaustive``  — full enumeration + costing of a 3-semantic-op
  pipeline over the default registry (hundreds of plans).
* ``plan_enum_pruned``      — 4 semantic ops x 6 synthetic models
  (plan space > EXHAUSTIVE_LIMIT, so the pruning DP engages).
* ``pipeline_cold``         — sci-discovery-shaped pipeline, cold call cache.
* ``pipeline_warm``         — the same pipeline re-run against the warm cache.
* ``scaling``               — filter+convert over a larger synthetic corpus.
* ``tokenize_repeat``       — the repeated-tokenization pattern every LLM
  call hits (count_tokens/fingerprint over the same documents many times).
* ``pipeline_per_record``   — one chosen papers-corpus plan executed by the
  sequential executor (cold call cache, text memos cleared): the per-record
  warm-path baseline for the executor comparisons below.
* ``pipeline_threaded``     — the same plan on the pipelined executor with
  4 worker threads, per-record calls (batch_size=1).
* ``pipeline_batched``      — the same plan on the pipelined executor with
  4 worker threads and batched LLM calls (batch_size=8); amortizes
  prompt-prefix construction and full-prompt tokenization.
* ``scale_sequential`` / ``scale_sharded{2,4,8}`` / ``scale_async4`` — one
  chosen filter plan over the 10k-doc synthetic scale corpus
  (``repro.corpora.scale``), run by the sequential, sharded (degrees
  2/4/8), and async executors; the recorded ``sim_seconds`` give the
  deterministic scaling curve the regression gate checks.
* ``incr_cold``            — cold filter run over the 10k-doc scale corpus
  with ``capture_calls=True`` (records the source manifest + call log).
* ``incr_delta1pct``       — the same pipeline re-executed incrementally
  after a deterministic ~1% corpus delta (adds + edits + drops);
  records the simulated cost/LLM-time speedups vs a cold run, which the
  incremental regression gate checks (>= 5x).
* ``server_turns_sequential`` / ``server_turns_concurrent`` — the
  multi-tenant chat service driven over live HTTP: N tenants each run a
  load-then-execute turn script against one ``repro serve`` process,
  one tenant at a time vs all tenants on concurrent client threads.
  Records ``turns_per_sec``; the serving gate checks the concurrent /
  sequential throughput ratio against the baseline.

Usage:
    PYTHONPATH=src python scripts/perf_snapshot.py [--quick] [--repeat N]
                                                   [--output PATH] [--label L]
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import repro as pz  # noqa: E402
from repro.core.builtin_schemas import TextFile  # noqa: E402
from repro.core.sources import MemorySource  # noqa: E402
from repro.llm.cache import CallCache  # noqa: E402
from repro.llm.models import ModelCard, ModelRegistry, default_registry  # noqa: E402
from repro.llm.oracle import fingerprint_text  # noqa: E402
from repro.llm.tokenizer import count_tokens  # noqa: E402
from repro.optimizer.cost_model import CostModel  # noqa: E402
from repro.optimizer.planner import enumerate_plans, plan_space_size  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_perf.json"


# ----------------------------------------------------------------------
# Workload definitions.  Each returns a metadata dict; the harness times it.
# ----------------------------------------------------------------------

def _synthetic_docs(n: int, words: int = 120) -> list:
    body = (
        "study cohort colorectal screening endoscopy survival dataset "
        "registry biomarker outcome trial protocol follow-up analysis "
    )
    return [
        f"Document {i}: " + body * max(1, words // 16) + f"id-{i}"
        for i in range(n)
    ]


def _semantic_pipeline(source, n_ops: int):
    dataset = pz.Dataset(source)
    for index in range(n_ops):
        if index % 2 == 0:
            dataset = dataset.filter(f"papers about topic number {index}")
        else:
            schema = pz.make_schema(
                f"Step{index}", "perf step",
                {f"value{index}": "the value", f"note{index}": "a note"},
            )
            dataset = dataset.convert(schema)
    return dataset


def _registry_of(n: int) -> ModelRegistry:
    cards = [
        ModelCard(
            name=f"perf-model-{i}", provider="perf",
            usd_per_1m_input=0.1 * (i + 1),
            usd_per_1m_output=0.4 * (i + 1),
            quality=0.55 + 0.05 * i,
        )
        for i in range(n)
    ]
    return ModelRegistry(cards)


def workload_plan_enum_exhaustive(quick: bool) -> dict:
    source = MemorySource(
        _synthetic_docs(8), dataset_id="perf-enum-ex", schema=TextFile
    )
    pipeline = _semantic_pipeline(source, 2 if quick else 3)
    cost_model = CostModel(source.profile())
    candidates = enumerate_plans(
        pipeline.logical_plan(), source, default_registry(), cost_model,
        prune=False,
    )
    return {"plans": len(candidates)}


def workload_plan_enum_pruned(quick: bool) -> dict:
    source = MemorySource(
        _synthetic_docs(8), dataset_id="perf-enum-pr", schema=TextFile
    )
    models = _registry_of(4 if quick else 6)
    pipeline = _semantic_pipeline(source, 3 if quick else 4)
    space = plan_space_size(
        pipeline.logical_plan(), models, source,
        include_embedding_filter=False,
    )
    cost_model = CostModel(source.profile())
    candidates = enumerate_plans(
        pipeline.logical_plan(), source, models, cost_model,
        prune=True, include_embedding_filter=False,
    )
    return {"plan_space": space, "frontier": len(candidates)}


class _PipelinePair:
    """Cold/warm pipeline runs sharing one call cache."""

    def __init__(self, quick: bool):
        from repro.corpora.papers import (
            CLINICAL_FIELDS,
            PAPERS_PREDICATE,
            generate_paper_corpus,
        )
        from repro.core.sources import DirectorySource

        self._dir = tempfile.mkdtemp(prefix="perf-papers-")
        papers = generate_paper_corpus(Path(self._dir))
        self.source = DirectorySource(papers, dataset_id="perf-sci")
        schema = pz.make_schema(
            "ClinicalData", "clinical datasets", CLINICAL_FIELDS,
        )
        self.pipeline = (
            pz.Dataset(self.source)
            .filter(PAPERS_PREDICATE)
            .convert(schema, cardinality=pz.Cardinality.ONE_TO_MANY)
        )
        self.cache = CallCache()

    def run(self) -> dict:
        records, stats = pz.Execute(
            self.pipeline, policy=pz.MaxQuality(), cache=self.cache
        )
        return {
            "records_out": len(records),
            "simulated_cost_usd": round(stats.total_cost_usd, 4),
        }


class _ExecBench:
    """Executor comparisons: one chosen plan, three execution strategies.

    The plan is chosen once (optimizer untimed); each timed run starts from
    a cold call cache and cleared text memos so the three strategies pay
    the same tokenization/fingerprinting bill and differ only in how the
    executor schedules it.
    """

    WORKERS = 4
    BATCH = 8

    def __init__(self, quick: bool):
        from repro.core.sources import DirectorySource
        from repro.corpora.papers import (
            CLINICAL_FIELDS,
            PAPERS_PREDICATE,
            generate_paper_corpus,
        )
        from repro.optimizer.optimizer import Optimizer

        n = 16 if quick else 40
        self._dir = tempfile.mkdtemp(prefix="perf-exec-")
        papers = generate_paper_corpus(
            Path(self._dir),
            n_papers=n,
            n_relevant=(3 * n) // 4,
            n_with_datasets=n // 2,
        )
        self.source = DirectorySource(papers, dataset_id="perf-exec")
        schema = pz.make_schema(
            "ClinicalExec", "clinical datasets", CLINICAL_FIELDS,
        )
        pipeline = (
            pz.Dataset(self.source)
            .filter(PAPERS_PREDICATE)
            .convert(schema, cardinality=pz.Cardinality.ONE_TO_MANY)
        )
        self.plan = (
            Optimizer(pz.MaxQuality())
            .optimize(pipeline.logical_plan(), self.source)
            .chosen.plan
        )

    def run(self, mode: str) -> dict:
        from repro.execution import PipelinedExecutor, SequentialExecutor
        from repro.llm.memo import clear_memos
        from repro.physical.context import ExecutionContext

        clear_memos()
        context = ExecutionContext(
            max_workers=self.WORKERS, cache=CallCache()
        )
        if mode == "sequential":
            executor = SequentialExecutor(context)
        else:
            executor = PipelinedExecutor(
                context,
                max_workers=self.WORKERS,
                batch_size=self.BATCH if mode == "batched" else 1,
            )
        records, stats = executor.execute(self.plan)
        return {
            "records_out": len(records),
            "simulated_seconds": round(stats.total_time_seconds, 2),
        }


class _ScaleBench:
    """Scale-out comparisons: one chosen plan over a 10k-doc corpus.

    Times the sequential baseline against the sharded executor at degrees
    2/4/8 and the async executor at fanout 4, all running the *same* chosen
    plan over the same deterministic synthetic corpus
    (:mod:`repro.corpora.scale`).  Each timed run starts from cleared text
    memos so every strategy pays the same tokenization bill; the metadata
    records both real wall seconds and the simulated makespan, because the
    simulated speedup curve is the deterministic signal the regression gate
    checks.
    """

    def __init__(self, quick: bool):
        from repro.corpora.scale import SCALE_PREDICATE, generate_scale_source
        from repro.optimizer.optimizer import Optimizer

        n = 1_000 if quick else 10_000
        self.n_docs = n
        self.source = generate_scale_source(n, dataset_id=f"perf-scale-{n}")
        pipeline = pz.Dataset(self.source).filter(SCALE_PREDICATE)
        # MaxQuality picks an LLM filter (the shardable hot path); MinTime
        # would pick the embedding filter, which never fans out.
        self.plan = (
            Optimizer(pz.MaxQuality())
            .optimize(pipeline.logical_plan(), self.source)
            .chosen.plan
        )

    def run(self, mode: str, degree: int = 1) -> dict:
        from repro.execution import (
            AsyncExecutor,
            SequentialExecutor,
            ShardedExecutor,
        )
        from repro.llm.memo import clear_memos
        from repro.physical.context import ExecutionContext

        clear_memos()
        context = ExecutionContext(max_workers=max(1, degree))
        if mode == "sequential":
            executor = SequentialExecutor(context)
        elif mode == "async":
            executor = AsyncExecutor(context, fanout=degree)
        else:
            executor = ShardedExecutor(context, shards=degree)
        records, stats = executor.execute(self.plan)
        return {
            "records_in": self.n_docs,
            "records_out": len(records),
            "sim_seconds": round(stats.total_time_seconds, 3),
        }


class _IncrementalBench:
    """Cold run vs incremental re-run after a ~1% corpus delta.

    The cold run executes a filter plan over the synthetic scale corpus
    with ``capture_calls=True``, producing the source manifest and LLM
    call log an incremental run replays from.  The delta run mutates ~1%
    of the corpus (deterministic: adds + edits + drops, seeded) and
    re-executes with ``incremental=True``: unchanged documents replay
    their recorded calls, so only the delta pays fresh simulated cost.
    The recorded ``speedup_cost`` / ``speedup_llm_time`` ratios come from
    the virtual clock and are therefore deterministic — they are the
    signal the incremental regression gate checks (>= 5x at a 1% delta).
    """

    SEED = 11

    def __init__(self, quick: bool):
        from repro.corpora.scale import SCALE_PREDICATE, generate_scale_source

        n = 1_000 if quick else 10_000
        self.n_docs = n
        self.predicate = SCALE_PREDICATE
        self.dataset_id = f"perf-incr-{n}"
        self.source = generate_scale_source(
            n, seed=self.SEED, dataset_id=self.dataset_id
        )
        self.base = None

    def run_cold(self) -> dict:
        from repro.obs.registry import RunSnapshot

        pipeline = pz.Dataset(self.source).filter(self.predicate)
        records, stats = pz.Execute(
            pipeline, policy=pz.MaxQuality(), capture_calls=True,
        )
        self.base = RunSnapshot.from_execution("run-0001", records, stats)
        return {
            "records_in": self.n_docs,
            "records_out": len(records),
            "sim_seconds": round(stats.total_time_seconds, 3),
            "simulated_cost_usd": round(stats.total_cost_usd, 4),
        }

    def run_delta(self) -> dict:
        from repro.corpora.scale import mutate_scale_source

        # ~1% of the corpus changes, split across the three delta kinds.
        third = max(1, self.n_docs // 300)
        mutated = mutate_scale_source(
            self.n_docs, seed=self.SEED,
            adds=third, edits=third, drops=third,
            dataset_id=self.dataset_id,
        )
        pipeline = pz.Dataset(mutated).filter(self.predicate)
        records, stats = pz.Execute(
            pipeline, policy=pz.MaxQuality(),
            incremental=True, base_run=self.base,
        )
        report = stats.incremental
        return {
            "records_out": len(records),
            "delta_docs": 3 * third,
            "mode": report.mode,
            "replayed_calls": report.replayed_calls,
            "fresh_calls": report.fresh_calls,
            "fresh_cost_usd": round(report.fresh_cost_usd, 4),
            "speedup_cost": round(report.speedup_cost, 2),
            "speedup_llm_time": round(report.speedup_time, 2),
        }


def workload_scaling(quick: bool) -> dict:
    n = 60 if quick else 200
    source = MemorySource(
        _synthetic_docs(n, words=80), dataset_id="perf-scale",
        schema=TextFile,
    )
    schema = pz.make_schema(
        "ScaleOut", "scale step", {"value": "the value"},
    )
    pipeline = (
        pz.Dataset(source)
        .filter("documents about screening")
        .convert(schema)
    )
    records, stats = pz.Execute(pipeline, policy=pz.MinCost())
    return {"records_in": n, "records_out": len(records)}


def workload_tokenize_repeat(quick: bool) -> dict:
    docs = _synthetic_docs(10, words=400)
    rounds = 30 if quick else 100
    total = 0
    for _ in range(rounds):
        for doc in docs:
            total += count_tokens(doc)
            fingerprint_text(doc)
    return {"calls": 2 * rounds * len(docs), "tokens": total}


class _ServerBench:
    """Multi-tenant serving throughput: sequential vs concurrent tenants.

    Boots one ``repro serve`` process (ephemeral port, scratch tenant
    root) at construction so server startup and demo-corpus generation
    stay untimed, then measures driving N tenants through a two-turn
    chat script (load the demo dataset, execute the pipeline) over live
    HTTP — first one tenant at a time, then all N from concurrent
    client threads.  Tenant names are never reused across measurements,
    so every drive starts from a fresh workspace.
    """

    def __init__(self, quick: bool):
        import repro.server as server_mod

        self.tenants = 2 if quick else 4
        self.scratch = tempfile.mkdtemp(prefix="repro-perf-serve-")
        self.server = server_mod.serve(
            port=0, root=f"{self.scratch}/tenants",
            data_dir=f"{self.scratch}/data",
        )
        server_mod.run_in_thread(self.server)
        host, port = self.server.server_address
        self.base = f"http://{host}:{port}"
        self._round = 0

    def _call(self, method: str, path: str, body=None):
        import urllib.request

        data = json.dumps(body).encode("utf-8") if body is not None else None
        request = urllib.request.Request(
            self.base + path, data=data, method=method,
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request) as response:
            return json.loads(response.read())

    def _drive(self, tenant: str) -> int:
        """One tenant's two-turn script; returns the turn count."""
        row = self._call("POST", f"/tenants/{tenant}/sessions", {})
        sid = row["session_id"]
        for message in ("Load the sigmod-demo dataset", "run the pipeline"):
            turn = self._call(
                "POST", f"/tenants/{tenant}/sessions/{sid}/turns",
                {"message": message})
            assert turn["status"] == "ok", (tenant, turn)
        return 2

    def run(self, concurrent: bool) -> dict:
        import threading

        self._round += 1
        mode = "con" if concurrent else "seq"
        names = [
            f"{mode}{self._round}-t{i}" for i in range(self.tenants)
        ]
        start = time.perf_counter()
        if concurrent:
            threads = [
                threading.Thread(target=self._drive, args=(name,))
                for name in names
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        else:
            for name in names:
                self._drive(name)
        elapsed = time.perf_counter() - start
        turns = 2 * self.tenants
        return {
            "tenants": self.tenants,
            "turns": turns,
            "turns_per_sec": round(turns / elapsed, 3) if elapsed else 0.0,
        }


# ----------------------------------------------------------------------
# Harness.
# ----------------------------------------------------------------------

def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


def run_snapshot(quick: bool, repeat: int, label: str) -> dict:
    pair = [None]  # lazily built so corpus generation is not timed

    def pipeline_cold(q):
        pair[0] = _PipelinePair(q)
        return pair[0].run()

    def pipeline_warm(q):
        return pair[0].run()

    # Built eagerly so corpus generation + plan choice stay untimed.
    exec_bench = _ExecBench(quick)
    scale_bench = _ScaleBench(quick)
    incr_bench = _IncrementalBench(quick)
    server_bench = _ServerBench(quick)

    workloads = [
        ("plan_enum_exhaustive", workload_plan_enum_exhaustive),
        ("plan_enum_pruned", workload_plan_enum_pruned),
        ("pipeline_cold", pipeline_cold),
        ("pipeline_warm", pipeline_warm),
        ("scaling", workload_scaling),
        ("tokenize_repeat", workload_tokenize_repeat),
        ("pipeline_per_record", lambda q: exec_bench.run("sequential")),
        ("pipeline_threaded", lambda q: exec_bench.run("threaded")),
        ("pipeline_batched", lambda q: exec_bench.run("batched")),
        ("scale_sequential", lambda q: scale_bench.run("sequential")),
        ("scale_sharded2", lambda q: scale_bench.run("sharded", 2)),
        ("scale_sharded4", lambda q: scale_bench.run("sharded", 4)),
        ("scale_sharded8", lambda q: scale_bench.run("sharded", 8)),
        ("scale_async4", lambda q: scale_bench.run("async", 4)),
        ("incr_cold", lambda q: incr_bench.run_cold()),
        ("incr_delta1pct", lambda q: incr_bench.run_delta()),
        ("server_turns_sequential",
         lambda q: server_bench.run(concurrent=False)),
        ("server_turns_concurrent",
         lambda q: server_bench.run(concurrent=True)),
    ]
    results = {}
    for name, fn in workloads:
        best = None
        meta = {}
        for _ in range(max(1, repeat)):
            start = time.perf_counter()
            meta = fn(quick) or {}
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
            if name in ("pipeline_cold", "pipeline_warm"):
                break  # cold/warm pairing breaks under repetition
        results[name] = {"wall_seconds": round(best, 4), **meta}
        print(f"{name:>24}: {best:.4f}s  {meta}")
    return {
        "label": label,
        "quick": quick,
        "git_rev": _git_rev(),
        "python": platform.python_version(),
        "workloads": results,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads (CI smoke)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="repetitions per workload; best-of-N is kept")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--label", default="",
                        help="free-form tag recorded with the run")
    args = parser.parse_args(argv)

    run = run_snapshot(args.quick, args.repeat, args.label)

    history = []
    if args.output.exists():
        try:
            payload = json.loads(args.output.read_text())
            history = payload.get("runs", [])
        except (json.JSONDecodeError, AttributeError):
            history = []
    history.append(run)
    args.output.write_text(
        json.dumps({"runs": history}, indent=2) + "\n"
    )
    print(f"\nwrote {args.output} ({len(history)} runs recorded)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
