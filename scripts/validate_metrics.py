#!/usr/bin/env python
"""Schema-check the service tier's operational telemetry end to end.

Boots the multi-tenant HTTP server on an ephemeral port with telemetry
enabled, drives one tenant through a chat turn, then validates every
operational surface:

* ``GET /metrics`` parses as Prometheus text exposition 0.0.4 — every
  non-comment line matches the sample grammar, every histogram ships
  ``quantile`` samples plus ``_count``/``_sum``, and the required
  metric names are present (``http_requests_total``,
  ``turns_completed_total``, ``turn_wall_seconds`` quantiles,
  ``repro_slo_ok``);
* ``GET /metrics?format=json`` has the snapshot structure the
  ``repro top`` dashboard consumes (counters/gauges/histograms with
  labels, the SLO table, ``status``);
* ``GET /healthz`` reports an SLO verdict and ``GET /version`` matches
  the installed package metadata;
* every line of the JSONL structured log parses as a JSON object, and
  the turn's log lines carry the same ``request_id`` the HTTP response
  returned in its ``X-Request-Id`` header.

Run it from the repo root::

    PYTHONPATH=src python scripts/validate_metrics.py

Exits non-zero on the first violation (CI's ``make telemetry``).
"""

import argparse
import json
import re
import sys
import tempfile
import urllib.error
import urllib.request

# One exposition sample: name{labels} value  — labels optional, value a
# float/int (inf/nan allowed by the format, not expected here).
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>-?(?:[0-9]+(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?|\+?Inf|NaN))$")
_LABEL = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')

REQUIRED_METRICS = (
    "http_requests_total",
    "http_request_seconds",
    "turns_completed_total",
    "turn_wall_seconds",
    "repro_slo_ok",
)


def call(base, method, path, body=None):
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request) as response:
            status = response.status
            raw = response.read()
            headers = dict(response.headers)
            ctype = response.headers.get("Content-Type", "")
    except urllib.error.HTTPError as error:
        raw = error.read()
        headers = dict(error.headers)
        return error.code, headers, json.loads(raw)
    if ctype.startswith("application/json"):
        return status, headers, json.loads(raw)
    return status, headers, raw.decode("utf-8")


def check_prometheus_text(text):
    """Validate the exposition grammar; return {metric name: sample count}."""
    seen = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line or line.startswith("#"):
            if line.startswith("#"):
                assert re.match(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* ",
                                line), f"line {lineno}: bad comment: {line!r}"
            continue
        match = _SAMPLE.match(line)
        assert match, f"line {lineno}: not a valid sample: {line!r}"
        labels = match.group("labels")
        if labels:
            for pair in labels[1:-1].split(","):
                assert _LABEL.match(pair), (
                    f"line {lineno}: bad label pair {pair!r} in {line!r}")
        name = match.group("name")
        base = re.sub(r"_(count|sum)$", "", name)
        seen[base] = seen.get(base, 0) + 1
        float(match.group("value").replace("Inf", "inf").replace("NaN", "nan"))
    return seen


def check_json_snapshot(payload):
    for key in ("generated_at", "window_seconds", "status", "alerts",
                "slos", "metrics"):
        assert key in payload, f"/metrics?format=json missing {key!r}"
    assert payload["status"] in ("ok", "degraded"), payload["status"]
    metrics = payload["metrics"]
    for family in ("counters", "gauges", "histograms"):
        assert isinstance(metrics.get(family), list), family
        for row in metrics[family]:
            assert "name" in row and "labels" in row, (family, row)
    for hist in metrics["histograms"]:
        summary = hist["summary"]
        for key in ("count", "sum", "min", "max", "p50", "p95", "p99"):
            assert key in summary, (hist["name"], key, summary)
    for row in payload["slos"]:
        for key in ("name", "kind", "threshold", "value", "ok"):
            assert key in row, (row, key)
    tenants = {tuple(sorted(c["labels"].items()))
               for c in metrics["counters"]
               if c["name"] == "turns.completed_total"}
    assert tenants, "no turns.completed_total counter in the JSON snapshot"


def check_log(log_dir, request_id):
    files = sorted(log_dir.glob("events-*.jsonl"))
    assert files, f"no JSONL log files under {log_dir}"
    lines, correlated = 0, []
    for path in files:
        for raw in path.read_text().splitlines():
            row = json.loads(raw)
            assert isinstance(row, dict) and "event" in row and "ts" in row, (
                path, raw)
            lines += 1
            if row.get("request_id") == request_id:
                correlated.append(row["event"])
    assert lines > 0
    for expected in ("request_start", "turn_start", "turn_finish",
                     "request_finish"):
        assert expected in correlated, (
            f"log lines for {request_id} missing {expected!r}: {correlated}")
    return lines, correlated


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="tenant state root (default: a temp dir)")
    args = parser.parse_args()

    from pathlib import Path

    from repro.cli import package_metadata
    from repro.server import run_in_thread, serve

    scratch = Path(args.root or tempfile.mkdtemp(prefix="repro-telemetry-"))
    server = serve(port=0, root=str(scratch / "tenants"),
                   data_dir=str(scratch / "data"), max_cost_usd=5.0,
                   telemetry_root=str(scratch / "telemetry"))
    host, port = server.server_address
    base = f"http://{host}:{port}"
    run_in_thread(server)
    print(f"validate_metrics: serving {base}")

    # -- drive one tenant through a turn, capturing its request id.
    status, _, row = call(base, "POST", "/tenants/acme/sessions", {})
    assert status == 201, (status, row)
    sid = row["session_id"]
    status, headers, turn = call(
        base, "POST", f"/tenants/acme/sessions/{sid}/turns",
        {"message": "Load the sigmod-demo dataset"})
    assert status == 200 and turn["status"] == "ok", (status, turn)
    request_id = headers.get("X-Request-Id")
    assert request_id, "turn response missing X-Request-Id header"
    assert turn.get("request_id") == request_id, (
        "turn row request_id does not match the X-Request-Id header: "
        f"{turn.get('request_id')} vs {request_id}")

    # -- Prometheus text exposition.
    status, headers, text = call(base, "GET", "/metrics")
    assert status == 200, status
    assert headers.get("Content-Type", "").startswith("text/plain"), headers
    seen = check_prometheus_text(text)
    for name in REQUIRED_METRICS:
        assert name in seen, f"/metrics missing required metric {name!r}"
    quantiles = [line for line in text.splitlines()
                 if line.startswith("turn_wall_seconds{")
                 and "quantile=" in line]
    assert quantiles, "turn_wall_seconds ships no quantile samples"
    print(f"  /metrics: {sum(seen.values())} samples across "
          f"{len(seen)} metrics, grammar OK")

    # -- JSON snapshot.
    status, _, payload = call(base, "GET", "/metrics?format=json")
    assert status == 200, status
    check_json_snapshot(payload)
    print(f"  /metrics?format=json: status={payload['status']}, "
          f"{len(payload['slos'])} SLOs evaluated")

    # -- health + version.
    status, _, health = call(base, "GET", "/healthz")
    assert status == 200 and health["status"] in ("ok", "degraded"), health
    assert "slos" in health and "alerts" in health, health
    status, _, version = call(base, "GET", "/version")
    expected_version, _ = package_metadata()
    assert version["version"] == expected_version, (version, expected_version)
    print(f"  /healthz: {health['status']}; /version: {version['version']}")

    # -- structured log: parseable, correlated to the turn's request id.
    lines, correlated = check_log(scratch / "telemetry", request_id)
    print(f"  log: {lines} JSONL lines parse; {request_id} correlates "
          f"{len(correlated)} events ({', '.join(sorted(set(correlated)))})")

    server.shutdown()
    server.server_close()
    server.store.close()
    print("validate_metrics: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
