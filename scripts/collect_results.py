#!/usr/bin/env python
"""Regenerate every experiment's measured numbers.

Runs the benchmark suite with ``--benchmark-json`` and prints each
benchmark's reproduced quantities (the ``extra_info`` each bench attaches) —
the raw material behind EXPERIMENTS.md.

Usage:  python scripts/collect_results.py [pytest-args...]
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def main(argv=None) -> int:
    argv = list(argv if argv is not None else sys.argv[1:])
    json_path = Path(tempfile.mkdtemp()) / "bench.json"
    exit_code = pytest.main([
        str(REPO_ROOT / "benchmarks"),
        "--benchmark-only",
        f"--benchmark-json={json_path}",
        "-q",
        *argv,
    ])
    if not json_path.exists():
        print("no benchmark JSON produced", file=sys.stderr)
        return exit_code or 1

    payload = json.loads(json_path.read_text())
    print("\n" + "=" * 72)
    print("REPRODUCED EXPERIMENT QUANTITIES")
    print("=" * 72)
    for bench in sorted(payload["benchmarks"], key=lambda b: b["name"]):
        extra = bench.get("extra_info") or {}
        if not extra:
            continue
        print(f"\n--- {bench['name']} ---")
        for key, value in extra.items():
            rendered = json.dumps(value, indent=2, default=str)
            if "\n" in rendered:
                print(f"{key}:")
                for line in rendered.splitlines():
                    print(f"  {line}")
            else:
                print(f"{key}: {rendered}")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
