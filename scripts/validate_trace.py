#!/usr/bin/env python
"""Validate a Chrome ``trace_event`` JSON file produced by ``repro trace``.

Structural schema check with stdlib only (CI has no jsonschema): the file
must be a JSON object with a ``traceEvents`` list where every event has
``name``/``ph``/``pid``/``tid``, complete (``"X"``) events carry
non-negative numeric ``ts``/``dur`` plus ``args.span_id``, and metadata
(``"M"``) events carry ``args.name``.  ``otherData.span_count`` must match
the number of complete events.  Exits 0 when valid, 1 with a finding list
otherwise.

Usage::

    python scripts/validate_trace.py /tmp/demo-trace.json
"""

from __future__ import annotations

import argparse
import json
import numbers
import sys
from typing import Any, List

VALID_PHASES = {"X", "M", "B", "E", "i"}


def validate_chrome_trace(payload: Any) -> List[str]:
    """Return every schema violation found in ``payload`` (empty = valid)."""
    errors: List[str] = []
    if not isinstance(payload, dict):
        return [f"top level must be a JSON object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    if payload.get("displayTimeUnit") not in ("ms", "ns"):
        errors.append("'displayTimeUnit' must be 'ms' or 'ns'")

    complete = 0
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: event is not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                errors.append(f"{where}: missing {key!r}")
        phase = event.get("ph")
        if phase not in VALID_PHASES:
            errors.append(f"{where}: unknown phase {phase!r}")
        if phase == "X":
            complete += 1
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, numbers.Real) or value < 0:
                    errors.append(
                        f"{where}: {key!r} must be a non-negative number, "
                        f"got {value!r}"
                    )
            args = event.get("args")
            if not isinstance(args, dict) or "span_id" not in args:
                errors.append(f"{where}: complete event needs args.span_id")
        elif phase == "M":
            args = event.get("args")
            if not isinstance(args, dict) or "name" not in args:
                errors.append(f"{where}: metadata event needs args.name")

    other = payload.get("otherData")
    if isinstance(other, dict) and "span_count" in other:
        if other["span_count"] != complete:
            errors.append(
                f"otherData.span_count={other['span_count']} but the file "
                f"has {complete} complete events"
            )
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Validate a Chrome trace_event JSON file"
    )
    parser.add_argument("path", help="trace file to validate")
    args = parser.parse_args(argv)
    try:
        with open(args.path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"invalid: {args.path}: {exc}", file=sys.stderr)
        return 1
    errors = validate_chrome_trace(payload)
    if errors:
        for error in errors:
            print(f"invalid: {error}", file=sys.stderr)
        return 1
    events = len(payload["traceEvents"])
    print(f"valid Chrome trace: {args.path} ({events} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
