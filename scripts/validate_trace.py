#!/usr/bin/env python
"""Validate observability artifacts produced by ``repro trace`` / ``runs``.

Structural schema checks with stdlib only (CI has no jsonschema):

* Chrome ``trace_event`` JSON (the default): the file must be a JSON
  object with a ``traceEvents`` list where every event has
  ``name``/``ph``/``pid``/``tid``, complete (``"X"``) events carry
  non-negative numeric ``ts``/``dur`` plus ``args.span_id``, and
  metadata (``"M"``) events carry ``args.name``.
  ``otherData.span_count`` must match the number of complete events.
* Provenance graphs (``--kind provenance``): a ``provenance.json`` from
  the run registry must have consecutive 1-based node ids, events whose
  parents and children reference live nodes, drop reasons from the
  ``DropReason`` enum with exactly one parent and no children, and
  output ids that are graph nodes.

Exits 0 when valid, 1 with a finding list otherwise.

Usage::

    python scripts/validate_trace.py /tmp/demo-trace.json
    python scripts/validate_trace.py --kind provenance \\
        .repro/runs/run-0001/provenance.json
"""

from __future__ import annotations

import argparse
import json
import numbers
import sys
from typing import Any, List

VALID_PHASES = {"X", "M", "B", "E", "i"}

# Mirrors repro.obs.provenance.DROP_REASONS; imported when the package is
# on the path so the two can't drift silently, with a stdlib fallback for
# standalone use.
DROP_REASONS = frozenset({
    "filter_rejected", "limit_cutoff", "join_no_match", "aggregate_fold",
    "retrieve_cutoff", "distinct_duplicate", "convert_empty",
})
try:
    from repro.obs.provenance import DROP_REASONS as _PKG_DROP_REASONS

    DROP_REASONS = _PKG_DROP_REASONS
except ImportError:  # pragma: no cover - standalone invocation
    pass


def validate_chrome_trace(payload: Any) -> List[str]:
    """Return every schema violation found in ``payload`` (empty = valid)."""
    errors: List[str] = []
    if not isinstance(payload, dict):
        return [f"top level must be a JSON object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    if payload.get("displayTimeUnit") not in ("ms", "ns"):
        errors.append("'displayTimeUnit' must be 'ms' or 'ns'")

    complete = 0
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: event is not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                errors.append(f"{where}: missing {key!r}")
        phase = event.get("ph")
        if phase not in VALID_PHASES:
            errors.append(f"{where}: unknown phase {phase!r}")
        if phase == "X":
            complete += 1
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, numbers.Real) or value < 0:
                    errors.append(
                        f"{where}: {key!r} must be a non-negative number, "
                        f"got {value!r}"
                    )
            args = event.get("args")
            if not isinstance(args, dict) or "span_id" not in args:
                errors.append(f"{where}: complete event needs args.span_id")
        elif phase == "M":
            args = event.get("args")
            if not isinstance(args, dict) or "name" not in args:
                errors.append(f"{where}: metadata event needs args.name")

    other = payload.get("otherData")
    if isinstance(other, dict) and "span_count" in other:
        if other["span_count"] != complete:
            errors.append(
                f"otherData.span_count={other['span_count']} but the file "
                f"has {complete} complete events"
            )
    return errors


def validate_provenance(payload: Any) -> List[str]:
    """Return every violation in a provenance-graph payload (empty = valid)."""
    errors: List[str] = []
    if not isinstance(payload, dict):
        return [f"top level must be a JSON object, got {type(payload).__name__}"]
    for key in ("ops", "nodes", "events", "output_ids"):
        if not isinstance(payload.get(key), list):
            errors.append(f"missing or non-list {key!r}")
    if errors:
        return errors

    node_ids = set()
    for index, node in enumerate(payload["nodes"]):
        where = f"nodes[{index}]"
        if not isinstance(node, dict):
            errors.append(f"{where}: node is not an object")
            continue
        for key in ("id", "source_id", "schema", "origin", "preview", "fp"):
            if key not in node:
                errors.append(f"{where}: missing {key!r}")
        if node.get("id") != index + 1:
            errors.append(
                f"{where}: id {node.get('id')!r} breaks the consecutive "
                "1-based numbering"
            )
        node_ids.add(node.get("id"))

    for index, event in enumerate(payload["events"]):
        where = f"events[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: event is not an object")
            continue
        for key in ("op", "op_label", "kind", "parents", "children"):
            if key not in event:
                errors.append(f"{where}: missing {key!r}")
        op = event.get("op")
        if isinstance(op, int) and not 0 <= op < len(payload["ops"]):
            errors.append(f"{where}: op index {op} out of range")
        parents = event.get("parents") or []
        children = event.get("children") or []
        for ref in list(parents) + list(children):
            if ref not in node_ids:
                errors.append(
                    f"{where}: references node {ref!r}, which does not exist"
                )
        kind = event.get("kind")
        if kind == "drop":
            if event.get("reason") not in DROP_REASONS:
                errors.append(
                    f"{where}: drop reason {event.get('reason')!r} is not "
                    "a known DropReason"
                )
            if len(parents) != 1 or children:
                errors.append(
                    f"{where}: a drop must have exactly 1 parent and 0 "
                    f"children (got {len(parents)}/{len(children)})"
                )
        elif kind == "emit":
            if not children:
                errors.append(f"{where}: an emit must derive >= 1 child")
            if not parents and (event.get("attrs") or {}).get("folded") != 0:
                errors.append(
                    f"{where}: an emit must have >= 1 parent (only "
                    "folded=0 aggregates are exempt)"
                )
        else:
            errors.append(f"{where}: unknown event kind {kind!r}")

    for output_id in payload["output_ids"]:
        if output_id not in node_ids:
            errors.append(f"output id {output_id!r} is not a graph node")
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Validate a Chrome trace_event JSON file or a "
                    "provenance graph"
    )
    parser.add_argument("path", help="file to validate")
    parser.add_argument("--kind", choices=("chrome", "provenance"),
                        default="chrome",
                        help="what schema to validate against")
    args = parser.parse_args(argv)
    try:
        with open(args.path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"invalid: {args.path}: {exc}", file=sys.stderr)
        return 1
    if args.kind == "provenance":
        errors = validate_provenance(payload)
        if errors:
            for error in errors:
                print(f"invalid: {error}", file=sys.stderr)
            return 1
        print(
            f"valid provenance graph: {args.path} "
            f"({len(payload['nodes'])} nodes, {len(payload['events'])} "
            f"events, {len(payload['output_ids'])} outputs)"
        )
        return 0
    errors = validate_chrome_trace(payload)
    if errors:
        for error in errors:
            print(f"invalid: {error}", file=sys.stderr)
        return 1
    events = len(payload["traceEvents"])
    print(f"valid Chrome trace: {args.path} ({events} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
