#!/usr/bin/env python
"""End-to-end smoke test for ``repro serve`` (the service layer).

Boots the multi-tenant HTTP server on an ephemeral port, walks **two
tenants** through the full chat lifecycle — create a session, build a
pipeline over the demo corpus in three chat turns, execute it, stream
the turn's progress events, and fetch the result slice — then asserts
the tenancy invariants:

* each tenant's run landed in its **own** registry (``runs`` listings
  are disjoint directories under ``<root>/<tenant>/runs``);
* both tenants built the same pipeline, so their result fingerprints
  and record slices are **identical** (isolation did not perturb
  execution) while their session/run state never mixed;
* the admin usage rollup equals the **sum** of the per-tenant ledgers;
* an over-quota tenant is rejected with a 429 while others keep
  working, and an admin quota raise unblocks it;
* every response carries a distinct ``X-Request-Id`` header and a
  turn's row records the id of the request that ran it (the telemetry
  correlation contract — see ``scripts/validate_metrics.py`` for the
  deeper log/metrics checks).

Run it from the repo root::

    PYTHONPATH=src python scripts/server_smoke.py

Exits non-zero on the first violated invariant (CI's ``server`` job).
"""

import argparse
import json
import sys
import tempfile
import urllib.error
import urllib.request


def call_raw(base, method, path, body=None):
    """Like ``call`` but also returns the response headers."""
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request) as response:
            return (response.status, dict(response.headers),
                    json.loads(response.read()))
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read())


def call(base, method, path, body=None):
    status, _, payload = call_raw(base, method, path, body)
    return status, payload


TURNS = [
    "Load the sigmod-demo dataset",
    "Keep only papers about machine learning",
    "run the pipeline",
]


def drive_tenant(base, tenant):
    """One tenant's full lifecycle; returns its observed state."""
    status, row = call(base, "POST", f"/tenants/{tenant}/sessions", {})
    assert status == 201, (tenant, status, row)
    sid = row["session_id"]

    last = None
    for message in TURNS:
        status, last = call(
            base, "POST", f"/tenants/{tenant}/sessions/{sid}/turns",
            {"message": message})
        assert status == 200, (tenant, message, status, last)
        assert last["status"] == "ok", (tenant, last)

    # Stream the execution turn's progress events to completion.
    turn_id = last["turn_id"]
    offset, done, kinds = 0, False, []
    while not done:
        status, page = call(
            base, "GET",
            f"/tenants/{tenant}/sessions/{sid}/turns/{turn_id}/events"
            f"?offset={offset}&wait=2")
        assert status == 200, (tenant, status, page)
        kinds.extend(event["type"] for event in page["events"])
        offset, done = page["next_offset"], page["done"]
    for expected in ("turn_start", "plan_start", "plan_end", "turn_end"):
        assert expected in kinds, (tenant, expected, kinds)

    status, runs = call(base, "GET", f"/tenants/{tenant}/runs")
    assert status == 200 and runs["runs"], (tenant, runs)
    run_id = runs["runs"][-1]["run_id"]

    status, result = call(
        base, "GET", f"/tenants/{tenant}/results/{run_id}?offset=0")
    assert status == 200, (tenant, status, result)

    status, usage = call(base, "GET", f"/tenants/{tenant}/usage")
    assert status == 200, (tenant, usage)

    return {
        "session_id": sid,
        "run_id": run_id,
        "result": result["result"],
        "records": result["records"],
        "usage": usage["usage"],
        "events": len(kinds),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="tenant state root (default: a temp dir)")
    args = parser.parse_args()

    from repro.server import run_in_thread, serve

    scratch = tempfile.mkdtemp(prefix="repro-serve-smoke-")
    root = args.root or f"{scratch}/tenants"
    server = serve(port=0, root=root, data_dir=f"{scratch}/data",
                   max_cost_usd=5.0)
    host, port = server.server_address
    base = f"http://{host}:{port}"
    run_in_thread(server)
    print(f"server_smoke: serving {base} (tenants under {root})")

    status, health = call(base, "GET", "/healthz")
    assert status == 200 and health["ok"], health

    tenants = ["acme", "globex"]
    states = {tenant: drive_tenant(base, tenant) for tenant in tenants}
    for tenant in tenants:
        state = states[tenant]
        print(f"  {tenant}: run {state['run_id']} -> "
              f"{state['result']['count']} records "
              f"[{state['result']['fingerprint']}], "
              f"{state['events']} progress events, "
              f"${state['usage']['spent_cost_usd']:.4f} spent")

    # -- isolation: same pipeline => identical results, separate state.
    a, b = states["acme"], states["globex"]
    assert a["result"]["fingerprint"] == b["result"]["fingerprint"], (
        "tenants ran the same pipeline but diverged: "
        f"{a['result']} vs {b['result']}")
    assert a["records"] == b["records"], "record payloads diverged"

    # Registries are physically disjoint: each tenant sees only its own
    # runs, and cross-tenant result fetches 404.
    for tenant, other in (("acme", b), ("globex", a)):
        status, runs = call(base, "GET", f"/tenants/{tenant}/runs")
        assert len(runs["runs"]) == 1, (tenant, runs)
    status, _ = call(base, "GET", "/tenants/nosuch/results/run-0001")
    assert status == 404, "empty tenant should have no runs"

    # -- admin rollup equals the sum of per-tenant ledgers.
    status, rollup = call(base, "GET", "/admin/usage")
    assert status == 200, rollup
    summed = sum(t["spent_cost_usd"] for t in rollup["tenants"].values())
    assert abs(rollup["total"]["spent_cost_usd"] - summed) < 1e-9, rollup
    per_tenant = {t: states[t]["usage"]["spent_cost_usd"] for t in tenants}
    for tenant in tenants:
        assert abs(rollup["tenants"][tenant]["spent_cost_usd"]
                   - per_tenant[tenant]) < 1e-9, (tenant, rollup)
    print(f"  admin rollup: ${rollup['total']['spent_cost_usd']:.4f} "
          f"across {len(rollup['tenants'])} tenants (sums match)")

    # -- quotas: a starved tenant 429s; a raise unblocks it; others are
    #    untouched.
    status, _ = call(base, "POST", "/admin/tenants/starved/quota",
                     {"max_cost_usd": 0.0})
    assert status == 200
    status, row = call(base, "POST", "/tenants/starved/sessions", {})
    assert status == 201, row
    starved_sid = row["session_id"]
    status, row = call(
        base, "POST", f"/tenants/starved/sessions/{starved_sid}/turns",
        {"message": "Load the sigmod-demo dataset"})
    assert status == 429 and row["error"] == "quota_exhausted", (status, row)
    status, row = call(base, "POST",
                       f"/tenants/acme/sessions/{a['session_id']}/turns",
                       {"message": "What does the pipeline look like?"})
    assert status == 200 and row["status"] == "ok", (status, row)
    status, _ = call(base, "POST", "/admin/tenants/starved/quota",
                     {"max_cost_usd": 5.0})
    assert status == 200
    status, row = call(
        base, "POST", f"/tenants/starved/sessions/{starved_sid}/turns",
        {"message": "Load the sigmod-demo dataset"})
    assert status == 200 and row["status"] == "ok", (status, row)
    print("  quotas: starved tenant 429'd, neighbors unaffected, "
          "admin raise unblocked it")

    # -- correlation: every response carries an X-Request-Id; a turn's
    #    row records the id of the request that ran it, end to end.
    status, headers, row = call_raw(
        base, "POST", f"/tenants/acme/sessions/{a['session_id']}/turns",
        {"message": "What does the pipeline look like?"})
    assert status == 200, (status, row)
    rid = headers.get("X-Request-Id")
    assert rid, "turn response missing X-Request-Id header"
    assert row.get("request_id") == rid, (
        f"turn row carries {row.get('request_id')!r}, header says {rid!r}")
    seen_ids = {rid}
    for probe in ("/healthz", "/metrics?format=json",
                  f"/tenants/acme/sessions/{a['session_id']}"):
        status, headers, _ = call_raw(base, "GET", probe)
        assert status == 200, (probe, status)
        probe_id = headers.get("X-Request-Id")
        assert probe_id and probe_id not in seen_ids, (probe, probe_id)
        seen_ids.add(probe_id)
    print(f"  correlation: turn {row['turn_id']} carries {rid}; "
          f"{len(seen_ids)} distinct request ids across probes")

    server.shutdown()
    print("server_smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
