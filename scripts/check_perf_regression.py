#!/usr/bin/env python
"""Executor performance regression gate.

Two gates, both on speedup *ratios* rather than absolute seconds (CI
machines are slower and noisier than the machine that recorded the
baseline, but relative advantages survive any machine):

1. **Batching gate** — wall-clock of ``pipeline_per_record`` divided by
   ``pipeline_batched`` must retain ``threshold`` x the baseline ratio.
2. **Scaling gate** — *simulated* makespan of ``scale_sequential`` divided
   by ``scale_sharded4`` must retain ``scale_threshold`` x the baseline
   ratio.  Simulated time is deterministic (virtual clock), so this ratio
   is noise-free: a drop means the sharded executor genuinely stopped
   fanning the shardable prefix out.
3. **Incremental gate** — the ``incr_delta1pct`` workload's recorded
   ``speedup_cost`` and ``speedup_llm_time`` (simulated, deterministic)
   must each be >= ``incremental_floor`` (default 5x): an incremental
   re-run after a ~1% corpus delta that is not at least 5x cheaper than
   a cold run means replay stopped reusing the base run's calls.
4. **Serving gate** — ``server_turns_concurrent.turns_per_sec`` divided
   by ``server_turns_sequential.turns_per_sec`` must retain
   ``server_threshold`` x the baseline ratio: concurrent tenants
   collapsing below the sequential baseline means the service layer
   started serializing tenants against each other (a lost lock-scope
   fight in the session store).

Any gate failing exits 1.  A gate whose workloads are missing from the
baseline passes vacuously (first recording).

Usage:
    PYTHONPATH=src python scripts/perf_snapshot.py --quick \
        --output /tmp/perf_current.json
    python scripts/check_perf_regression.py --current /tmp/perf_current.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_perf.json"

#: The workloads the batching gate needs; runs without them are skipped.
REQUIRED = ("pipeline_per_record", "pipeline_batched")

#: The workloads the scaling gate needs.
SCALE_REQUIRED = ("scale_sequential", "scale_sharded4")

#: The workload the incremental gate needs.
INCR_REQUIRED = ("incr_delta1pct",)

#: The workloads the serving gate needs.
SERVER_REQUIRED = ("server_turns_sequential", "server_turns_concurrent")


def latest_run_with(path: Path, names=REQUIRED) -> dict | None:
    """The most recent run in ``path`` containing every named workload."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    for run in reversed(payload.get("runs", [])):
        workloads = run.get("workloads", {})
        if all(name in workloads for name in names):
            return run
    return None


def speedup(run: dict) -> float:
    workloads = run["workloads"]
    per_record = workloads["pipeline_per_record"]["wall_seconds"]
    batched = workloads["pipeline_batched"]["wall_seconds"]
    if batched <= 0:
        return float("inf")
    return per_record / batched


def scale_speedup(run: dict) -> float:
    """Simulated sharded-over-sequential speedup (deterministic)."""
    workloads = run["workloads"]
    sequential = workloads["scale_sequential"]["sim_seconds"]
    sharded = workloads["scale_sharded4"]["sim_seconds"]
    if sharded <= 0:
        return float("inf")
    return sequential / sharded


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="committed benchmark history (BENCH_perf.json)")
    parser.add_argument("--current", type=Path, required=True,
                        help="snapshot file from a fresh perf_snapshot run")
    parser.add_argument("--threshold", type=float, default=0.8,
                        help="minimum fraction of the baseline speedup the "
                             "current run must retain")
    parser.add_argument("--scale-threshold", type=float, default=0.8,
                        help="minimum fraction of the baseline sharded "
                             "(simulated) speedup the current run must "
                             "retain")
    parser.add_argument("--incremental-floor", type=float, default=5.0,
                        help="absolute minimum simulated speedup (cost AND "
                             "LLM time) an incremental re-run must show "
                             "over a cold run at a ~1%% delta")
    parser.add_argument("--server-threshold", type=float, default=0.7,
                        help="minimum fraction of the baseline concurrent/"
                             "sequential serving throughput ratio the "
                             "current run must retain")
    args = parser.parse_args(argv)

    current = latest_run_with(args.current)
    if current is None:
        print(f"FAIL: {args.current} has no run with {REQUIRED} workloads")
        return 1

    baseline = latest_run_with(args.baseline)
    if baseline is None:
        print(
            f"note: {args.baseline} has no executor benchmarks yet; "
            "recording the first — gate passes vacuously"
        )
        return 0

    base_speedup = speedup(baseline)
    cur_speedup = speedup(current)
    floor = args.threshold * base_speedup

    def _row(label: str, run: dict) -> str:
        workloads = run["workloads"]
        parts = [f"{label:>9}:"]
        for name in (
            "pipeline_per_record", "pipeline_threaded", "pipeline_batched",
        ):
            seconds = workloads.get(name, {}).get("wall_seconds")
            text = f"{seconds:.4f}s" if seconds is not None else "-"
            parts.append(f"{name.split('pipeline_')[1]}={text}")
        return "  ".join(parts)

    print(_row("baseline", baseline),
          f" speedup={base_speedup:.2f}x (rev {baseline.get('git_rev')})")
    print(_row("current", current), f" speedup={cur_speedup:.2f}x")
    print(f"gate: current speedup must be >= {floor:.2f}x "
          f"({args.threshold:.0%} of baseline)")

    if cur_speedup < floor:
        print("FAIL: batched execution regressed against the per-record path")
        return 1
    print("OK: batching gate passed")

    return _scaling_gate(args)


def _scaling_gate(args) -> int:
    baseline = latest_run_with(args.baseline, SCALE_REQUIRED)
    if baseline is None:
        print(
            f"note: {args.baseline} has no scale-out benchmarks yet; "
            "scaling gate passes vacuously"
        )
        return 0
    current = latest_run_with(args.current, SCALE_REQUIRED)
    if current is None:
        print(
            f"FAIL: baseline has scale-out benchmarks but {args.current} "
            f"has no run with {SCALE_REQUIRED} workloads"
        )
        return 1

    base_speedup = scale_speedup(baseline)
    cur_speedup = scale_speedup(current)
    floor = args.scale_threshold * base_speedup

    def _row(label: str, run: dict) -> str:
        workloads = run["workloads"]
        parts = [f"{label:>9}:"]
        for name in (
            "scale_sequential", "scale_sharded2", "scale_sharded4",
            "scale_sharded8", "scale_async4",
        ):
            seconds = workloads.get(name, {}).get("sim_seconds")
            text = f"{seconds:.1f}s" if seconds is not None else "-"
            parts.append(f"{name.split('scale_')[1]}={text}")
        return "  ".join(parts)

    print(_row("baseline", baseline),
          f" sharded4 speedup={base_speedup:.2f}x "
          f"(rev {baseline.get('git_rev')})")
    print(_row("current", current),
          f" sharded4 speedup={cur_speedup:.2f}x")
    print(f"gate: current simulated speedup must be >= {floor:.2f}x "
          f"({args.scale_threshold:.0%} of baseline)")

    if cur_speedup < floor:
        print("FAIL: sharded execution stopped scaling over sequential")
        return 1
    print("OK: scaling gate passed")

    return _incremental_gate(args)


def _incremental_gate(args) -> int:
    """Absolute floor on the incremental-vs-cold simulated speedup.

    Unlike the relative gates above, this one needs no baseline: the
    speedups are computed on the virtual clock inside one snapshot run,
    so they are deterministic and machine-independent.
    """
    current = latest_run_with(args.current, INCR_REQUIRED)
    if current is None:
        baseline = latest_run_with(args.baseline, INCR_REQUIRED)
        if baseline is None:
            print(
                f"note: no incremental benchmarks in {args.current} or the "
                "baseline yet; incremental gate passes vacuously"
            )
            return 0
        print(
            f"FAIL: baseline has incremental benchmarks but {args.current} "
            f"has no run with {INCR_REQUIRED} workloads"
        )
        return 1

    workload = current["workloads"]["incr_delta1pct"]
    speedup_cost = workload.get("speedup_cost", 0.0)
    speedup_time = workload.get("speedup_llm_time", 0.0)
    print(
        f"incremental: delta={workload.get('delta_docs')} docs  "
        f"mode={workload.get('mode')}  "
        f"replayed={workload.get('replayed_calls')}  "
        f"fresh={workload.get('fresh_calls')}  "
        f"speedup cost={speedup_cost:.1f}x llm-time={speedup_time:.1f}x"
    )
    print(f"gate: both speedups must be >= {args.incremental_floor:.1f}x")
    if (speedup_cost < args.incremental_floor
            or speedup_time < args.incremental_floor):
        print("FAIL: incremental re-run is no longer >= "
              f"{args.incremental_floor:.1f}x cheaper than a cold run")
        return 1
    print("OK: incremental gate passed")

    return _server_gate(args)


def _server_ratio(run: dict) -> float:
    """Concurrent-over-sequential serving throughput (turns/sec)."""
    workloads = run["workloads"]
    sequential = workloads["server_turns_sequential"]["turns_per_sec"]
    concurrent = workloads["server_turns_concurrent"]["turns_per_sec"]
    if sequential <= 0:
        return float("inf")
    return concurrent / sequential


def _server_gate(args) -> int:
    baseline = latest_run_with(args.baseline, SERVER_REQUIRED)
    if baseline is None:
        print(
            f"note: {args.baseline} has no serving benchmarks yet; "
            "serving gate passes vacuously"
        )
        return 0
    current = latest_run_with(args.current, SERVER_REQUIRED)
    if current is None:
        print(
            f"FAIL: baseline has serving benchmarks but {args.current} "
            f"has no run with {SERVER_REQUIRED} workloads"
        )
        return 1

    base_ratio = _server_ratio(baseline)
    cur_ratio = _server_ratio(current)
    floor = args.server_threshold * base_ratio

    def _row(label: str, run: dict) -> str:
        workloads = run["workloads"]
        parts = [f"{label:>9}:"]
        for name in SERVER_REQUIRED:
            tps = workloads.get(name, {}).get("turns_per_sec")
            text = f"{tps:.2f} turns/s" if tps is not None else "-"
            parts.append(f"{name.split('server_turns_')[1]}={text}")
        return "  ".join(parts)

    print(_row("baseline", baseline),
          f" concurrent/sequential={base_ratio:.2f}x "
          f"(rev {baseline.get('git_rev')})")
    print(_row("current", current),
          f" concurrent/sequential={cur_ratio:.2f}x")
    print(f"gate: current ratio must be >= {floor:.2f}x "
          f"({args.server_threshold:.0%} of baseline)")

    if cur_ratio < floor:
        print("FAIL: concurrent tenants regressed against the sequential "
              "serving baseline")
        return 1
    print("OK: serving gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
