"""Legacy setup shim.

The execution environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs (``pip install -e .`` with pyproject-only metadata)
fail while building the editable wheel.  This shim lets pip fall back to the
legacy ``setup.py develop`` code path:

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
