"""DataRecord: attribute proxying, derivation, lineage."""

import pytest

from repro.core.builtin_schemas import PDFFile, TextFile
from repro.core.errors import SchemaError
from repro.core.records import DataRecord
from repro.core.schemas import make_schema

Clinical = make_schema(
    "Clinical", "Clinical dataset info",
    {"name": "dataset name", "url": "dataset url"},
)


class TestAttributeAccess:
    def test_set_and_get(self):
        record = DataRecord(TextFile)
        record.filename = "a.txt"
        assert record.filename == "a.txt"

    def test_unset_field_is_none(self):
        record = DataRecord(TextFile)
        assert record.text_contents is None

    def test_unknown_field_read_raises(self):
        record = DataRecord(TextFile)
        with pytest.raises(AttributeError):
            _ = record.nonexistent

    def test_unknown_field_write_raises(self):
        record = DataRecord(TextFile)
        with pytest.raises(SchemaError, match="unknown field"):
            record.nonexistent = 1

    def test_coercion_applied_on_write(self):
        record = DataRecord(PDFFile)
        record.page_count = "12"
        assert record.page_count == 12

    def test_get_with_default(self):
        record = DataRecord(TextFile)
        assert record.get("filename", "fallback") == "fallback"

    def test_contains(self):
        record = DataRecord(TextFile)
        record.filename = "x"
        assert "filename" in record
        assert "text_contents" not in record


class TestConstruction:
    def test_from_dict_ignores_unknown_keys(self):
        record = DataRecord.from_dict(
            TextFile, {"filename": "a", "bogus": 1}
        )
        assert record.filename == "a"

    def test_record_ids_unique(self):
        a, b = DataRecord(TextFile), DataRecord(TextFile)
        assert a.record_id != b.record_id

    def test_source_id_stamped(self):
        record = DataRecord(TextFile, source_id="demo")
        assert record.source_id == "demo"


class TestDerive:
    def test_shared_fields_carry_over(self):
        Schema2 = make_schema(
            "WithFilename", "d",
            {"filename": "file", "extra": "extra"},
        )
        parent = DataRecord.from_dict(TextFile, {"filename": "a.txt"})
        child = parent.derive(Schema2, {"extra": "e"})
        assert child.filename == "a.txt"
        assert child.extra == "e"

    def test_lineage(self):
        parent = DataRecord.from_dict(TextFile, {"filename": "a"})
        child = parent.derive(Clinical, {"name": "n"})
        grandchild = child.derive(Clinical, {"url": "u"})
        assert grandchild.parent is child
        assert grandchild.root() is parent

    def test_derive_coerces_values(self):
        from repro.core.fields import NumericField

        Numbers = make_schema(
            "Numbers", "d", {"count": NumericField(desc="count")},
        )
        parent = DataRecord(TextFile)
        child = parent.derive(Numbers, {"count": "7"})
        assert child.count == 7

    def test_derive_ignores_fields_not_in_target(self):
        parent = DataRecord(TextFile)
        child = parent.derive(Clinical, {"name": "x", "bogus": "y"})
        assert child.name == "x"


class TestDocumentText:
    def test_prefers_text_contents(self):
        record = DataRecord.from_dict(
            TextFile, {"filename": "a", "text_contents": "The body."}
        )
        assert record.document_text() == "The body."

    def test_falls_back_to_parent(self):
        parent = DataRecord.from_dict(
            TextFile, {"text_contents": "Parent text."}
        )
        child = parent.derive(Clinical, {})
        assert child.document_text() == "Parent text."

    def test_fingerprint_matches_oracle_convention(self):
        from repro.llm.oracle import fingerprint_text

        record = DataRecord.from_dict(TextFile, {"text_contents": "abc def"})
        assert record.fingerprint == fingerprint_text("abc def")

    def test_joins_string_fields_when_no_document_field(self):
        Pair = make_schema("Pair", "d", {"alpha": "a", "beta": "b"})
        record = DataRecord.from_dict(Pair, {"alpha": "one", "beta": "two"})
        assert "one" in record.document_text()
        assert "two" in record.document_text()


class TestSerialization:
    def test_to_dict_hides_bytes(self):
        record = DataRecord.from_dict(
            TextFile, {"filename": "a", "contents": b"\x00\x01\x02"}
        )
        assert record.to_dict()["contents"] == "<3 bytes>"

    def test_to_dict_include_bytes(self):
        record = DataRecord.from_dict(TextFile, {"contents": b"xy"})
        assert record.to_dict(include_bytes=True)["contents"] == b"xy"

    def test_to_json_roundtrips(self):
        import json

        record = DataRecord.from_dict(TextFile, {"filename": "a"})
        assert json.loads(record.to_json())["filename"] == "a"

    def test_missing_required(self):
        record = DataRecord(TextFile)  # filename is required on File
        assert "filename" in record.missing_required()
        record.filename = "a"
        assert record.missing_required() == []

    def test_equality_by_schema_and_values(self):
        a = DataRecord.from_dict(TextFile, {"filename": "x"})
        b = DataRecord.from_dict(TextFile, {"filename": "x"})
        c = DataRecord.from_dict(TextFile, {"filename": "y"})
        assert a == b
        assert a != c

    def test_repr_truncates_long_values(self):
        record = DataRecord.from_dict(
            TextFile, {"text_contents": "x" * 500}
        )
        assert len(repr(record)) < 300


class TestLineage:
    def test_lineage_chain_order(self):
        parent = DataRecord.from_dict(TextFile, {"filename": "src"})
        middle = parent.derive(Clinical, {"name": "n"})
        leaf = middle.derive(Clinical, {"url": "u"})
        chain = leaf.lineage()
        assert chain == [parent, middle, leaf]
        assert chain[0] is parent

    def test_lineage_of_root_is_itself(self):
        record = DataRecord(TextFile)
        assert record.lineage() == [record]
