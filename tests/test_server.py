"""The multi-tenant service layer: sessions, quotas, isolation, streaming.

Covers the HTTP surface end-to-end against a live server on an
ephemeral port, the :class:`SessionStore` quota edge cases at the store
API, and the headline isolation guarantee: N concurrent tenants running
the same script produce byte-identical run artifacts to a solo
in-process session, with zero runtime sanitizer violations and ledgers
that sum to the admin rollup.
"""

import json
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.analysis.sanitizer import sanitize
from repro.llm.usage import QuotaExceededError
from repro.server import ReproServer, SessionStore, run_in_thread

#: The Fig. 3-5 script every tenant (and the solo baseline) runs.
SCRIPT = [
    "Load the papers from the sigmod-demo dataset",
    "Keep only the papers about colorectal cancer",
    "run the pipeline",
]

#: Run artifacts that must be byte-identical across tenants and solo.
ARTIFACTS = ("records.json", "stats.json", "provenance.json")


# -- plumbing -----------------------------------------------------------


def request(server, method, path, body=None):
    """One JSON request against a test server; returns (status, payload)."""
    status, _, payload = request_raw(server, method, path, body)
    return status, payload


def request_raw(server, method, path, body=None):
    """Like :func:`request` but also returns the response headers."""
    host, port = server.server_address
    data = None if body is None else json.dumps(body).encode("utf-8")
    req = urllib.request.Request(
        f"http://{host}:{port}{path}",
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            raw = resp.read().decode("utf-8")
            status, headers = resp.status, dict(resp.headers)
    except urllib.error.HTTPError as exc:
        raw = exc.read().decode("utf-8")
        status, headers = exc.code, dict(exc.headers)
    content_type = headers.get("Content-Type", "")
    payload = (json.loads(raw) if content_type.startswith("application/json")
               else raw)
    return status, headers, payload


@pytest.fixture()
def make_store(tmp_path, sigmod_demo):
    """SessionStore factory rooted in the test tmp dir."""
    counter = {"n": 0}

    def _make(**kwargs):
        counter["n"] += 1
        root = tmp_path / f"tenants{counter['n']}"
        return SessionStore(root=str(root), **kwargs)

    return _make


@pytest.fixture()
def make_server(make_store):
    """Live-server factory (ephemeral port); servers stop on teardown."""
    servers = []

    def _make(**kwargs):
        server = ReproServer(("127.0.0.1", 0), make_store(**kwargs))
        run_in_thread(server)
        servers.append(server)
        return server

    yield _make
    for server in servers:
        server.shutdown()
        server.server_close()


def drive_script(server, tenant, script=SCRIPT):
    """Create a session and run the script; returns the turn rows."""
    status, session = request(
        server, "POST", f"/tenants/{tenant}/sessions", {})
    assert status == 201
    sid = session["session_id"]
    rows = []
    for message in script:
        status, row = request(
            server, "POST", f"/tenants/{tenant}/sessions/{sid}/turns",
            {"message": message})
        assert status == 200, row
        rows.append(row)
    return sid, rows


# -- HTTP surface -------------------------------------------------------


class TestSessionsOverHTTP:
    def test_health(self, make_server):
        server = make_server()
        status, payload = request(server, "GET", "/healthz")
        assert status == 200 and payload["ok"] is True

    def test_create_then_resume(self, make_server):
        server = make_server()
        status, row = request(server, "POST", "/tenants/acme/sessions", {})
        assert status == 201
        assert row["session_id"] == "s-0001" and row["resumed"] is False
        status, row = request(
            server, "POST", "/tenants/acme/sessions",
            {"session_id": "s-0001"})
        assert status == 200 and row["resumed"] is True
        status, listing = request(server, "GET", "/tenants/acme/sessions")
        assert [s["session_id"] for s in listing["sessions"]] == ["s-0001"]

    def test_turn_runs_the_chat(self, make_server):
        server = make_server()
        sid, rows = drive_script(server, "acme", SCRIPT[:1])
        turn = rows[0]
        assert turn["status"] == "ok"
        assert turn["tools"] == ["load_dataset"]
        assert "11 records" in turn["reply"]
        assert turn["usage"]["cost_usd"] > 0

    def test_turn_events_stream(self, make_server):
        server = make_server()
        sid, rows = drive_script(server, "acme")
        tid = rows[-1]["turn_id"]
        status, payload = request(
            server, "GET",
            f"/tenants/acme/sessions/{sid}/turns/{tid}/events")
        assert status == 200 and payload["done"] is True
        kinds = [e.get("type") for e in payload["events"]]
        assert "turn_start" in kinds and "turn_end" in kinds
        assert "plan_start" in kinds and "plan_end" in kinds
        assert "span" in kinds  # trace-derived tail

    def test_async_turn_streams_to_done(self, make_server):
        server = make_server()
        status, session = request(
            server, "POST", "/tenants/acme/sessions", {})
        sid = session["session_id"]
        status, row = request(
            server, "POST", f"/tenants/acme/sessions/{sid}/turns",
            {"message": SCRIPT[0], "wait": False})
        # 202/running normally; a fast worker may finish the turn
        # before the handler snapshots the row (then it's already 200).
        assert status in (200, 202)
        assert row["status"] in ("running", "ok")
        tid = row["turn_id"]
        offset, done, events = 0, False, []
        while not done:
            status, payload = request(
                server, "GET",
                f"/tenants/acme/sessions/{sid}/turns/{tid}/events"
                f"?offset={offset}&wait=5")
            assert status == 200
            events.extend(payload["events"])
            offset = payload["next_offset"]
            done = payload["done"]
        assert [e.get("type") for e in events].count("turn_end") == 1
        status, turn = request(
            server, "GET", f"/tenants/acme/sessions/{sid}/turns/{tid}")
        assert turn["status"] == "ok"

    def test_bad_requests(self, make_server):
        server = make_server()
        status, _ = request(
            server, "POST", "/tenants/bad..id!/sessions", {})
        assert status == 400
        status, _ = request(
            server, "GET", "/tenants/acme/sessions/s-9999")
        assert status == 404
        request(server, "POST", "/tenants/acme/sessions", {})
        status, _ = request(
            server, "POST", "/tenants/acme/sessions/s-0001/turns", {})
        assert status == 400  # missing message

    def test_admin_evict(self, make_server):
        server = make_server()
        request(server, "POST", "/tenants/acme/sessions", {})
        status, payload = request(
            server, "DELETE", "/admin/tenants/acme/sessions/s-0001")
        assert status == 200 and payload["evicted"] == "s-0001"
        status, _ = request(
            server, "DELETE", "/admin/tenants/acme/sessions/s-0001")
        assert status == 404


class TestRunsAndResults:
    def test_runs_trace_and_result_slice(self, make_server):
        server = make_server()
        drive_script(server, "acme")
        status, listing = request(server, "GET", "/tenants/acme/runs")
        assert status == 200
        run_ids = [r["run_id"] for r in listing["runs"]]
        assert run_ids == ["run-0001"]
        status, run = request(
            server, "GET", "/tenants/acme/runs/run-0001")
        assert status == 200 and run["meta"]["run_id"] == "run-0001"
        status, trace = request(
            server, "GET", "/tenants/acme/traces/run-0001")
        assert status == 200 and trace["trace"]["spans"]
        status, sliced = request(
            server, "GET",
            "/tenants/acme/results/run-0001?offset=1&limit=2")
        assert status == 200
        assert sliced["result"]["count"] == 8
        assert len(sliced["records"]) == 2

    def test_cross_tenant_fetch_is_404(self, make_server):
        server = make_server()
        drive_script(server, "acme")
        status, _ = request(
            server, "GET", "/tenants/globex/runs/run-0001")
        assert status == 404
        status, _ = request(
            server, "GET", "/tenants/globex/results/run-0001")
        assert status == 404

    def test_runs_live_under_tenant_root(self, make_server):
        server = make_server()
        drive_script(server, "acme")
        root = server.store.root
        assert (root / "acme" / "runs" / "run-0001" /
                "records.json").is_file()


# -- quotas (store API: the edge semantics) -----------------------------


class TestQuotaEdges:
    def _spend_of(self, store, tenant, script):
        store.ensure_session(tenant)
        spends = []
        for message in script:
            store.run_turn(tenant, "s-0001", message)
            with store.acquire(tenant) as state:
                spends.append(state.budget.spent_cost_usd)
        return spends

    def test_exactly_at_budget_succeeds_then_rejects(self, make_store):
        probe = make_store()
        total = self._spend_of(probe, "probe", SCRIPT)[-1]
        assert total > 0
        store = make_store(default_max_cost_usd=total)
        store.ensure_session("acme")
        for message in SCRIPT:  # lands exactly on the cap: all succeed
            turn = store.run_turn("acme", "s-0001", message)
            assert turn.status == "ok"
        with store.acquire("acme") as tenant:
            snap = tenant.usage()
        assert snap["spent_cost_usd"] == pytest.approx(total)
        assert snap["exhausted"] is True
        with pytest.raises(QuotaExceededError):  # no headroom left
            store.run_turn("acme", "s-0001", "run the pipeline")

    def test_overbudget_aborts_midrun_with_partial_ledger(
            self, make_store):
        probe = make_store()
        spends = self._spend_of(probe, "probe", SCRIPT)
        # Cap between "after turn 2" and "after turn 3": the pipeline
        # execution itself must be what breaches, mid-run.
        cap = (spends[1] + spends[2]) / 2
        store = make_store(default_max_cost_usd=cap)
        store.ensure_session("acme")
        for message in SCRIPT[:2]:
            assert store.run_turn("acme", "s-0001", message).status == "ok"
        turn = store.run_turn("acme", "s-0001", SCRIPT[2])
        assert turn.status == "quota_rejected"
        with store.acquire("acme") as tenant:
            snap = tenant.usage()
        # Partial spend is on the ledger: strictly over the cap (the
        # breaching call is recorded first), but below a full cold run.
        assert cap < snap["spent_cost_usd"] <= spends[2]
        assert snap["exhausted"] is True

    def test_admin_raise_unblocks(self, make_store):
        store = make_store(default_max_cost_usd=0.0)
        store.ensure_session("acme")
        with pytest.raises(QuotaExceededError):
            store.run_turn("acme", "s-0001", SCRIPT[0])
        store.set_quota("acme", max_cost_usd=10.0)
        turn = store.run_turn("acme", "s-0001", SCRIPT[0])
        assert turn.status == "ok"

    def test_http_429_carries_snapshot_and_admin_raise_unblocks(
            self, make_server):
        server = make_server(default_max_cost_usd=0.0)
        request(server, "POST", "/tenants/acme/sessions", {})
        status, payload = request(
            server, "POST", "/tenants/acme/sessions/s-0001/turns",
            {"message": SCRIPT[0]})
        assert status == 429
        assert payload["error"] == "quota_exhausted"
        status, quota = request(
            server, "POST", "/admin/tenants/acme/quota",
            {"max_cost_usd": 10.0})
        assert status == 200
        assert quota["usage"]["max_cost_usd"] == 10.0
        status, row = request(
            server, "POST", "/tenants/acme/sessions/s-0001/turns",
            {"message": SCRIPT[0]})
        assert status == 200 and row["status"] == "ok"


# -- persistence --------------------------------------------------------


class TestRestartResume:
    def test_sessions_and_ledger_survive_restart(self, make_store,
                                                 tmp_path):
        store = SessionStore(root=str(tmp_path / "persist"))
        store.ensure_session("acme")
        for message in SCRIPT:
            store.run_turn("acme", "s-0001", message)
        with store.acquire("acme") as tenant:
            spent = tenant.budget.spent_cost_usd
        assert spent > 0

        reborn = SessionStore(root=str(tmp_path / "persist"))
        row = reborn.ensure_session("acme", session_id="s-0001")
        assert row["resumed"] is True
        assert row["turns"] == len(SCRIPT)
        with reborn.acquire("acme") as tenant:
            assert tenant.budget.spent_cost_usd == pytest.approx(spent)
            session = tenant.get_session("s-0001")
            # The rebuilt pipeline replays the recorded steps.
            assert "filter" in session.chat.workspace.describe_pipeline()
        # A new run in the resumed store lands in the same registry.
        reborn.run_turn("acme", "s-0001", "run the pipeline")
        with reborn.acquire("acme") as tenant:
            run_ids = [r["run_id"] for r in tenant.registry().list()]
        assert run_ids == ["run-0001", "run-0002"]


class TestWorkspaceRootPin:
    def test_snapshot_restore_threads_the_root(self, tmp_path):
        from repro.chat.workspace import PipelineWorkspace

        workspace = PipelineWorkspace()
        workspace.attach_root(tmp_path / "tenant-a")
        snapshot = workspace.snapshot()
        workspace.root = None
        workspace.runs_dir = None
        workspace.restore(snapshot)
        assert workspace.root == str(tmp_path / "tenant-a")
        assert workspace.runs_dir == str(tmp_path / "tenant-a" / "runs")

    def test_attached_session_never_writes_global_root(
            self, sigmod_demo, tmp_path, monkeypatch):
        from repro.chat.session import PalimpChatSession

        monkeypatch.chdir(tmp_path)
        session = PalimpChatSession()
        session.workspace.attach_root(tmp_path / "tenant-a")
        for message in SCRIPT:
            session.chat(message)
        assert (tmp_path / "tenant-a" / "runs" / "run-0001").is_dir()
        assert not (tmp_path / ".repro").exists()


# -- the isolation pin --------------------------------------------------


class TestConcurrentTenantIsolation:
    def test_four_tenants_match_solo_byte_for_byte(
            self, sigmod_demo, tmp_path):
        from repro.chat.session import PalimpChatSession

        # Solo baseline: one in-process session, no server, own root.
        solo_root = tmp_path / "solo"
        solo = PalimpChatSession()
        solo.workspace.attach_root(solo_root)
        for message in SCRIPT:
            solo.chat(message)
        solo_bytes = {
            name: (solo_root / "runs" / "run-0001" / name).read_bytes()
            for name in ARTIFACTS
        }
        assert json.loads(solo_bytes["records.json"])  # non-empty run

        # Four tenants drive the same script concurrently through the
        # HTTP layer, under the runtime lock sanitizer.
        tenants = ["t1", "t2", "t3", "t4"]
        with sanitize() as report:
            store = SessionStore(root=str(tmp_path / "tenants"))
            server = ReproServer(("127.0.0.1", 0), store)
            run_in_thread(server)
            try:
                with ThreadPoolExecutor(max_workers=4) as pool:
                    list(pool.map(
                        lambda t: drive_script(server, t), tenants))
            finally:
                server.shutdown()
                server.server_close()

        assert report.violations == []
        assert report.cycles() == []
        assert report.guarded_writes > 0  # the check was not vacuous

        for tenant in tenants:
            run_dir = tmp_path / "tenants" / tenant / "runs" / "run-0001"
            for name in ARTIFACTS:
                assert (run_dir / name).read_bytes() == solo_bytes[name], (
                    f"{tenant}/{name} diverged from the solo run")

        # Ledgers: every tenant paid the same, and the rollup total is
        # exactly the sum of the per-tenant snapshots.
        rollup = store.usage_rollup()
        per_tenant = [
            rollup["tenants"][t]["spent_cost_usd"] for t in tenants]
        assert len(set(per_tenant)) == 1
        assert rollup["total"]["spent_cost_usd"] == pytest.approx(
            sum(per_tenant))
        assert rollup["total"]["spent_tokens"] == sum(
            rollup["tenants"][t]["spent_tokens"] for t in tenants)

        # The byte-identity above ran with telemetry ON (the store
        # default) against a telemetry-off solo session — the zero
        # observer effect pin.  Meanwhile the telemetry layer itself saw
        # everything: per-tenant turn counters and latency percentiles.
        payload = store.telemetry.metrics_payload()
        turns_by_tenant = {}
        for row in payload["metrics"]["counters"]:
            if row["name"] == "turns.completed_total":
                turns_by_tenant[row["labels"]["tenant"]] = row["value"]
        assert turns_by_tenant == {t: float(len(SCRIPT)) for t in tenants}
        latency_by_tenant = {
            row["labels"]["tenant"]: row["summary"]
            for row in payload["metrics"]["histograms"]
            if (row["name"] == "turn.wall_seconds"
                and "tenant" in row["labels"])
        }
        for tenant in tenants:
            summary = latency_by_tenant[tenant]
            assert summary["count"] == len(SCRIPT)
            assert 0 < summary["p50"] <= summary["p95"] <= summary["p99"]
        # Every turn-lifecycle log line carries a correlation id.
        turn_lines = [
            event for event in store.telemetry.log.read_events()
            if event["event"] in ("turn_start", "turn_finish")
        ]
        assert len(turn_lines) == len(tenants) * len(SCRIPT) * 2
        assert all(line.get("request_id") for line in turn_lines)


class TestAdminRollup:
    def test_rollup_sums_and_admin_tenants(self, make_server):
        server = make_server()
        drive_script(server, "acme", SCRIPT[:1])
        drive_script(server, "globex", SCRIPT[:1])
        status, rollup = request(server, "GET", "/admin/usage")
        assert status == 200
        total = sum(row["spent_cost_usd"]
                    for row in rollup["tenants"].values())
        assert rollup["total"]["spent_cost_usd"] == pytest.approx(total)
        assert rollup["health"]["status"] in ("ok", "degraded")
        status, tenants = request(server, "GET", "/admin/tenants")
        assert {row["tenant_id"] for row in tenants["tenants"]} == {
            "acme", "globex"}


# -- operational telemetry over HTTP ------------------------------------


class TestTelemetryEndpoints:
    def test_metrics_prometheus_text(self, make_server):
        server = make_server()
        drive_script(server, "acme", SCRIPT[:1])
        status, headers, text = request_raw(server, "GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "# TYPE http_requests_total counter" in text
        assert 'turns_completed_total{status="ok",tenant="acme"} 1' in text
        assert 'turn_wall_seconds{quantile="0.95",tenant="acme"}' in text
        assert 'repro_slo_ok{slo="availability"} 1' in text

    def test_metrics_json_variant(self, make_server):
        server = make_server()
        drive_script(server, "acme", SCRIPT[:1])
        status, payload = request(server, "GET", "/metrics?format=json")
        assert status == 200
        assert payload["status"] == "ok"
        names = {row["name"] for row in payload["metrics"]["counters"]}
        assert "turns.completed_total" in names
        assert "http.requests_total" in names

    def test_version_endpoint(self, make_server):
        from repro.cli import package_metadata

        server = make_server()
        status, payload = request(server, "GET", "/version")
        version, description = package_metadata()
        assert status == 200
        assert payload["version"] == version
        assert payload["description"] == description

    def test_every_response_carries_a_request_id(self, make_server):
        server = make_server()
        seen = set()
        for path in ("/healthz", "/metrics", "/version", "/nope"):
            _, headers, _ = request_raw(server, "GET", path)
            rid = headers.get("X-Request-Id")
            assert rid and rid.startswith("req-")
            seen.add(rid)
        assert len(seen) == 4  # unique per request

    def test_healthz_degrades_with_reason(self, make_server):
        server = make_server()
        status, payload = request(server, "GET", "/healthz")
        assert status == 200 and payload["status"] == "ok"
        # Pump 5xx availability samples into the window: the
        # availability SLO (>= 0.99) must fire and name itself.
        histogram = server.store.telemetry.ops.histogram(
            "http.availability")
        for _ in range(50):
            histogram.observe(0.0)
        status, payload = request(server, "GET", "/healthz")
        assert status == 200
        assert payload["status"] == "degraded" and payload["ok"] is False
        assert "availability" in {a["name"] for a in payload["alerts"]}

    def test_telemetry_off_store_still_serves(self, make_server):
        server = make_server(telemetry=False)
        sid, rows = drive_script(server, "acme", SCRIPT[:1])
        assert rows[0]["status"] == "ok"
        status, _, text = request_raw(server, "GET", "/metrics")
        assert status == 200
        assert "turns_completed_total" not in text
        status, payload = request(server, "GET", "/healthz")
        assert payload["status"] == "ok" and payload["slos"] == []


class TestRequestCorrelation:
    def test_turn_and_log_lines_share_the_http_request_id(
            self, make_server):
        server = make_server()
        request(server, "POST", "/tenants/acme/sessions", {})
        status, headers, row = request_raw(
            server, "POST", "/tenants/acme/sessions/s-0001/turns",
            {"message": SCRIPT[0]})
        assert status == 200
        rid = headers["X-Request-Id"]
        assert row["request_id"] == rid
        # The persisted turn keeps it.
        status, turn = request(
            server, "GET",
            f"/tenants/acme/sessions/s-0001/turns/{row['turn_id']}")
        assert turn["request_id"] == rid
        # Every JSONL log line of the turn's lifecycle carries it too.
        events = server.store.telemetry.log.read_events()
        for name in ("request_start", "turn_start", "turn_finish",
                     "request_finish"):
            matching = [e for e in events
                        if e["event"] == name
                        and e.get("request_id") == rid]
            assert matching, f"no {name} line with request_id {rid}"
        turn_lines = [e for e in events if e["event"] == "turn_start"
                      and e.get("request_id") == rid]
        assert turn_lines[0]["tenant"] == "acme"
        assert turn_lines[0]["session"] == "s-0001"

    def test_progress_events_carry_the_request_id(self, make_server):
        server = make_server()
        sid, rows = drive_script(server, "acme")
        rid = rows[-1]["request_id"]
        assert rid
        status, payload = request(
            server, "GET",
            f"/tenants/acme/sessions/{sid}/turns/"
            f"{rows[-1]['turn_id']}/events")
        assert status == 200
        tagged = [e for e in payload["events"]
                  if e.get("request_id") == rid]
        assert tagged  # live events and span tail are correlated


class TestWorkerPoolSaturation:
    def test_saturated_pool_returns_503_and_fires_the_slo(
            self, make_server):
        import time

        server = make_server(async_workers=1, async_queue=1)
        store = server.store
        request(server, "POST", "/tenants/acme/sessions", {})
        with store.acquire("acme") as tenant:
            session = tenant.get_session("s-0001")

        # Hold the session's turn lock: the one worker blocks on it,
        # the one queue slot fills, and the third async turn must bounce.
        session.turn_lock.acquire()
        try:
            status, row1 = request(
                server, "POST", "/tenants/acme/sessions/s-0001/turns",
                {"message": SCRIPT[0], "wait": False})
            assert status == 202 and row1["status"] == "running"
            deadline = time.monotonic() + 10
            while store.worker_pool.stats()["active"] < 1:
                assert time.monotonic() < deadline, "worker never started"
                time.sleep(0.01)
            status, row2 = request(
                server, "POST", "/tenants/acme/sessions/s-0001/turns",
                {"message": SCRIPT[0], "wait": False})
            assert status == 202

            status, headers, payload = request_raw(
                server, "POST", "/tenants/acme/sessions/s-0001/turns",
                {"message": SCRIPT[0], "wait": False})
            assert status == 503
            assert payload["error"] == "saturated"
            assert int(headers["Retry-After"]) >= 1

            # The rejection fired the saturation SLO: /healthz degrades
            # and names the worker pool.
            status, health = request(server, "GET", "/healthz")
            assert health["status"] == "degraded"
            assert "worker_pool_saturation" in {
                a["name"] for a in health["alerts"]}
            # The bounced turn left no orphan row behind.
            status, detail = request(
                server, "GET", "/tenants/acme/sessions/s-0001")
            assert len(detail["turn_log"]) == 2
        finally:
            session.turn_lock.release()

        # Released: both accepted turns drain to completion.
        for row in (row1, row2):
            deadline = time.monotonic() + 60
            while True:
                status, turn = request(
                    server, "GET",
                    f"/tenants/acme/sessions/s-0001/turns/"
                    f"{row['turn_id']}")
                if turn["status"] != "running":
                    break
                assert time.monotonic() < deadline, "turn never finished"
                time.sleep(0.05)
            assert turn["status"] == "ok"


class TestWorkerPoolResilience:
    def test_worker_survives_a_job_that_raises(self):
        import time

        from repro.server.store import TurnWorkerPool

        pool = TurnWorkerPool(workers=1, queue_size=4)
        done = threading.Event()

        def bad():
            raise RuntimeError("boom")

        pool.submit(bad)
        pool.submit(done.set)
        assert done.wait(10), "worker died on the raising job"
        deadline = time.monotonic() + 10
        while pool.stats()["active"] or pool.stats()["queued"]:
            assert time.monotonic() < deadline, "pool never drained"
            time.sleep(0.01)
        pool.close()

    def test_saturation_rollback_removes_the_rejected_turn_by_identity(
            self, make_store):
        from repro.server.store import TurnState, WorkerPoolSaturated

        store = make_store(telemetry=False)
        store.ensure_session("acme")
        with store.acquire("acme") as tenant:
            session = tenant.get_session("s-0001")
        sentinel = TurnState("t-sentinel", "appended concurrently")

        def submit_then_reject(fn):
            # A concurrent POST appends another turn between our append
            # and the pool rejection: the rollback must still remove
            # *our* turn, not whatever is last.
            session.turns.append(sentinel)
            raise WorkerPoolSaturated("full")

        store.worker_pool.submit = submit_then_reject
        with pytest.raises(WorkerPoolSaturated):
            store.run_turn("acme", "s-0001", SCRIPT[0], wait=False)
        assert [t.turn_id for t in session.turns] == ["t-sentinel"]

    def test_infra_failure_marks_turn_errored_not_stuck(self, make_store):
        from repro.server.store import TurnState

        store = make_store()
        store.ensure_session("acme")
        with store.acquire("acme") as tenant:
            del tenant.sessions["s-0001"]  # evicted while queued
        turn = TurnState("t-0001", SCRIPT[0], request_id="req-x")
        with pytest.raises(KeyError):
            store._run_turn("acme", "s-0001", turn)
        assert turn.status == "error"
        assert "KeyError" in turn.error
        assert turn.events.closed  # streaming readers unblock
        in_flight = [g["value"]
                     for g in store.telemetry.ops.snapshot()["gauges"]
                     if g["name"] == "turns.in_flight"]
        assert in_flight == [0.0]  # the gauge never leaks
