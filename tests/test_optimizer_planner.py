"""Plan enumeration, candidates, Pareto pruning, cost model."""

import pytest

from repro.core.builtin_schemas import TextFile
from repro.core.dataset import Dataset
from repro.core.schemas import make_schema
from repro.core.sources import MemorySource
from repro.llm.models import ModelRegistry, default_registry
from repro.optimizer.candidates import candidate_operators
from repro.optimizer.cost_model import CostModel, PlanEstimate, SampleStats
from repro.optimizer.planner import (
    PlanCandidate,
    enumerate_plans,
    pareto_frontier,
    plan_space_size,
)

Clinical = make_schema("Clinical", "d", {"name": "n", "url": "u"})


@pytest.fixture()
def source():
    docs = [f"Document {i} about colorectal cancer." for i in range(10)]
    return MemorySource(docs, dataset_id="plans-test", schema=TextFile)


@pytest.fixture()
def pipeline(source):
    return (
        Dataset(source)
        .filter("about colorectal cancer")
        .convert(Clinical, cardinality="one_to_many")
    )


def n_chat_models():
    return len(default_registry().chat_models())


def n_embed_models():
    return len(default_registry().embedding_models())


class TestCandidates:
    def test_semantic_filter_candidates(self, pipeline, source):
        logical = pipeline.logical_plan().operators[1]
        candidates = candidate_operators(
            logical, default_registry(), source=source
        )
        assert len(candidates) == n_chat_models() + n_embed_models()

    def test_semantic_convert_candidates(self, pipeline, source):
        logical = pipeline.logical_plan().operators[2]
        candidates = candidate_operators(
            logical, default_registry(), source=source
        )
        # 4 strategies per chat model.
        assert len(candidates) == 4 * n_chat_models()

    def test_ablation_switches_shrink_space(self, pipeline, source):
        logical = pipeline.logical_plan().operators[2]
        candidates = candidate_operators(
            logical, default_registry(), source=source,
            include_token_reduction=False, include_code_synthesis=False,
        )
        assert len(candidates) == 2 * n_chat_models()

    def test_udf_filter_single_candidate(self, source):
        ds = Dataset(source).filter(lambda r: True)
        logical = ds.logical_plan().operators[1]
        candidates = candidate_operators(
            logical, default_registry(), source=source
        )
        assert len(candidates) == 1

    def test_plan_space_size(self, pipeline, source):
        size = plan_space_size(
            pipeline.logical_plan(), default_registry(), source
        )
        filters = n_chat_models() + n_embed_models()
        converts = 4 * n_chat_models()
        assert size == 1 * filters * converts


class TestEnumerate:
    def test_exhaustive_enumeration(self, pipeline, source):
        cost_model = CostModel(source.profile())
        candidates = enumerate_plans(
            pipeline.logical_plan(), source, default_registry(), cost_model
        )
        assert len(candidates) == plan_space_size(
            pipeline.logical_plan(), default_registry(), source
        )
        # Each candidate carries an estimate.
        assert all(c.estimate.cost_usd >= 0 for c in candidates)

    def test_pruned_enumeration_returns_frontier_subset(
        self, pipeline, source
    ):
        cost_model = CostModel(source.profile())
        full = enumerate_plans(
            pipeline.logical_plan(), source, default_registry(), cost_model,
            prune=False,
        )
        pruned = enumerate_plans(
            pipeline.logical_plan(), source, default_registry(), cost_model,
            prune=True,
        )
        assert 0 < len(pruned) <= len(full)
        # The overall best-cost plan must survive pruning.
        best_cost = min(c.estimate.cost_usd for c in full)
        assert min(c.estimate.cost_usd for c in pruned) == pytest.approx(
            best_cost
        )

    def test_plan_ids_unique(self, pipeline, source):
        cost_model = CostModel(source.profile())
        candidates = enumerate_plans(
            pipeline.logical_plan(), source, default_registry(), cost_model
        )
        ids = [c.plan.plan_id for c in candidates]
        assert len(set(ids)) == len(ids)


class TestParetoFrontier:
    def _candidate(self, cost, time, quality):
        return PlanCandidate(
            plan=None,
            estimate=PlanEstimate(
                plan=None, cost_usd=cost, time_seconds=time,
                quality=quality, output_cardinality=1.0,
            ),
        )

    def test_dominated_removed(self):
        good = self._candidate(1.0, 1.0, 0.9)
        dominated = self._candidate(2.0, 2.0, 0.8)
        frontier = pareto_frontier([good, dominated])
        assert frontier == [good]

    def test_incomparable_both_kept(self):
        cheap = self._candidate(1.0, 10.0, 0.5)
        fast = self._candidate(10.0, 1.0, 0.5)
        assert len(pareto_frontier([cheap, fast])) == 2

    def test_duplicates_kept_once_each(self):
        a = self._candidate(1.0, 1.0, 0.9)
        b = self._candidate(1.0, 1.0, 0.9)
        # Equal points do not dominate each other (no strict improvement).
        assert len(pareto_frontier([a, b])) == 2

    def test_order_independent_membership(self):
        candidates = [
            self._candidate(c, t, q)
            for c, t, q in [(1, 5, 0.5), (5, 1, 0.5), (3, 3, 0.9), (6, 6, 0.4)]
        ]
        forward = pareto_frontier(candidates)
        backward = pareto_frontier(list(reversed(candidates)))
        fkeys = {(c.estimate.cost_usd, c.estimate.time_seconds) for c in forward}
        bkeys = {(c.estimate.cost_usd, c.estimate.time_seconds) for c in backward}
        assert fkeys == bkeys


class TestCostModel:
    def test_quality_multiplies_down_the_pipeline(self, pipeline, source):
        cost_model = CostModel(source.profile())
        candidates = enumerate_plans(
            pipeline.logical_plan(), source, default_registry(), cost_model
        )
        # Plan quality is the product of per-op qualities along the
        # propagated stream (cardinality shrinks after the filter).
        from repro.physical.base import StreamEstimate

        profile = source.profile()
        for candidate in candidates:
            stream = StreamEstimate(
                profile.cardinality, profile.avg_document_tokens
            )
            product = 1.0
            for op in candidate.plan:
                est = op.naive_estimates(stream)
                product *= est.quality
                stream = StreamEstimate(
                    est.cardinality, stream.avg_document_tokens
                )
            assert candidate.estimate.quality == pytest.approx(product)

    def test_parallel_workers_shrink_time(self, pipeline, source):
        sequential = CostModel(source.profile(), max_workers=1)
        parallel = CostModel(source.profile(), max_workers=8)
        plan = enumerate_plans(
            pipeline.logical_plan(), source, default_registry(), sequential
        )[0].plan
        assert (
            parallel.estimate_plan(plan).time_seconds
            < sequential.estimate_plan(plan).time_seconds
        )

    def test_sample_stats_override_priors(self, pipeline, source):
        cost_model = CostModel(source.profile())
        plan = enumerate_plans(
            pipeline.logical_plan(), source, default_registry(), cost_model
        )[0].plan
        naive = cost_model.estimate_plan(plan)
        filter_op = plan.operators[1]
        cost_model.update(
            filter_op.full_op_id,
            SampleStats(selectivity=0.1, cost_per_record=0.0),
        )
        updated = cost_model.estimate_plan(plan)
        assert updated.from_sample
        assert updated.output_cardinality < naive.output_cardinality

    def test_invalid_workers(self, source):
        with pytest.raises(ValueError):
            CostModel(source.profile(), max_workers=0)
