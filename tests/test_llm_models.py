"""Model cards and the registry."""

import pytest

from repro.llm.models import (
    DEFAULT_MODEL_CARDS,
    ModelCard,
    ModelRegistry,
    available_models,
    default_registry,
    get_model,
)


def make_card(name="test-model", **overrides):
    defaults = dict(
        provider="test",
        usd_per_1m_input=1.0,
        usd_per_1m_output=2.0,
        quality=0.8,
    )
    defaults.update(overrides)
    return ModelCard(name=name, **defaults)


class TestModelCard:
    def test_cost_formula(self):
        card = make_card()
        # 1M input at $1 + 1M output at $2.
        assert card.cost_usd(1_000_000, 1_000_000) == pytest.approx(3.0)

    def test_cost_zero_tokens(self):
        assert make_card().cost_usd(0, 0) == 0.0

    def test_cost_rejects_negative(self):
        with pytest.raises(ValueError):
            make_card().cost_usd(-1, 0)

    def test_latency_includes_overhead(self):
        card = make_card(overhead_seconds=2.0)
        assert card.latency_seconds(0, 0) == pytest.approx(2.0)

    def test_latency_scales_with_tokens(self):
        card = make_card(
            overhead_seconds=0.0,
            prefill_tokens_per_second=1000.0,
            decode_tokens_per_second=10.0,
        )
        assert card.latency_seconds(1000, 10) == pytest.approx(2.0)

    def test_quality_bounds_enforced(self):
        with pytest.raises(ValueError):
            make_card(quality=1.5)
        with pytest.raises(ValueError):
            make_card(quality=-0.1)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            make_card(name="")

    def test_negative_price_rejected(self):
        with pytest.raises(ValueError):
            make_card(usd_per_1m_input=-1.0)

    def test_with_quality_returns_new_card(self):
        card = make_card(quality=0.8)
        boosted = card.with_quality(0.9)
        assert boosted.quality == 0.9
        assert card.quality == 0.8
        assert boosted.name == card.name


class TestModelRegistry:
    def test_register_and_get(self):
        registry = ModelRegistry()
        card = make_card()
        registry.register(card)
        assert registry.get("test-model") is card

    def test_duplicate_registration_rejected(self):
        registry = ModelRegistry([make_card()])
        with pytest.raises(ValueError):
            registry.register(make_card())

    def test_overwrite_allowed_when_requested(self):
        registry = ModelRegistry([make_card(quality=0.5)])
        registry.register(make_card(quality=0.9), overwrite=True)
        assert registry.get("test-model").quality == 0.9

    def test_unknown_model_error_lists_known(self):
        registry = ModelRegistry([make_card()])
        with pytest.raises(KeyError, match="test-model"):
            registry.get("nope")

    def test_chat_models_sorted_by_quality(self):
        registry = ModelRegistry([
            make_card("weak", quality=0.5),
            make_card("strong", quality=0.9),
        ])
        names = [c.name for c in registry.chat_models()]
        assert names == ["strong", "weak"]

    def test_embedding_models_separated(self):
        registry = ModelRegistry([
            make_card("chat"),
            make_card("embed", is_embedding_model=True),
        ])
        assert [c.name for c in registry.embedding_models()] == ["embed"]
        assert [c.name for c in registry.chat_models()] == ["chat"]

    def test_reasoning_models_filtered(self):
        registry = ModelRegistry([
            make_card("plain"),
            make_card("reasoner", supports_reasoning=True),
        ])
        assert [c.name for c in registry.reasoning_models()] == ["reasoner"]

    def test_unregister(self):
        registry = ModelRegistry([make_card()])
        registry.unregister("test-model")
        assert "test-model" not in registry
        with pytest.raises(KeyError):
            registry.unregister("test-model")

    def test_copy_is_independent(self):
        registry = ModelRegistry([make_card()])
        clone = registry.copy()
        clone.unregister("test-model")
        assert "test-model" in registry


class TestDefaultCatalogue:
    def test_default_registry_has_all_cards(self):
        for card in DEFAULT_MODEL_CARDS:
            assert card.name in default_registry()

    def test_gpt4o_is_highest_quality_chat_model(self):
        assert available_models()[0] == "gpt-4o"

    def test_get_model_global(self):
        assert get_model("gpt-4o-mini").provider == "openai"

    def test_cheaper_models_really_are_cheaper(self):
        big = get_model("gpt-4o")
        small = get_model("gpt-4o-mini")
        assert small.cost_usd(10_000, 100) < big.cost_usd(10_000, 100)
        assert small.quality < big.quality
