"""Tokenizer: counting, truncation, and chunking."""

import pytest

from repro.llm.tokenizer import (
    _SUBWORD_CHARS,
    count_tokens,
    split_into_token_chunks,
    truncate_to_tokens,
)


class TestCountTokens:
    def test_empty_string_is_zero(self):
        assert count_tokens("") == 0

    def test_single_word(self):
        assert count_tokens("hello") == 2  # 5 chars -> 2 subword chunks

    def test_short_word_is_one_token(self):
        assert count_tokens("hi") == 1

    def test_punctuation_counts_separately(self):
        assert count_tokens("hi!") == 2

    def test_whitespace_only_is_zero(self):
        assert count_tokens("   \n\t  ") == 0

    def test_long_word_splits_into_subwords(self):
        # 12 characters -> 3 chunks of ~4 chars.
        assert count_tokens("abcdefghijkl") == 3

    def test_counts_scale_with_text_length(self):
        short = count_tokens("the cat sat on the mat")
        long = count_tokens("the cat sat on the mat " * 10)
        assert long == 10 * short

    def test_numbers_are_tokens(self):
        assert count_tokens("1 22 333") == 3

    def test_prose_rate_is_plausible(self):
        text = (
            "Declarative AI systems let users write logical plans and "
            "defer physical implementation choices to an optimizer."
        )
        words = len(text.split())
        tokens = count_tokens(text)
        # BPE-like: tokens should be ~1.0-2.0x word count for English prose.
        assert words <= tokens <= 2 * words


class TestTruncateToTokens:
    def test_zero_budget_gives_empty(self):
        assert truncate_to_tokens("hello world", 0) == ""

    def test_negative_budget_gives_empty(self):
        assert truncate_to_tokens("hello world", -5) == ""

    def test_fits_returns_unchanged(self):
        text = "short text"
        assert truncate_to_tokens(text, 100) == text

    def test_truncation_respects_budget(self):
        text = "word " * 200
        truncated = truncate_to_tokens(text, 50)
        assert count_tokens(truncated) <= 50

    def test_truncation_is_a_prefix(self):
        text = "alpha beta gamma delta epsilon zeta"
        truncated = truncate_to_tokens(text, 3)
        assert text.startswith(truncated)

    def test_truncation_monotone_in_budget(self):
        text = "one two three four five six seven eight nine ten"
        lengths = [
            len(truncate_to_tokens(text, budget)) for budget in range(1, 12)
        ]
        assert lengths == sorted(lengths)


class TestSplitIntoTokenChunks:
    def test_invalid_budget_raises(self):
        with pytest.raises(ValueError):
            split_into_token_chunks("hello", 0)
        with pytest.raises(ValueError):
            split_into_token_chunks("hello", -1)

    def test_empty_text_gives_no_chunks(self):
        assert split_into_token_chunks("", 5) == []

    def test_exact_boundary_is_single_chunk(self):
        text = "alpha beta"  # alpha = 2 subword tokens, beta = 1
        assert count_tokens(text) == 3
        assert split_into_token_chunks(text, 3) == [text]

    def test_chunks_cover_text_in_order(self):
        text = "the quick brown fox jumps over the lazy dog " * 8
        text = text.rstrip()
        chunks = split_into_token_chunks(text, 7)
        assert "".join(chunks) == text
        assert all(chunks)
        assert all(count_tokens(chunk) <= 7 for chunk in chunks)

    def test_oversized_single_token_is_hard_cut(self):
        # One 40-char word costs 10 subword tokens; with a 2-token budget
        # the truncation path yields an empty prefix, forcing the hard cut
        # of max_tokens * _SUBWORD_CHARS characters per chunk.
        text = "x" * 40
        chunks = split_into_token_chunks(text, 2)
        assert chunks == ["x" * (2 * _SUBWORD_CHARS)] * 5
        assert "".join(chunks) == text

    def test_max_tokens_one(self):
        text = "hello world!"
        chunks = split_into_token_chunks(text, 1)
        assert "".join(chunks) == text
        assert all(chunks)
        # Hard-cut chunks are capped at one subword's worth of characters.
        assert all(len(chunk) <= _SUBWORD_CHARS for chunk in chunks)

    def test_trailing_whitespace_rides_with_last_chunk(self):
        chunks = split_into_token_chunks("ab cd   ", 1)
        assert chunks == ["ab", " cd   "]
