"""Tokenizer: counting and truncation."""

import pytest

from repro.llm.tokenizer import count_tokens, truncate_to_tokens


class TestCountTokens:
    def test_empty_string_is_zero(self):
        assert count_tokens("") == 0

    def test_single_word(self):
        assert count_tokens("hello") == 2  # 5 chars -> 2 subword chunks

    def test_short_word_is_one_token(self):
        assert count_tokens("hi") == 1

    def test_punctuation_counts_separately(self):
        assert count_tokens("hi!") == 2

    def test_whitespace_only_is_zero(self):
        assert count_tokens("   \n\t  ") == 0

    def test_long_word_splits_into_subwords(self):
        # 12 characters -> 3 chunks of ~4 chars.
        assert count_tokens("abcdefghijkl") == 3

    def test_counts_scale_with_text_length(self):
        short = count_tokens("the cat sat on the mat")
        long = count_tokens("the cat sat on the mat " * 10)
        assert long == 10 * short

    def test_numbers_are_tokens(self):
        assert count_tokens("1 22 333") == 3

    def test_prose_rate_is_plausible(self):
        text = (
            "Declarative AI systems let users write logical plans and "
            "defer physical implementation choices to an optimizer."
        )
        words = len(text.split())
        tokens = count_tokens(text)
        # BPE-like: tokens should be ~1.0-2.0x word count for English prose.
        assert words <= tokens <= 2 * words


class TestTruncateToTokens:
    def test_zero_budget_gives_empty(self):
        assert truncate_to_tokens("hello world", 0) == ""

    def test_negative_budget_gives_empty(self):
        assert truncate_to_tokens("hello world", -5) == ""

    def test_fits_returns_unchanged(self):
        text = "short text"
        assert truncate_to_tokens(text, 100) == text

    def test_truncation_respects_budget(self):
        text = "word " * 200
        truncated = truncate_to_tokens(text, 50)
        assert count_tokens(truncated) <= 50

    def test_truncation_is_a_prefix(self):
        text = "alpha beta gamma delta epsilon zeta"
        truncated = truncate_to_tokens(text, 3)
        assert text.startswith(truncated)

    def test_truncation_monotone_in_budget(self):
        text = "one two three four five six seven eight nine ten"
        lengths = [
            len(truncate_to_tokens(text, budget)) for budget in range(1, 12)
        ]
        assert lengths == sorted(lengths)
