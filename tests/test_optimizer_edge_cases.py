"""Optimizer edge cases: empty registries, degenerate sources, caps."""

import pytest

import repro as pz
from repro.core.builtin_schemas import TextFile
from repro.core.errors import PlanError
from repro.core.schemas import make_schema
from repro.core.sources import MemorySource
from repro.llm.models import ModelCard, ModelRegistry
from repro.optimizer.candidates import candidate_operators
from repro.optimizer.cost_model import CostModel
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.planner import FRONTIER_CAP, enumerate_plans

Info = make_schema("Info", "d", {"x": "x"})


def source_of(n=4, dataset_id="edge"):
    return MemorySource(
        [f"doc {i}" for i in range(n)], dataset_id=dataset_id,
        schema=TextFile,
    )


class TestEmptyRegistry:
    def test_semantic_filter_without_models_fails_clearly(self):
        source = source_of()
        dataset = pz.Dataset(source).filter("anything")
        logical = dataset.logical_plan().operators[-1]
        with pytest.raises(PlanError, match="no models"):
            candidate_operators(logical, ModelRegistry(), source=source)

    def test_semantic_convert_without_models_fails_clearly(self):
        source = source_of(dataset_id="edge2")
        dataset = pz.Dataset(source).convert(Info)
        logical = dataset.logical_plan().operators[-1]
        with pytest.raises(PlanError, match="no models"):
            candidate_operators(logical, ModelRegistry(), source=source)

    def test_retrieve_without_embedders_fails_clearly(self):
        source = source_of(dataset_id="edge3")
        dataset = pz.Dataset(source).retrieve("query", k=1)
        logical = dataset.logical_plan().operators[-1]
        chat_only = ModelRegistry([
            ModelCard(name="chat", provider="t", usd_per_1m_input=1.0,
                      usd_per_1m_output=1.0, quality=0.8),
        ])
        with pytest.raises(PlanError, match="embedding"):
            candidate_operators(logical, chat_only, source=source)

    def test_udf_only_pipeline_needs_no_models(self):
        source = source_of(dataset_id="edge4")
        dataset = pz.Dataset(source).filter(lambda r: True)
        report = Optimizer(models=ModelRegistry()).optimize(
            dataset.logical_plan(), source
        )
        assert report.plans_considered == 1


class TestEmptySource:
    def test_optimizer_on_empty_source(self):
        source = MemorySource([], dataset_id="edge-empty", schema=TextFile)
        dataset = pz.Dataset(source).filter("anything")
        report = Optimizer().optimize(dataset.logical_plan(), source)
        assert report.chosen.estimate.cost_usd == 0.0

    def test_sentinel_on_empty_source_is_skipped(self):
        source = MemorySource([], dataset_id="edge-empty2", schema=TextFile)
        dataset = pz.Dataset(source).filter("anything")
        report = Optimizer(sample_size=5).optimize(
            dataset.logical_plan(), source
        )
        assert report.sentinel_runs == 0


class TestStepwisePruning:
    def test_pruned_enumeration_bounded_by_cap(self):
        # Many models x long pipeline forces the stepwise path.
        registry = ModelRegistry([
            ModelCard(
                name=f"m{i}", provider="t",
                usd_per_1m_input=0.1 + 0.05 * i,
                usd_per_1m_output=0.3 + 0.1 * i,
                quality=0.5 + 0.015 * i,
            )
            for i in range(12)
        ])
        source = source_of(dataset_id="edge-prune")
        dataset = pz.Dataset(source)
        for i in range(3):
            dataset = dataset.filter(f"condition {i}")
        cost_model = CostModel(source.profile())
        candidates = enumerate_plans(
            dataset.logical_plan(), source, registry, cost_model,
            prune=True, include_embedding_filter=False,
        )
        assert 0 < len(candidates) <= FRONTIER_CAP

    def test_sentinel_plan_cap_respected(self):
        source = source_of(n=6, dataset_id="edge-cap")
        dataset = pz.Dataset(source).filter("anything").convert(Info)
        from repro.optimizer.optimizer import SENTINEL_PLAN_CAP

        report = Optimizer(sample_size=2).optimize(
            dataset.logical_plan(), source
        )
        assert report.sentinel_runs <= SENTINEL_PLAN_CAP


class TestDatasetExplain:
    def test_dataset_explain_sugar(self):
        source = source_of(dataset_id="edge-explain")
        text = pz.Dataset(source).filter("anything").explain(policy="cost")
        assert "pareto frontier" in text
        assert "min-cost" in text
