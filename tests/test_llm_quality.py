"""The seeded quality/error process: determinism and monotonicity."""

import pytest

from repro.llm.models import ModelCard
from repro.llm.quality import (
    corrupt_boolean,
    corrupt_list,
    corrupt_value,
    decide_correct,
    error_probability,
)


def card(quality, name="m"):
    return ModelCard(
        name=name, provider="t",
        usd_per_1m_input=1.0, usd_per_1m_output=1.0, quality=quality,
    )


class TestErrorProbability:
    def test_perfect_model_easy_doc(self):
        assert error_probability(card(1.0), 0.0) == 0.0

    def test_better_models_err_less(self):
        weak = error_probability(card(0.6), 0.5)
        strong = error_probability(card(0.95), 0.5)
        assert strong < weak

    def test_harder_docs_err_more(self):
        model = card(0.8)
        assert error_probability(model, 0.9) > error_probability(model, 0.1)

    def test_truncated_context_errs_more(self):
        model = card(0.8)
        assert error_probability(model, 0.3, 0.3) > error_probability(
            model, 0.3, 1.0
        )

    def test_capped_below_one(self):
        assert error_probability(card(0.0), 1.0, 0.0) <= 0.95

    def test_out_of_range_inputs_clamped(self):
        # Should not raise for difficulty/fraction outside [0, 1].
        assert 0.0 <= error_probability(card(0.5), 5.0, -1.0) <= 0.95


class TestDecideCorrect:
    def test_deterministic(self):
        model = card(0.7)
        results = {
            decide_correct(model, "fp", "task", 0.5) for _ in range(10)
        }
        assert len(results) == 1

    def test_varies_across_documents(self):
        model = card(0.5)
        outcomes = {
            decide_correct(model, f"fp-{i}", "task", 0.9) for i in range(50)
        }
        assert outcomes == {True, False}

    def test_independent_of_call_order(self):
        model = card(0.6)
        a1 = decide_correct(model, "fp-a", "t", 0.5)
        b1 = decide_correct(model, "fp-b", "t", 0.5)
        # Reverse order: same per-document answers.
        b2 = decide_correct(model, "fp-b", "t", 0.5)
        a2 = decide_correct(model, "fp-a", "t", 0.5)
        assert (a1, b1) == (a2, b2)

    def test_high_quality_mostly_correct(self):
        model = card(0.98)
        correct = sum(
            decide_correct(model, f"fp-{i}", "t", 0.2) for i in range(200)
        )
        assert correct >= 190

    def test_different_models_disagree_somewhere(self):
        strong, weak = card(0.95, "strong"), card(0.4, "weak")
        disagreements = sum(
            decide_correct(strong, f"fp-{i}", "t", 0.8)
            != decide_correct(weak, f"fp-{i}", "t", 0.8)
            for i in range(100)
        )
        assert disagreements > 0


class TestCorruption:
    def test_boolean_flips(self):
        assert corrupt_boolean(True) is False
        assert corrupt_boolean(False) is True

    def test_corrupt_value_changes_or_drops_strings(self):
        model = card(0.5)
        value = corrupt_value(model, "fp", "task", "TCGA-COAD-LONG-NAME")
        assert value != "TCGA-COAD-LONG-NAME"

    def test_corrupt_value_is_deterministic(self):
        model = card(0.5)
        a = corrupt_value(model, "fp", "task", "some dataset name")
        b = corrupt_value(model, "fp", "task", "some dataset name")
        assert a == b

    def test_corrupt_none_stays_none(self):
        assert corrupt_value(card(0.5), "fp", "t", None) is None

    def test_corrupt_number_perturbs(self):
        value = corrupt_value(card(0.5), "fp2", "t2", 100.0)
        assert value is None or value != 100.0

    def test_corrupt_list_drops_entries(self):
        result = corrupt_list(card(0.5), "fp", "t", [1, 2, 3, 4, 5])
        assert len(result) <= 5

    def test_corrupt_empty_list(self):
        assert corrupt_list(card(0.5), "fp", "t", []) == []
