"""Critical-path analysis, hotspot fallback, and the text renderers."""

import sys

import pytest

from repro.execution.execute import Execute
from repro.obs.analyze import aggregate_ops, analyze_critical_path
from repro.obs.render import render_flame, render_tree
from repro.obs.trace import Span, SpanKind, Trace, Tracer

sys.path.insert(0, "tests")
from test_execution_pipeline import make_source, shape_filter_convert


def synthetic_pipeline_trace():
    """plan.run with two stages: stage 1 (2 workers) bounds the run."""
    root = Span("plan.run", SpanKind.PLAN, 0.0, 100.0,
                attributes={"executor": "pipelined"})
    root.children.append(Span(
        "pipeline.stage", SpanKind.STAGE, 0.0, 100.0,
        attributes={"stage": 0, "ops": "scan", "workers": 1,
                    "busy_seconds": 20.0, "records_out": 10},
    ))
    root.children.append(Span(
        "pipeline.stage", SpanKind.STAGE, 0.0, 100.0,
        attributes={"stage": 1, "ops": "parallel(filter)", "workers": 2,
                    "busy_seconds": 180.0, "records_out": 5},
    ))
    return Trace([root])


class TestPipelineReport:
    def test_bounding_stage_by_effective_time(self):
        report = analyze_critical_path(synthetic_pipeline_trace())
        assert report.mode == "pipeline"
        assert report.makespan == 100.0
        assert report.bounding_stage.name == "parallel(filter)"
        assert report.bounding_stage.effective_seconds == 90.0

    def test_stage_math(self):
        report = analyze_critical_path(synthetic_pipeline_trace())
        scan, filt = report.stages
        assert scan.effective_seconds == 20.0
        assert scan.idle_seconds == 80.0
        assert scan.utilization == pytest.approx(0.2)
        assert filt.idle_seconds == pytest.approx(20.0)  # 2*100 - 180
        assert filt.utilization == pytest.approx(0.9)

    def test_render_names_bounding_stage(self):
        text = analyze_critical_path(synthetic_pipeline_trace()).render()
        assert "Critical path (pipelined run)" in text
        assert "<-- bounds the run" in text
        assert "bounding stage: parallel(filter)" in text

    def test_to_dict(self):
        payload = analyze_critical_path(synthetic_pipeline_trace()).to_dict()
        assert payload["bounding_stage"] == "parallel(filter)"
        assert len(payload["stages"]) == 2


class TestHotspotFallback:
    def test_sequential_trace_falls_back(self):
        source = make_source(6, "analyze-seq")
        _, stats = Execute(shape_filter_convert(source), lint=False,
                           trace=True)
        report = analyze_critical_path(stats.trace)
        assert report.mode == "hotspot"
        assert report.bounding_stage is not None
        # The hottest operator leads the (sorted) stage list.
        assert report.stages[0].is_bounding
        assert report.stages[0].busy_seconds == max(
            s.busy_seconds for s in report.stages)
        assert "Hotspots" in report.render()

    def test_empty_trace(self):
        report = analyze_critical_path(Trace([]))
        assert report.bounding_stage is None
        assert report.stages == []


class TestAggregateOps:
    def test_reconciles_with_operator_stats(self):
        source = make_source(6, "analyze-agg")
        _, stats = Execute(shape_filter_convert(source), lint=False,
                           trace=True)
        aggregated = aggregate_ops(stats.trace)
        for op in stats.plan_stats.operator_stats:
            entry = aggregated[op.op_label]
            assert entry["busy_seconds"] == pytest.approx(
                op.time_seconds, abs=1e-6)
            assert entry["records_in"] == op.records_in
            assert entry["records_out"] == op.records_out

    def test_ignores_non_operator_spans(self):
        tracer = Tracer()
        tracer.record("llm.call", SpanKind.LLM, 0.0, 1.0, 0, model="m",
                      operation="filter")
        assert aggregate_ops(tracer.finish()) == {}


class TestRenderers:
    def test_tree_shows_nesting_and_attrs(self):
        source = make_source(4, "analyze-tree")
        _, stats = Execute(shape_filter_convert(source), lint=False,
                           trace=True)
        text = render_tree(stats.trace)
        lines = text.splitlines()
        # Optimizer roots precede the run root; both are top-level.
        assert any(line.startswith("optimize.enumerate") for line in lines)
        assert any(line.startswith("plan.run") for line in lines)
        assert any(line.startswith("  ") and "op." in line
                   for line in lines)
        assert "model=" in text

    def test_tree_depth_and_children_limits(self):
        source = make_source(6, "analyze-tree2")
        _, stats = Execute(shape_filter_convert(source), lint=False,
                           trace=True)
        shallow = render_tree(stats.trace, max_depth=1)
        assert "below max depth" in shallow
        narrow = render_tree(stats.trace, max_children=1)
        assert "more sibling span(s)" in narrow

    def test_empty_tree(self):
        assert render_tree(Trace([])) == "(empty trace)"

    def test_flame_aggregates_paths(self):
        source = make_source(6, "analyze-flame")
        _, stats = Execute(shape_filter_convert(source), lint=False,
                           trace=True)
        text = render_flame(stats.trace)
        assert "plan.run" in text
        assert ";" in text  # nested paths
        assert "#" in text  # bars
        # Repeated per-record spans collapse into one aggregated row.
        assert any(" x" in line for line in text.splitlines())

    def test_flame_empty(self):
        assert render_flame(Trace([])) == "(no timed spans)"
