"""Extended relational operators: join, union, distinct, sort."""

import pytest

import repro as pz
from repro.core.builtin_schemas import TextFile
from repro.core.errors import PlanError, SchemaError
from repro.core.logical_ext import (
    Distinct,
    JoinScan,
    Sort,
    UnionScan,
    joined_schema,
)
from repro.core.records import DataRecord
from repro.core.schemas import make_schema
from repro.core.sources import MemorySource
from repro.llm.oracle import DocumentTruth, global_oracle

Person = make_schema("Person", "d", {"name": "n", "team": "t"})
Team = make_schema("Team", "d", {"team": "t", "city": "c"})


def people_dataset():
    rows = [
        {"name": "Ada", "team": "red"},
        {"name": "Bo", "team": "blue"},
        {"name": "Cy", "team": "red"},
    ]
    return pz.Dataset(
        MemorySource(rows, dataset_id="people", schema=Person)
    )


def teams_dataset():
    rows = [
        {"team": "red", "city": "Rome"},
        {"team": "blue", "city": "Oslo"},
    ]
    return pz.Dataset(MemorySource(rows, dataset_id="teams", schema=Team))


class TestJoinedSchema:
    def test_merges_fields_with_prefix_on_clash(self):
        merged = joined_schema(Person, Team)
        assert set(merged.field_names()) == {
            "name", "team", "right_team", "city"
        }

    def test_join_scan_validation(self):
        with pytest.raises(PlanError):
            JoinScan(Person, teams_dataset())  # neither predicate nor udf
        with pytest.raises(PlanError):
            JoinScan(
                Person, teams_dataset(), predicate="x", udf=lambda a, b: True
            )
        with pytest.raises(PlanError):
            JoinScan(Person, teams_dataset(), predicate="   ")


class TestUDFJoin:
    def test_equi_join(self):
        joined = people_dataset().join(
            teams_dataset(), udf=lambda l, r: l.team == r.team
        )
        records, stats = pz.Execute(joined)
        assert len(records) == 3
        cities = {(r.name, r.city) for r in records}
        assert ("Ada", "Rome") in cities
        assert ("Bo", "Oslo") in cities

    def test_join_output_schema(self):
        joined = people_dataset().join(
            teams_dataset(), udf=lambda l, r: l.team == r.team
        )
        assert "city" in joined.schema.field_map()
        assert "right_team" in joined.schema.field_map()

    def test_cross_product_with_always_true(self):
        joined = people_dataset().join(
            teams_dataset(), udf=lambda l, r: True
        )
        records, _ = pz.Execute(joined)
        assert len(records) == 6

    def test_right_side_cost_accounted_to_join(self):
        # Right side with a semantic filter: its LLM calls must appear in
        # the join operator's stats.
        docs = ["colorectal cancer report", "gardening newsletter"]
        for doc, truth in zip(docs, (True, False)):
            global_oracle().register(
                doc,
                DocumentTruth(
                    predicates={"about colorectal cancer": truth},
                    difficulty=0.0,
                ),
            )
        right = pz.Dataset(
            MemorySource(docs, dataset_id="join-right", schema=TextFile)
        ).filter("about colorectal cancer")
        left = pz.Dataset(
            MemorySource(["anything"], dataset_id="join-left",
                         schema=TextFile)
        )
        joined = left.join(right, udf=lambda l, r: True)
        records, stats = pz.Execute(joined)
        join_stats = stats.plan_stats.operator_stats[1]
        assert join_stats.llm_calls >= 2  # the right-side filter calls
        assert stats.total_cost_usd > 0


class TestSemanticJoin:
    def test_oracle_pair_truth(self):
        left_doc = "Study referencing the Alpha dataset."
        right_docs = ["Alpha dataset catalog entry.", "Beta dataset entry."]
        predicate = "the study references the catalog dataset"
        for right_doc, truth in zip(right_docs, (True, False)):
            pair = (
                f"LEFT RECORD:\n{left_doc}\n\nRIGHT RECORD:\n{right_doc}"
            )
            global_oracle().register(
                pair,
                DocumentTruth(predicates={predicate: truth}, difficulty=0.0),
            )
        left = pz.Dataset(
            MemorySource([left_doc], dataset_id="sj-left", schema=TextFile)
        )
        right = pz.Dataset(
            MemorySource(right_docs, dataset_id="sj-right", schema=TextFile)
        )
        joined = left.join(right, predicate=predicate)
        records, stats = pz.Execute(joined, policy=pz.MaxQuality())
        assert len(records) == 1
        assert "Alpha" in records[0].right_text_contents

    def test_join_is_semantic_operator(self):
        joined = people_dataset().join(teams_dataset(), predicate="match")
        semantic = joined.logical_plan().semantic_operators()
        assert len(semantic) == 1

    def test_plan_space_includes_blocked_variant(self):
        from repro.llm.models import default_registry
        from repro.optimizer.candidates import candidate_operators

        joined = people_dataset().join(teams_dataset(), predicate="match")
        logical = joined.logical_plan().operators[-1]
        labels = {
            op.strategy
            for op in candidate_operators(
                logical, default_registry(),
                source=people_dataset().source,
            )
        }
        assert labels == {"LLMSemanticJoin", "EmbeddingBlockedJoin"}

    def test_blocked_join_cheaper_estimate(self):
        from repro.llm.models import default_registry, get_model
        from repro.physical.base import StreamEstimate
        from repro.physical.joins import (
            EmbeddingBlockedJoin,
            LLMSemanticJoin,
        )

        big_right = pz.Dataset(
            MemorySource(
                [f"entry {i}" for i in range(50)],
                dataset_id="big-right", schema=TextFile,
            )
        )
        logical = JoinScan(TextFile, big_right, predicate="match")
        stream = StreamEstimate(10, 500)
        full = LLMSemanticJoin(logical, get_model("gpt-4o"))
        blocked = EmbeddingBlockedJoin(
            logical, get_model("gpt-4o"),
            default_registry().embedding_models()[0],
        )
        assert (
            blocked.naive_estimates(stream).cost_per_record
            < full.naive_estimates(stream).cost_per_record
        )
        assert (
            blocked.naive_estimates(stream).quality
            < full.naive_estimates(stream).quality
        )


class TestUnion:
    def test_concatenates(self):
        combined = people_dataset().union(people_dataset())
        records, _ = pz.Execute(combined)
        assert len(records) == 6

    def test_schema_mismatch_rejected(self):
        with pytest.raises(SchemaError, match="matching schemas"):
            people_dataset().union(teams_dataset())

    def test_union_then_distinct(self):
        combined = people_dataset().union(people_dataset()).distinct()
        records, _ = pz.Execute(combined)
        assert len(records) == 3


class TestDistinct:
    def test_by_subset_of_fields(self):
        deduped = people_dataset().distinct(["team"])
        records, _ = pz.Execute(deduped)
        assert len(records) == 2  # red, blue

    def test_unknown_field_rejected(self):
        with pytest.raises(SchemaError):
            people_dataset().distinct(["bogus"])

    def test_no_duplicates_passthrough(self):
        records, _ = pz.Execute(people_dataset().distinct())
        assert len(records) == 3


class TestSort:
    def _scores(self):
        Score = make_schema(
            "Score", "d",
            {"name": "n",
             "points": pz.NumericField(desc="points")},
        )
        rows = [
            {"name": "a", "points": 30},
            {"name": "b", "points": 10},
            {"name": "c", "points": None},
            {"name": "d", "points": 20},
        ]
        return pz.Dataset(
            MemorySource(rows, dataset_id="scores", schema=Score)
        )

    def test_ascending_nulls_last(self):
        records, _ = pz.Execute(self._scores().sort("points"))
        assert [r.name for r in records] == ["b", "d", "a", "c"]

    def test_descending_nulls_last(self):
        records, _ = pz.Execute(
            self._scores().sort("points", descending=True)
        )
        assert [r.name for r in records] == ["a", "d", "b", "c"]

    def test_unknown_field_rejected(self):
        with pytest.raises(SchemaError):
            self._scores().sort("bogus")


class TestReferenceExecution:
    def test_reference_join_union_distinct_sort(self):
        from repro.evaluation.reference import reference_output

        joined = people_dataset().join(
            teams_dataset(), udf=lambda l, r: l.team == r.team
        ).distinct().sort("name")
        output = reference_output(
            joined.logical_plan(), people_dataset().source
        )
        assert [r.name for r in output] == ["Ada", "Bo", "Cy"]
        union = people_dataset().union(people_dataset())
        output = reference_output(
            union.logical_plan(), people_dataset().source
        )
        assert len(output) == 6


class TestExtEstimates:
    def test_union_estimate_adds_cardinalities(self):
        from repro.physical.base import StreamEstimate
        from repro.physical.setops import UnionOp

        logical = UnionScan(Person, people_dataset())
        estimate = UnionOp(logical).naive_estimates(StreamEstimate(5, 100))
        assert estimate.cardinality == pytest.approx(5 + 3)

    def test_distinct_estimate_shrinks(self):
        from repro.physical.base import StreamEstimate
        from repro.physical.setops import DistinctOp

        logical = Distinct(Person)
        estimate = DistinctOp(logical).naive_estimates(
            StreamEstimate(10, 100)
        )
        assert estimate.cardinality < 10

    def test_join_candidates_for_udf_join(self):
        from repro.llm.models import default_registry
        from repro.optimizer.candidates import candidate_operators

        joined = people_dataset().join(
            teams_dataset(), udf=lambda a, b: True
        )
        logical = joined.logical_plan().operators[-1]
        candidates = candidate_operators(
            logical, default_registry(), source=people_dataset().source
        )
        assert [type(c).__name__ for c in candidates] == [
            "NestedLoopUDFJoin"
        ]

    def test_pipeline_with_everything(self):
        # One pipeline using join + union + distinct + sort + limit.
        base = people_dataset()
        combined = (
            base.union(people_dataset())
            .distinct()
            .join(teams_dataset(), udf=lambda l, r: l.team == r.team)
            .sort("name")
            .limit(2)
        )
        records, stats = pz.Execute(combined)
        assert [r.name for r in records] == ["Ada", "Bo"]
        assert stats.plan_stats.records_out == 2
