"""Code generation (Fig. 6) and re-execution of generated programs."""

import pytest

from repro.chat.codegen import exec_program, generate_program
from repro.chat.workspace import PipelineWorkspace


@pytest.fixture()
def workspace(sigmod_demo):
    ws = PipelineWorkspace()
    ws.log_step("load", source="sigmod-demo", schema="PDFFile", records=11)
    ws.log_step("filter", predicate="The papers are about colorectal cancer")
    ws.log_step(
        "schema",
        name="ClinicalData",
        description="Datasets from papers.",
        field_names=["name", "description", "url"],
        field_descriptions=["the name", "the description", "the url"],
    )
    ws.log_step("convert", schema="ClinicalData", cardinality="one_to_many")
    ws.log_step("policy", target="quality")
    ws.log_step("execute", policy="max-quality", records=6,
                cost_usd=0.35, time_seconds=210)
    return ws


class TestGenerateProgram:
    def test_contains_fig6_sections(self, workspace):
        code = generate_program(workspace)
        assert "# Set input dataset" in code
        assert "# Filter dataset" in code
        assert "# Create new schema" in code
        assert "# Perform conversion" in code
        assert "# Execute workload" in code

    def test_pipeline_statements(self, workspace):
        code = generate_program(workspace)
        assert "pz.Dataset(source='sigmod-demo')" in code
        assert "dataset.filter('The papers are about colorectal cancer')" in code
        assert "pz.Cardinality.ONE_TO_MANY" in code
        assert "policy = pz.MaxQuality()" in code

    def test_policy_mapping(self, workspace):
        workspace.steps[-2].params["target"] = "cost"
        code = generate_program(workspace)
        assert "pz.MinCost()" in code

    def test_unknown_policy_target_raises(self, workspace):
        from repro.chat.codegen import CodegenError

        workspace.steps[-2].params["target"] = "speeed"
        with pytest.raises(CodegenError, match="speeed"):
            generate_program(workspace)

    def test_unknown_cardinality_raises(self, workspace):
        from repro.chat.codegen import CodegenError

        workspace.steps[3].params["cardinality"] = "one_to_none"
        with pytest.raises(CodegenError, match="one_to_none"):
            generate_program(workspace)

    def test_empty_workspace_placeholder(self):
        code = generate_program(PipelineWorkspace())
        assert "No pipeline" in code

    def test_generated_code_is_valid_python(self, workspace):
        compile(generate_program(workspace), "<test>", "exec")


class TestExecProgram:
    def test_reexecution_produces_records(self, workspace):
        code = generate_program(workspace)
        namespace = exec_program(code)
        assert "records" in namespace
        assert "execution_stats" in namespace
        assert len(namespace["records"]) == 6

    def test_reexecution_matches_fig5_shape(self, workspace):
        namespace = exec_program(generate_program(workspace))
        stats = namespace["execution_stats"]
        assert stats.records_out == 6
        assert stats.total_cost_usd > 0
