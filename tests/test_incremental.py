"""Incremental execution: manifests, delta recompute, result handles.

The contract under test: an incremental re-run after a corpus delta —
through any executor, at any worker count, for adds, edits, and drops —
produces *byte-identical* records, statistics, provenance, and traces to
a cold run over the same corpus, while paying fresh LLM cost only for
the delta.  Results are addressed as :class:`ResultHandle`\\ s (id +
schema + count + fingerprint) and sliced on demand; the run registry
prunes by count and byte budget.
"""

from __future__ import annotations

import json

import pytest

import repro as pz
from repro.core.dataset import Dataset
from repro.core.schemas import make_schema
from repro.core.sources import global_source_registry
from repro.corpora.scale import (
    SCALE_FIELDS,
    SCALE_PREDICATE,
    generate_scale_source,
    mutate_scale_source,
)
from repro.execution.execute import Execute
from repro.execution.incremental import (
    build_source_manifest,
    delta_impact,
    diff_manifests,
)
from repro.obs.export import to_plain_json
from repro.obs.registry import ResultHandle, RunRegistry, RunSnapshot
from repro.optimizer.cost_model import CostModel

ScaleNote = make_schema(
    "ScaleNote",
    "Cohort and stage extracted from a clinical note",
    list(SCALE_FIELDS),
    field_descriptions=list(SCALE_FIELDS.values()),
)


def build(source):
    return Dataset(source).filter(SCALE_PREDICATE).convert(ScaleNote)


def run(dataset, executor="sequential", workers=1, **kwargs):
    return Execute(
        dataset,
        policy="quality",
        max_workers=workers,
        executor=executor,
        trace=True,
        provenance=True,
        **kwargs,
    )


def signature(records, stats):
    """Everything the incremental path must reproduce byte-for-byte."""
    return (
        [record.to_json() for record in records],
        json.dumps(stats.to_dict(), sort_keys=True, default=str),
        json.dumps(stats.provenance.to_dict(), sort_keys=True,
                   default=str),
        json.dumps(to_plain_json(stats.trace, metrics=stats.metrics),
                   sort_keys=True, default=str),
    )


# ----------------------------------------------------------------------
# Source manifests and delta detection.
# ----------------------------------------------------------------------

class TestManifests:
    def test_manifest_shape(self):
        source = generate_scale_source(12, seed=21, dataset_id="man-a")
        manifest = build_source_manifest(source)
        assert manifest["count"] == 12
        assert manifest["dataset_id"] == "man-a"
        assert len(manifest["entries"]) == 12
        entry = manifest["entries"][0]
        assert set(entry) == {"key", "fingerprint", "record_fp"}

    def test_manifest_deterministic(self):
        a = build_source_manifest(
            generate_scale_source(10, seed=3, dataset_id="man-b"))
        b = build_source_manifest(
            generate_scale_source(10, seed=3, dataset_id="man-b"))
        assert a == b

    def test_diff_detects_exact_delta(self):
        base = build_source_manifest(
            generate_scale_source(30, seed=7, dataset_id="man-c"))
        live = build_source_manifest(
            mutate_scale_source(30, seed=7, adds=2, edits=3, drops=4,
                                dataset_id="man-c"))
        delta = diff_manifests(base, live)
        assert len(delta.added) == 2
        assert len(delta.changed) == 3
        assert len(delta.dropped) == 4
        assert len(delta.unchanged) == 30 - 3 - 4
        assert delta.total_live == 30 + 2 - 4
        assert not delta.is_empty

    def test_diff_identical_manifests_is_empty(self):
        base = build_source_manifest(
            generate_scale_source(8, seed=9, dataset_id="man-d"))
        delta = diff_manifests(base, base)
        assert delta.is_empty
        assert len(delta.unchanged) == 8

    def test_mutate_is_deterministic(self):
        a = build_source_manifest(
            mutate_scale_source(20, seed=5, adds=1, edits=2, drops=3,
                                dataset_id="man-e"))
        b = build_source_manifest(
            mutate_scale_source(20, seed=5, adds=1, edits=2, drops=3,
                                dataset_id="man-e"))
        assert a == b

    def test_mutate_validates_arguments(self):
        with pytest.raises(ValueError):
            mutate_scale_source(10, edits=6, drops=5)
        with pytest.raises(ValueError):
            mutate_scale_source(10, adds=-1)
        with pytest.raises(ValueError):
            mutate_scale_source(0)


# ----------------------------------------------------------------------
# Byte identity: incremental == cold, across executors and deltas.
# ----------------------------------------------------------------------

GRID = [
    ("sequential", 1),
    ("pipelined", 4),
    ("pipelined", 8),
    ("sharded", 4),
    ("sharded", 8),
]


class TestByteIdentity:
    @pytest.mark.parametrize("executor,workers", GRID)
    def test_identical_across_executors(self, executor, workers):
        n = 40
        dataset_id = f"incr-{executor}-{workers}"
        base_source = generate_scale_source(n, seed=13,
                                            dataset_id=dataset_id)
        base_records, base_stats = run(
            build(base_source), executor=executor, workers=workers,
            capture_calls=True)
        base = RunSnapshot.from_execution("base", base_records, base_stats)

        mutated = mutate_scale_source(
            n, seed=13, adds=2, edits=2, drops=2, dataset_id=dataset_id)
        cold = run(build(mutated), executor=executor, workers=workers)
        incr = run(build(mutated), executor=executor, workers=workers,
                   incremental=True, base_run=base)

        assert signature(*cold) == signature(*incr)
        report = incr[1].incremental
        assert report is not None
        assert report.mode == "replay"
        assert report.replayed_calls > 0
        assert report.fresh_calls > 0
        assert report.fresh_cost_usd < report.reused_cost_usd

    @pytest.mark.parametrize("delta", [
        {"adds": 3},
        {"edits": 3},
        {"drops": 3},
    ])
    def test_identical_per_delta_kind(self, delta):
        n = 30
        kind = next(iter(delta))
        dataset_id = f"incr-kind-{kind}"
        base_source = generate_scale_source(n, seed=17,
                                            dataset_id=dataset_id)
        base_records, base_stats = run(build(base_source),
                                       capture_calls=True)
        base = RunSnapshot.from_execution("base", base_records, base_stats)

        mutated = mutate_scale_source(n, seed=17, dataset_id=dataset_id,
                                      **delta)
        cold = run(build(mutated))
        incr = run(build(mutated), incremental=True, base_run=base)

        assert signature(*cold) == signature(*incr)
        report = incr[1].incremental
        bucket = {"adds": "added", "edits": "changed",
                  "drops": "dropped"}[kind]
        assert report.delta.to_dict()[bucket] == 3

    def test_unchanged_corpus_replays_everything(self):
        source = generate_scale_source(20, seed=19,
                                       dataset_id="incr-same")
        base_records, base_stats = run(build(source), capture_calls=True)
        base = RunSnapshot.from_execution("base", base_records, base_stats)
        records, stats = run(build(source), incremental=True,
                             base_run=base)
        report = stats.incremental
        assert report.delta.is_empty
        assert report.fresh_calls == 0
        assert report.fresh_cost_usd == pytest.approx(0.0)
        assert [json.loads(r.to_json()) for r in records] == base.records

    def test_delta_impact_partitions_base_outputs(self):
        n = 30
        dataset_id = "incr-impact"
        base_source = generate_scale_source(n, seed=23,
                                            dataset_id=dataset_id)
        base_records, base_stats = run(build(base_source),
                                       capture_calls=True)
        manifest = base_stats.source_manifest
        live = build_source_manifest(mutate_scale_source(
            n, seed=23, edits=2, drops=1, dataset_id=dataset_id))
        delta = diff_manifests(manifest, live)
        impact = delta_impact(base_stats.provenance, delta, manifest)
        outputs = base_stats.provenance.output_ids
        assert impact["invalidated_outputs"] >= 0
        assert impact["reusable_outputs"] >= 0
        assert (impact["invalidated_outputs"]
                + impact["reusable_outputs"]) == len(outputs)
        assert impact["touched_nodes"] > 0


# ----------------------------------------------------------------------
# The headline acceptance bar: >= 5x on a ~1% delta.
# ----------------------------------------------------------------------

class TestSpeedup:
    def test_one_percent_delta_is_5x_cheaper(self):
        n = 400
        dataset_id = "incr-speedup"
        base_source = generate_scale_source(n, seed=29,
                                            dataset_id=dataset_id)
        base_records, base_stats = run(build(base_source),
                                       capture_calls=True)
        base = RunSnapshot.from_execution("base", base_records, base_stats)

        mutated = mutate_scale_source(n, seed=29, edits=4,
                                      dataset_id=dataset_id)
        records, stats = run(build(mutated), incremental=True,
                             base_run=base)
        report = stats.incremental
        assert report.mode == "replay"
        assert report.speedup_cost >= 5.0
        assert report.speedup_time >= 5.0
        # Rendered report is the chat/CLI surface.
        text = report.render()
        assert "Incremental execution" in text
        assert "speedup vs cold" in text

    def test_cost_model_prices_incremental(self):
        pricing = CostModel.price_incremental(
            _FakeEstimate(cost_usd=100.0, time_seconds=1000.0),
            total_docs=1000, fresh_docs=10)
        assert pricing.fresh_fraction == pytest.approx(0.01)
        assert pricing.incremental_cost_usd == pytest.approx(1.0)
        assert pricing.incremental_seconds < pricing.cold_seconds
        assert pricing.use_incremental
        # Fully-fresh corpus: nothing to reuse, stay cold.
        cold = CostModel.price_incremental(
            _FakeEstimate(cost_usd=100.0, time_seconds=1000.0),
            total_docs=10, fresh_docs=10)
        assert not cold.use_incremental


class _FakeEstimate:
    def __init__(self, cost_usd, time_seconds):
        self.cost_usd = cost_usd
        self.time_seconds = time_seconds


# ----------------------------------------------------------------------
# Result handles: identity + shape travels, records load on demand.
# ----------------------------------------------------------------------

class TestResultHandles:
    def _snapshot(self, n=10, dataset_id="handle-a"):
        source = generate_scale_source(n, seed=37, dataset_id=dataset_id)
        records, stats = run(build(source))
        return RunSnapshot.from_execution("run-0001", records, stats)

    def test_handle_from_snapshot(self):
        snapshot = self._snapshot()
        handle = snapshot.handle()
        assert handle.result_id == "run-0001"
        assert handle.schema == "ScaleNote"
        assert handle.count == len(snapshot.records)
        assert len(handle) == handle.count
        assert handle.records() == snapshot.records

    def test_slice_windows(self):
        snapshot = self._snapshot()
        handle = snapshot.handle()
        assert handle.slice(0, 2) == snapshot.records[:2]
        assert handle.slice(2, 2) == snapshot.records[2:4]
        assert handle.slice(1) == snapshot.records[1:]
        assert handle.slice(handle.count + 5, 3) == []
        with pytest.raises(ValueError):
            handle.slice(-1)
        with pytest.raises(ValueError):
            handle.slice(0, -2)

    def test_to_dict_carries_no_records(self):
        handle = self._snapshot().handle()
        payload = handle.to_dict()
        assert set(payload) == {"result_id", "schema", "count",
                                "fingerprint"}
        assert "records" not in payload
        assert handle.describe().startswith("result run-0001:")

    def test_registry_round_trip(self, tmp_path):
        registry = RunRegistry(str(tmp_path / "runs"))
        source = generate_scale_source(8, seed=41, dataset_id="handle-b")
        records, stats = run(build(source))
        stored = registry.record(records, stats)
        handle = registry.handle(stored.run_id)
        assert handle.result_id == stored.run_id
        assert handle.count == len(stored.records)
        assert handle.fingerprint == stored.meta["result_fp"]
        assert handle.records() == stored.records
        # Loading is lazy: a meta-only handle resolves before records.
        lazy = registry.handle(stored.run_id)
        assert lazy._records is None
        assert lazy.slice(0, 1) == stored.records[:1]
        assert lazy._records is not None

    def test_unknown_run_raises(self, tmp_path):
        registry = RunRegistry(str(tmp_path / "runs"))
        with pytest.raises(FileNotFoundError):
            registry.handle("run-9999")


# ----------------------------------------------------------------------
# Registry retention.
# ----------------------------------------------------------------------

class TestPrune:
    def _populate(self, tmp_path, count=4):
        registry = RunRegistry(str(tmp_path / "runs"))
        source = generate_scale_source(6, seed=43, dataset_id="prune-a")
        for _ in range(count):
            records, stats = run(build(source))
            registry.record(records, stats)
        return registry

    def test_keep_last(self, tmp_path):
        registry = self._populate(tmp_path, count=4)
        doomed = registry.prune(keep_last=2)
        assert doomed == ["run-0001", "run-0002"]
        ids = [m["run_id"] for m in registry.list()]
        assert ids == ["run-0003", "run-0004"]
        # Ids keep counting upward after a prune.
        assert registry.next_run_id() == "run-0005"

    def test_max_bytes_keeps_newest(self, tmp_path):
        registry = self._populate(tmp_path, count=3)
        doomed = registry.prune(max_bytes=0)
        assert doomed == ["run-0001", "run-0002"]
        ids = [m["run_id"] for m in registry.list()]
        assert ids == ["run-0003"]

    def test_noop_within_budget(self, tmp_path):
        registry = self._populate(tmp_path, count=2)
        assert registry.prune(keep_last=10) == []
        assert registry.prune(max_bytes=registry.size_bytes()) == []

    def test_validates_arguments(self, tmp_path):
        registry = RunRegistry(str(tmp_path / "runs"))
        with pytest.raises(ValueError):
            registry.prune(keep_last=-1)
        with pytest.raises(ValueError):
            registry.prune(max_bytes=-1)


# ----------------------------------------------------------------------
# CLI: repro runs rerun / prune.
# ----------------------------------------------------------------------

class TestCli:
    def test_runs_rerun_and_prune(self, tmp_path, capsys):
        from repro.cli import main

        runs_dir = str(tmp_path / "runs")
        assert main(["runs", "rerun", "--docs", "40",
                     "--runs-dir", runs_dir]) == 0
        out = capsys.readouterr().out
        assert "recorded base run-0001" in out
        assert "Incremental execution" in out
        assert "mode:              replay" in out
        assert "recorded run-0002" in out

        assert main(["runs", "prune", "--keep-last", "1",
                     "--runs-dir", runs_dir]) == 0
        out = capsys.readouterr().out
        assert "pruned 1 run(s): run-0001" in out
        assert [m["run_id"] for m in RunRegistry(runs_dir).list()] == \
            ["run-0002"]

    def test_prune_requires_a_bound(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["runs", "prune",
                     "--runs-dir", str(tmp_path / "runs")]) == 2
        assert "pass --keep-last" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Chat: tool messages carry result ids; "re-run" routes incrementally.
# ----------------------------------------------------------------------

class TestChat:
    def _session(self, dataset_id="chat-incr", n=24):
        from repro.chat.tools_pz import build_pz_tools
        from repro.chat.workspace import PipelineWorkspace

        source = generate_scale_source(n, seed=47, dataset_id=dataset_id)
        global_source_registry().register(source, overwrite=True)
        workspace = PipelineWorkspace()
        tools = build_pz_tools(workspace)

        def call(name, **kwargs):
            return tools.get(name).invoke(kwargs)

        return workspace, call

    def test_execute_message_carries_result_id(self):
        workspace, call = self._session(dataset_id="chat-incr-a")
        call("load_dataset", source="chat-incr-a")
        call("filter_dataset", predicate=SCALE_PREDICATE)
        message = call("execute_pipeline")
        assert "result run-1" in message
        assert workspace.last_result is not None
        assert workspace.last_result.result_id == "run-1"
        # The message references the handle, not inlined records.
        assert "text_contents" not in message

    def test_show_records_slices_by_result_id(self):
        workspace, call = self._session(dataset_id="chat-incr-b")
        call("load_dataset", source="chat-incr-b")
        call("filter_dataset", predicate=SCALE_PREDICATE)
        call("execute_pipeline")
        page = call("show_records", result_id="run-1", offset=2, limit=2)
        assert page.startswith("- [2]")
        assert "result run-1:" in page
        assert "- [2]" in page and "- [3]" in page
        assert "- [0]" not in page
        from repro.agent.tools import ToolError

        with pytest.raises(ToolError):
            call("show_records", result_id="run-99")

    def test_rerun_tool_replays_updated_corpus(self):
        workspace, call = self._session(dataset_id="chat-incr-c")
        call("load_dataset", source="chat-incr-c")
        call("filter_dataset", predicate=SCALE_PREDICATE)
        call("execute_pipeline")
        mutated = mutate_scale_source(24, seed=47, adds=1, edits=1,
                                      drops=1, dataset_id="chat-incr-c")
        global_source_registry().register(mutated, overwrite=True)
        message = call("rerun_pipeline")
        assert "Re-ran pipeline from run-1" in message
        assert "result run-2" in message
        assert "Incremental execution" in message
        assert "replayed" in message

    def test_rerun_intent_routes_before_execute(self):
        from repro.chat.intent import plan_requests
        from repro.chat.workspace import PipelineWorkspace

        workspace = PipelineWorkspace()
        for message in (
            "re-run on the updated corpus",
            "rerun the pipeline",
            "run the pipeline again",
        ):
            plan = plan_requests(message, workspace)
            assert [c.tool_name for c in plan] == ["rerun_pipeline"], \
                message
        plan = plan_requests("run the pipeline", workspace)
        assert [c.tool_name for c in plan] == ["execute_pipeline"]

    def test_workspace_reset_prunes_attached_registry(self, tmp_path):
        workspace, call = self._session(dataset_id="chat-incr-d")
        workspace.runs_dir = str(tmp_path / "runs")
        workspace.keep_runs = 1
        call("load_dataset", source="chat-incr-d")
        call("filter_dataset", predicate=SCALE_PREDICATE)
        call("execute_pipeline")
        call("execute_pipeline")
        registry = RunRegistry(workspace.runs_dir)
        assert len(registry.list()) == 2
        call("reset_pipeline")
        assert [m["run_id"] for m in registry.list()] == ["run-0002"]
        assert len(workspace.run_history) == 1
        assert workspace.last_result is None
