"""CC501–CC507: guarded-by discipline and nondeterminism sources."""

import textwrap
from pathlib import Path

from repro.analysis import LintConfig, lint_program, lint_source_concurrency
from repro.analysis.concurrency import guarded_declarations

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


def lint(source, **kwargs):
    return lint_source_concurrency(textwrap.dedent(source), **kwargs)


def codes(result):
    return [d.code for d in result.diagnostics]


class TestCC501GuardedAccess:
    BROKEN = """
        import threading

        class Ledger:
            _GUARDED_BY = {"_records": "_lock"}

            def __init__(self):
                self._records = []
                self._lock = threading.Lock()

            def record(self, item):
                self._records.append(item)  # write without the lock

            def snapshot(self):
                return list(self._records)  # read without the lock
    """

    def test_fires_on_unguarded_access(self):
        result = lint(self.BROKEN)
        assert codes(result).count("CC501") == 2
        assert all(d.code == "CC501" for d in result.errors)
        messages = [d.message for d in result.diagnostics]
        assert any("written outside" in m for m in messages)
        assert any("read outside" in m for m in messages)

    def test_clean_when_locked(self):
        result = lint("""
            import threading

            class Ledger:
                _GUARDED_BY = {"_records": "_lock"}

                def __init__(self):
                    self._records = []
                    self._lock = threading.Lock()

                def record(self, item):
                    with self._lock:
                        self._records.append(item)

                def snapshot(self):
                    with self._lock:
                        return list(self._records)
        """)
        assert codes(result) == []

    def test_constructor_writes_exempt(self):
        # __init__ assignments never fire: the object is not shared yet.
        result = lint("""
            import threading

            class Box:
                _GUARDED_BY = {"_value": "_lock"}

                def __init__(self):
                    self._lock = threading.Lock()
                    self._value = 0

                def get(self):
                    with self._lock:
                        return self._value
        """)
        assert codes(result) == []

    def test_writes_mode_allows_lockfree_reads(self):
        result = lint("""
            import threading

            class Registry:
                _GUARDED_BY = {"_truths": ("_lock", "writes")}

                def __init__(self):
                    self._truths = {}
                    self._lock = threading.Lock()

                def register(self, key, value):
                    with self._lock:
                        self._truths[key] = value

                def lookup(self, key):
                    return self._truths.get(key)  # documented lock-free
        """)
        assert codes(result) == []

    def test_nested_write_through_attribute(self):
        # x.stats.count += 1 is a write *to stats*.
        result = lint("""
            import threading

            class Meter:
                _GUARDED_BY = {"stats": ("_lock", "writes")}

                def __init__(self):
                    self.stats = object()
                    self._lock = threading.Lock()

                def bump(self):
                    self.stats.count += 1

                def reset(self):
                    with self._lock:
                        self.stats = object()
        """)
        assert codes(result) == ["CC501"]

    def test_closure_inside_with_block_inherits_lock(self):
        result = lint("""
            import threading

            class Store:
                _GUARDED_BY = {"_items": "_lock"}

                def __init__(self):
                    self._items = []
                    self._lock = threading.Lock()

                def finalize(self):
                    with self._lock:
                        def grab(i):
                            return self._items[i]
                        return [grab(i) for i in range(len(self._items))]
        """)
        assert codes(result) == []

    def test_module_level_guard_covers_getattr_setattr(self):
        broken = """
            import threading

            _CACHE_LOCK = threading.Lock()
            _GUARDED_BY = {"_memo": "_CACHE_LOCK"}

            def lookup(source):
                return getattr(source, "_memo", None)  # unguarded

            def store(source, value):
                setattr(source, "_memo", value)  # unguarded
        """
        result = lint(broken)
        assert codes(result) == ["CC501", "CC501"]
        fixed = """
            import threading

            _CACHE_LOCK = threading.Lock()
            _GUARDED_BY = {"_memo": "_CACHE_LOCK"}

            def lookup(source):
                with _CACHE_LOCK:
                    return getattr(source, "_memo", None)

            def store(source, value):
                with _CACHE_LOCK:
                    setattr(source, "_memo", value)
        """
        assert codes(lint(fixed)) == []

    def test_pragma_suppresses(self):
        result = lint("""
            import threading

            class Ledger:
                _GUARDED_BY = {"_records": "_lock"}

                def __init__(self):
                    self._records = []
                    self._lock = threading.Lock()

                def record(self, item):
                    with self._lock:
                        self._records.append(item)

                def peek(self):
                    return self._records[-1]  # guarded-by: ok(post-join read)
        """)
        assert codes(result) == []


class TestCC502DeadLock:
    def test_fires_on_never_acquired_lock(self):
        result = lint("""
            import threading

            class Thing:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._data = []

                def add(self, item):
                    self._data.append(item)
        """)
        assert codes(result) == ["CC502"]
        assert result.warnings and not result.errors

    def test_clean_when_acquired(self):
        result = lint("""
            import threading

            class Thing:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._data = []

                def add(self, item):
                    with self._lock:
                        self._data.append(item)
        """)
        assert codes(result) == []

    def test_explicit_acquire_release_counts(self):
        result = lint("""
            import threading

            class Thing:
                def __init__(self):
                    self._lock = threading.Lock()

                def risky(self):
                    self._lock.acquire()
                    try:
                        pass
                    finally:
                        self._lock.release()
        """)
        assert codes(result) == []


class TestCC503WorkerWrites:
    BROKEN = """
        import threading

        class Runner:
            def __init__(self):
                self._abort = threading.Event()
                self._local = threading.local()
                self.progress = 0

            def start(self):
                thread = threading.Thread(target=self._worker)
                thread.start()

            def _worker(self):
                self.progress += 1  # shared, undeclared
                self._helper()

            def _helper(self):
                self.progress += 1  # reachable from the entry point
    """

    def test_fires_on_undeclared_shared_write(self):
        result = lint(self.BROKEN)
        assert codes(result) == ["CC503", "CC503"]

    def test_declared_guard_silences(self):
        result = lint("""
            import threading

            class Runner:
                _GUARDED_BY = {"progress": "_lock"}

                def __init__(self):
                    self._lock = threading.Lock()
                    self.progress = 0

                def start(self):
                    thread = threading.Thread(target=self._worker)
                    thread.start()

                def _worker(self):
                    with self._lock:
                        self.progress += 1
        """)
        assert codes(result) == []

    def test_sync_primitives_and_thread_locals_exempt(self):
        result = lint("""
            import threading

            class Runner:
                def __init__(self):
                    self._abort = threading.Event()
                    self._local = threading.local()

                def start(self):
                    thread = threading.Thread(target=self._worker)
                    thread.start()

                def _worker(self):
                    self._local.depth = 1  # thread-local: private
        """)
        assert codes(result) == []

    def test_alias_resolved_thread_target(self):
        # worker = self._a if flag else self._b, Thread(target=worker)
        result = lint("""
            import threading

            class Runner:
                def __init__(self, flag):
                    self.flag = flag
                    self.counter = 0

                def start(self):
                    worker = self._fast if self.flag else self._slow
                    thread = threading.Thread(target=worker)
                    thread.start()

                def _fast(self):
                    self.counter += 1

                def _slow(self):
                    self.counter += 2
        """)
        assert codes(result) == ["CC503", "CC503"]


class TestCC504WallClock:
    def test_fires_on_time_and_datetime(self):
        result = lint("""
            import time
            from datetime import datetime

            def stamp(record):
                record.at = time.time()
                record.day = datetime.now()
        """)
        assert codes(result) == ["CC504", "CC504"]
        assert len(result.errors) == 2

    def test_qsize_flagged_unless_best_effort(self):
        flagged = lint("""
            def depth(queue):
                return queue.qsize()
        """)
        assert codes(flagged) == ["CC504"]
        allowed = lint("""
            def observe(stage):
                stage.depth_gauge.set_max(stage.in_queue.qsize())
        """)
        assert codes(allowed) == []

    def test_pragma_suppresses(self):
        result = lint("""
            import time

            def wall():
                return time.time()  # nondet: ok(operator timeout budget)
        """)
        assert codes(result) == []


class TestCC505Entropy:
    def test_fires_on_module_level_random(self):
        result = lint("""
            import random

            def pick(items):
                return random.choice(items)
        """)
        assert codes(result) == ["CC505"]

    def test_fires_on_urandom_uuid_secrets_unseeded(self):
        result = lint("""
            import os
            import random
            import secrets
            import uuid

            def entropy():
                a = os.urandom(8)
                b = uuid.uuid4()
                c = secrets.token_hex(4)
                d = random.Random()  # unseeded
                return a, b, c, d
        """)
        assert sorted(codes(result)) == ["CC505"] * 4

    def test_seeded_random_is_clean(self):
        result = lint("""
            import random

            def shuffle(items, seed):
                rng = random.Random(seed)
                rng.shuffle(items)
                return items
        """)
        assert codes(result) == []


class TestCC506IdLeak:
    def test_fires_when_value_escapes(self):
        result = lint("""
            def label(op):
                return f"op-{id(op)}"
        """)
        assert codes(result) == ["CC506"]
        assert result.warnings and not result.errors

    def test_identity_keying_allowed(self):
        result = lint("""
            def walk(nodes, index, seen):
                for node in nodes:
                    if id(node) in seen:
                        continue
                    seen.add(id(node))
                    index[id(node)] = node
                    previous = index.get(id(node))
        """)
        assert codes(result) == []


class TestCC507UnorderedIteration:
    def test_fires_on_set_iteration(self):
        result = lint("""
            def emit(names):
                unique = set(names)
                return [n.upper() for n in unique]
        """)
        assert codes(result) == ["CC507"]

    def test_fires_on_set_literal_for_loop(self):
        result = lint("""
            def emit():
                for item in {"b", "a"}:
                    print(item)
        """)
        assert codes(result) == ["CC507"]

    def test_sorted_wrapping_is_clean(self):
        result = lint("""
            def emit(names):
                unique = set(names)
                return [n.upper() for n in sorted(unique)]
        """)
        assert codes(result) == []

    def test_dict_iteration_not_flagged(self):
        # dicts are insertion-ordered; only sets are hash-ordered.
        result = lint("""
            def emit(table):
                return [key for key in table]
        """)
        assert codes(result) == []


class TestIntegration:
    def test_family_disable(self):
        config = LintConfig(disabled=("CC",))
        result = lint(TestCC501GuardedAccess.BROKEN, config=config)
        assert codes(result) == []

    def test_lint_program_runs_cc_rules(self):
        # Generated programs get the same scrutiny (like CG3xx).
        result = lint_program(
            "import time\nstamp = time.time()\n", filename="gen.py"
        )
        assert "CC504" in codes(result)

    def test_syntax_error_returns_empty(self):
        assert codes(lint("def broken(:")) == []

    def test_guarded_declarations_parser(self):
        declared = guarded_declarations(textwrap.dedent("""
            class A:
                _GUARDED_BY = {"_x": "_lock", "_y": ("_lock", "writes")}
        """))
        assert declared == {
            "A": {"_x": ("_lock", "all"), "_y": ("_lock", "writes")}
        }


class TestCleanSweep:
    def test_src_repro_passes_all_cc_rules(self):
        """The engine's own source carries its declared lock discipline."""
        from repro.analysis import LintResult

        result = LintResult()
        checked = 0
        for path in sorted(SRC_ROOT.rglob("*.py")):
            lint_source_concurrency(
                path.read_text(), filename=str(path), result=result
            )
            checked += 1
        assert checked > 40  # the sweep actually walked the package
        assert result.diagnostics == [], "\n" + result.render()

    def test_annotations_present_on_lock_holding_modules(self):
        """The ten modules the discipline covers all declare guards."""
        modules = [
            "llm/clock.py", "llm/usage.py", "llm/cache.py",
            "llm/oracle.py", "llm/models.py", "obs/trace.py",
            "obs/metrics.py", "obs/provenance.py",
            "execution/pipeline.py", "execution/sharded.py",
            "core/sources.py",
        ]
        for name in modules:
            source = (SRC_ROOT / name).read_text()
            assert "_GUARDED_BY" in source, f"{name} lost its annotations"
