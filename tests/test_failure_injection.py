"""Failure injection: corrupted inputs, failing UDFs, exhausted budgets."""

import pytest

import repro as pz
from repro.core.builtin_schemas import TextFile
from repro.core.errors import DatasetError
from repro.core.fakepdf import write_fake_pdf
from repro.core.sources import DirectorySource, MemorySource
from repro.llm.exceptions import ContextWindowExceeded
from repro.llm.models import ModelCard, ModelRegistry, default_registry


@pytest.fixture()
def mixed_dir(tmp_path):
    """Two good fake-PDFs and one corrupted one."""
    (tmp_path / "good-1.pdf").write_bytes(write_fake_pdf("alpha " * 50))
    (tmp_path / "good-2.pdf").write_bytes(write_fake_pdf("beta " * 50))
    corrupt = write_fake_pdf("gamma " * 50).rsplit(b"%%EOF", 1)[0]
    (tmp_path / "broken.pdf").write_bytes(corrupt)
    return tmp_path


class TestCorruptFiles:
    def test_raise_policy_names_the_file(self, mixed_dir):
        source = DirectorySource(mixed_dir, dataset_id="mix-raise")
        with pytest.raises(DatasetError, match="broken.pdf"):
            list(source)

    def test_skip_policy_continues_and_records_skips(self, mixed_dir):
        source = DirectorySource(
            mixed_dir, dataset_id="mix-skip", on_error="skip"
        )
        records = list(source)
        assert len(records) == 2
        assert [p.name for p in source.skipped_files] == ["broken.pdf"]

    def test_pipeline_over_skipping_source(self, mixed_dir):
        source = DirectorySource(
            mixed_dir, dataset_id="mix-pipe", on_error="skip"
        )
        records, stats = pz.Execute(pz.Dataset(source))
        assert len(records) == 2

    def test_invalid_policy_rejected(self, mixed_dir):
        with pytest.raises(DatasetError, match="on_error"):
            DirectorySource(mixed_dir, on_error="ignore")


class TestFailingUDFs:
    def test_filter_udf_exception_propagates_with_context(self):
        def bad_udf(record):
            raise RuntimeError("udf exploded")

        source = MemorySource(["x"], dataset_id="udf-fail", schema=TextFile)
        dataset = pz.Dataset(source).filter(bad_udf)
        with pytest.raises(RuntimeError, match="udf exploded"):
            pz.Execute(dataset)

    def test_convert_udf_bad_payload_type(self):
        Info = pz.make_schema("Info", "d", {"x": "x"})
        source = MemorySource(["x"], dataset_id="udf-fail2", schema=TextFile)
        dataset = pz.Dataset(source).convert(Info, udf=lambda r: 42)
        from repro.core.errors import ExecutionError

        with pytest.raises(ExecutionError, match="non-dict"):
            pz.Execute(dataset)


class TestContextWindow:
    def test_no_feasible_model_still_has_chunked_plan(self):
        # Even a 128-token window model stays usable via chunking.
        tiny = ModelCard(
            name="nano", provider="t", usd_per_1m_input=0.1,
            usd_per_1m_output=0.1, quality=0.9, context_window=128,
        )
        registry = ModelRegistry(
            [tiny] + default_registry().embedding_models()
        )
        Info = pz.make_schema("Info", "d", {"url": "The URL"})
        doc = "words " * 500 + " find https://u.example.org here"
        source = MemorySource([doc], dataset_id="nano-src", schema=TextFile)
        records, stats = pz.Execute(
            pz.Dataset(source).convert(Info), models=registry
        )
        assert len(records) == 1
        assert "ChunkedConvert" in stats.plan_stats.plan_describe

    def test_direct_client_overflow_raises(self):
        from repro.llm.client import BooleanRequest, SimulatedLLMClient

        tiny = ModelCard(
            name="nano2", provider="t", usd_per_1m_input=0.1,
            usd_per_1m_output=0.1, quality=0.9, context_window=16,
        )
        client = SimulatedLLMClient(tiny)
        with pytest.raises(ContextWindowExceeded):
            client.judge(
                BooleanRequest(predicate="x", document="word " * 200)
            )


class TestDegenerateInputs:
    def test_empty_directory_pipeline(self, tmp_path):
        source = DirectorySource(tmp_path, dataset_id="empty-dir")
        records, stats = pz.Execute(
            pz.Dataset(source).filter("anything at all")
        )
        assert records == []
        assert stats.total_cost_usd == 0.0

    def test_empty_memory_aggregate(self):
        source = MemorySource([], dataset_id="empty-mem", schema=TextFile)
        records, _ = pz.Execute(pz.Dataset(source).count())
        assert records[0].count == 0

    def test_limit_zero_pipeline(self):
        source = MemorySource(["a", "b"], dataset_id="limit0",
                              schema=TextFile)
        records, stats = pz.Execute(pz.Dataset(source).limit(0))
        assert records == []

    def test_filter_on_record_with_no_text(self):
        Empty = pz.make_schema("Empty", "d", {"value": "v"})
        source = MemorySource(
            [{"value": None}], dataset_id="notext", schema=Empty
        )
        records, _ = pz.Execute(
            pz.Dataset(source).filter("mentions anything specific")
        )
        # No text: the heuristic finds no match; record is dropped, not
        # crashed on.
        assert isinstance(records, list)
