"""Plan lint (PZ1xx): golden per-rule tests and optimizer integration."""

import pytest

from repro.analysis import LintConfig, LintError, lint_plan
from repro.core.dataset import Dataset
from repro.core.fields import BooleanField, StringField
from repro.core.schemas import Schema, make_schema
from repro.core.sources import MemorySource
from repro.execution.execute import Execute


def memory_dataset(n=3):
    items = [f"document number {i}" for i in range(n)]
    return Dataset(MemorySource(items, "lint-test"))


def extraction_schema(name="Extracted", fields=("title", "summary")):
    return make_schema(
        name,
        "Fields extracted for lint tests.",
        {field: f"The {field}" for field in fields},
    )


class TestUnknownField:
    def test_pz101_on_filter_depends_on(self):
        dataset = memory_dataset().filter("about ai", depends_on=["titel"])
        result = lint_plan(dataset)
        assert "PZ101" in result.codes()
        assert not result.ok

    def test_pz101_on_convert_depends_on(self):
        dataset = memory_dataset().convert(
            extraction_schema(), depends_on=["nonexistent"]
        )
        assert "PZ101" in lint_plan(dataset).codes()

    def test_pz101_hint_suggests_close_match(self):
        schema = extraction_schema(fields=("title",))
        dataset = (
            memory_dataset()
            .convert(schema)
            .filter("boring", depends_on=["titel"])
        )
        [diagnostic] = lint_plan(dataset).errors
        assert "title" in diagnostic.hint

    def test_valid_depends_on_is_clean(self):
        schema = extraction_schema(fields=("title",))
        dataset = (
            memory_dataset()
            .convert(schema)
            .filter("boring", depends_on=["title"])
        )
        assert "PZ101" not in lint_plan(dataset).codes()


class TestDeadField:
    def test_pz102_when_projected_away(self):
        dataset = (
            memory_dataset()
            .convert(extraction_schema(fields=("title", "summary")))
            .project(["title"])
        )
        result = lint_plan(dataset)
        assert "PZ102" in result.codes()
        assert result.ok  # warning only

    def test_no_pz102_when_field_reaches_output(self):
        dataset = memory_dataset().convert(
            extraction_schema(fields=("title", "summary"))
        )
        assert "PZ102" not in lint_plan(dataset).codes()

    def test_no_pz102_when_semantic_filter_consumes_everything(self):
        dataset = (
            memory_dataset()
            .convert(extraction_schema(fields=("title", "summary")))
            .filter("interesting")  # no depends_on: reads the whole record
            .project(["title"])
        )
        assert "PZ102" not in lint_plan(dataset).codes()


class TestFilters:
    def test_pz103_duplicate_predicate(self):
        dataset = (
            memory_dataset().filter("about ai").filter("about ai")
        )
        assert "PZ103" in lint_plan(dataset).codes()

    def test_pz104_negated_predicate(self):
        dataset = (
            memory_dataset().filter("about ai").filter("not about ai")
        )
        assert "PZ104" in lint_plan(dataset).codes()

    def test_distinct_predicates_are_clean(self):
        dataset = (
            memory_dataset().filter("about ai").filter("peer reviewed")
        )
        codes = lint_plan(dataset).codes()
        assert "PZ103" not in codes
        assert "PZ104" not in codes


class TestLimits:
    def test_pz105_limit_before_filter(self):
        dataset = memory_dataset().limit(2).filter("about ai")
        assert "PZ105" in lint_plan(dataset).codes()

    def test_limit_after_filter_is_clean(self):
        dataset = memory_dataset().filter("about ai").limit(2)
        assert "PZ105" not in lint_plan(dataset).codes()

    def test_pz107_zero_limit(self):
        dataset = memory_dataset().limit(0)
        assert "PZ107" in lint_plan(dataset).codes()


class TestAggregates:
    def test_pz106_average_over_boolean(self):
        class Flags(Schema):
            """Flagged documents."""

            flagged = BooleanField("Whether the document is flagged")

        dataset = memory_dataset().convert(Flags).average("flagged")
        result = lint_plan(dataset)
        assert "PZ106" in result.codes()
        assert not result.ok

    def test_string_fields_are_allowed(self):
        class Prices(Schema):
            """Prices."""

            price = StringField("The price in dollars")

        dataset = memory_dataset().convert(Prices).average("price")
        assert "PZ106" not in lint_plan(dataset).codes()


class TestSourceBounds:
    def test_pz108_retrieve_k_over_cardinality(self):
        dataset = memory_dataset(n=3).retrieve("find things", k=50)
        result = lint_plan(dataset)
        assert "PZ108" in result.codes()
        assert result.ok  # info only

    def test_plain_plan_without_source_skips_pz108(self):
        dataset = memory_dataset(n=3).retrieve("find things", k=50)
        assert "PZ108" not in lint_plan(dataset.logical_plan()).codes()


class TestSubplans:
    def test_join_right_side_is_linted(self):
        right = memory_dataset().filter("x", depends_on=["ghost"])
        left = memory_dataset().join(
            right, "the records describe the same thing"
        )
        result = lint_plan(left)
        assert "PZ101" in result.codes()
        [diagnostic] = result.errors
        assert ".right " in diagnostic.location


class TestConfig:
    def test_disabled_rule_not_emitted(self):
        dataset = memory_dataset().filter("x", depends_on=["ghost"])
        result = lint_plan(dataset, config=LintConfig.parse("PZ101"))
        assert "PZ101" not in result.codes()


class TestOptimizerIntegration:
    def test_execute_raises_lint_error_before_running(self):
        dataset = memory_dataset().filter("x", depends_on=["ghost"])
        with pytest.raises(LintError) as excinfo:
            Execute(dataset)
        assert "PZ101" in str(excinfo.value)
        assert excinfo.value.result.errors

    def test_lint_false_opts_out(self):
        dataset = memory_dataset().filter("x", depends_on=["ghost"])
        records, stats = Execute(dataset, lint=False)
        assert stats.total_cost_usd >= 0

    def test_warnings_never_block_execution(self):
        dataset = memory_dataset().limit(2).filter("about ai")
        records, stats = Execute(dataset)
        assert stats is not None
