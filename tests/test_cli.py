"""The command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestModels:
    def test_lists_all_cards(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "gpt-4o" in out
        assert "llama-3-70b" in out
        assert "text-embedding-3-small" in out


class TestRun:
    def test_filter_and_extract_over_folder(self, tmp_path, capsys):
        (tmp_path / "a.txt").write_text(
            "Memo about colorectal cancer. See https://a.example.org."
        )
        (tmp_path / "b.txt").write_text("Memo about gardening.")
        code = main([
            "run", "--source", str(tmp_path),
            "--filter", "about colorectal cancer",
            "--extract", "url",
            "--policy", "quality",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Execution summary" in out
        json_lines = [
            line for line in out.splitlines() if line.startswith("{")
        ]
        assert len(json_lines) == 1
        assert json.loads(json_lines[0])["url"] == "https://a.example.org"

    def test_empty_extract_list_is_an_error(self, tmp_path, capsys):
        (tmp_path / "a.txt").write_text("x")
        code = main([
            "run", "--source", str(tmp_path), "--extract", " , ",
        ])
        assert code == 2

    def test_run_with_limit(self, tmp_path, capsys):
        for i in range(5):
            (tmp_path / f"{i}.txt").write_text(f"note {i}")
        code = main([
            "run", "--source", str(tmp_path), "--limit", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count('"filename"') == 2


class TestDemo:
    def test_sci_scenario(self, tmp_path, capsys):
        code = main([
            "demo", "--scenario", "sci",
            "--data-dir", str(tmp_path / "data"),
            "--limit", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "records produced:  6" in out
        assert "... and 3 more records" in out

    def test_realestate_scenario(self, tmp_path, capsys):
        code = main([
            "demo", "--scenario", "realestate",
            "--data-dir", str(tmp_path / "data"),
            "--policy", "cost",
        ])
        assert code == 0
        assert "Execution summary" in capsys.readouterr().out


class TestChat:
    def test_repl_session(self, tmp_path, capsys, monkeypatch):
        lines = iter([
            "Load the papers from the sigmod-demo dataset",
            "exit",
        ])
        monkeypatch.setattr("builtins.input", lambda prompt="": next(lines))
        code = main([
            "chat", "--data-dir", str(tmp_path / "data"),
            "--export", str(tmp_path / "session.ipynb"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "11 records" in out
        assert (tmp_path / "session.ipynb").exists()

    def test_repl_handles_eof(self, tmp_path, monkeypatch, capsys):
        def raise_eof(prompt=""):
            raise EOFError

        monkeypatch.setattr("builtins.input", raise_eof)
        assert main(["chat", "--data-dir", str(tmp_path / "d")]) == 0


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])


class TestExplain:
    def test_explain_prints_frontier_without_executing(
        self, tmp_path, capsys
    ):
        (tmp_path / "a.txt").write_text("note about colorectal cancer")
        code = main([
            "run", "--source", str(tmp_path),
            "--filter", "about colorectal cancer",
            "--explain",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "plans enumerated" in out
        assert "pareto frontier" in out
        assert "chosen:" in out
        assert "Execution summary" not in out


class TestEngineExplain:
    def test_chosen_plan_marked(self, tmp_path):
        import repro as pz

        (tmp_path / "a.txt").write_text("doc about colorectal cancer")
        dataset = pz.Dataset(source=str(tmp_path)).filter(
            "about colorectal cancer"
        )
        text = pz.ExecutionEngine(policy="cost").explain(dataset)
        marked = [l for l in text.splitlines() if " *" in l]
        assert len(marked) == 1


class TestDemoLegal:
    def test_legal_scenario(self, tmp_path, capsys):
        code = main([
            "demo", "--scenario", "legal",
            "--data-dir", str(tmp_path / "data"),
            "--workers", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Execution summary" in out
        assert "Harbor Holdings" in out


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "models"],
            capture_output=True, text=True, timeout=120,
        )
        assert result.returncode == 0
        assert "gpt-4o" in result.stdout
