"""The optimizer end-to-end: policy-driven plan selection and sentinels."""

import pytest

from repro.core.builtin_schemas import TextFile
from repro.core.dataset import Dataset
from repro.core.schemas import make_schema
from repro.core.sources import MemorySource
from repro.llm.oracle import DocumentTruth, global_oracle
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.policies import MaxQuality, MinCost, MinTime

Clinical = make_schema("Clinical", "d", {"name": "n", "url": "u"})


@pytest.fixture()
def source():
    docs = []
    for i in range(12):
        relevant = i % 2 == 0
        topic = "colorectal cancer" if relevant else "gardening tips"
        text = (
            f"Title: Doc {i} about {topic}. "
            f"The Pool-{i} dataset is publicly available at "
            f"https://example.org/{i}. " + "Body text. " * 60
        )
        docs.append(text)
        global_oracle().register(
            text,
            DocumentTruth(
                predicates={"about colorectal cancer": relevant},
                fields={"name": f"Pool-{i}",
                        "url": f"https://example.org/{i}"},
                difficulty=0.05,
            ),
        )
    return MemorySource(docs, dataset_id="opt-test", schema=TextFile)


@pytest.fixture()
def pipeline(source):
    return (
        Dataset(source)
        .filter("about colorectal cancer")
        .convert(Clinical)
    )


class TestPolicySelection:
    def test_max_quality_picks_best_quality_plan(self, pipeline, source):
        report = Optimizer(MaxQuality()).optimize(
            pipeline.logical_plan(), source
        )
        best = max(c.estimate.quality for c in report.candidates)
        assert report.chosen.estimate.quality == pytest.approx(best)

    def test_min_cost_picks_cheapest_plan(self, pipeline, source):
        report = Optimizer(MinCost()).optimize(
            pipeline.logical_plan(), source
        )
        cheapest = min(c.estimate.cost_usd for c in report.candidates)
        assert report.chosen.estimate.cost_usd == pytest.approx(cheapest)

    def test_min_time_picks_fastest_plan(self, pipeline, source):
        report = Optimizer(MinTime()).optimize(
            pipeline.logical_plan(), source
        )
        fastest = min(c.estimate.time_seconds for c in report.candidates)
        assert report.chosen.estimate.time_seconds == pytest.approx(fastest)

    def test_policies_choose_different_plans(self, pipeline, source):
        plans = {
            policy.name: Optimizer(policy)
            .optimize(pipeline.logical_plan(), source)
            .chosen.plan.describe()
            for policy in (MaxQuality(), MinCost(), MinTime())
        }
        assert len(set(plans.values())) >= 2

    def test_default_policy_is_max_quality(self, pipeline, source):
        report = Optimizer().optimize(pipeline.logical_plan(), source)
        assert report.policy.name == "max-quality"

    def test_report_counts_plans(self, pipeline, source):
        report = Optimizer().optimize(pipeline.logical_plan(), source)
        assert report.plans_considered == len(report.candidates) > 10

    def test_frontier_is_subset(self, pipeline, source):
        report = Optimizer().optimize(pipeline.logical_plan(), source)
        frontier = report.frontier()
        assert 0 < len(frontier) <= len(report.candidates)


class TestSentinel:
    def test_sentinel_runs_record_cost(self, pipeline, source):
        report = Optimizer(MinCost(), sample_size=3).optimize(
            pipeline.logical_plan(), source
        )
        assert report.sentinel_runs > 0
        assert report.sentinel_cost_usd > 0

    def test_sentinel_updates_estimates(self, pipeline, source):
        naive = Optimizer(MinCost()).optimize(
            pipeline.logical_plan(), source
        )
        sampled = Optimizer(MinCost(), sample_size=4).optimize(
            pipeline.logical_plan(), source
        )
        # At least the chosen plan's estimate should now be sample-based.
        assert sampled.chosen.estimate.from_sample
        assert not naive.chosen.estimate.from_sample

    def test_sentinel_selectivity_reflects_data(self, pipeline, source):
        # True selectivity is 0.5 (6 of 12 docs relevant); naive prior is
        # also 0.5, but the sampled estimate must be in a sane range.
        report = Optimizer(MaxQuality(), sample_size=6).optimize(
            pipeline.logical_plan(), source
        )
        assert 0 < report.chosen.estimate.output_cardinality <= 12

    def test_zero_sample_size_skips_sentinels(self, pipeline, source):
        report = Optimizer(MaxQuality(), sample_size=0).optimize(
            pipeline.logical_plan(), source
        )
        assert report.sentinel_runs == 0
        assert report.sentinel_cost_usd == 0.0

    def test_describe_mentions_chosen_plan(self, pipeline, source):
        report = Optimizer().optimize(pipeline.logical_plan(), source)
        assert "chosen:" in report.describe()
