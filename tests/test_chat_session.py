"""The full chat session: Fig. 3/4 flows, notebook export, state restore."""

import json

import pytest

from repro.chat.session import PalimpChatSession


@pytest.fixture()
def session(sigmod_demo):
    return PalimpChatSession()


class TestScenarioFlow:
    def test_fig3_dataset_registration(self, session):
        reply = session.chat("Load the papers from the sigmod-demo dataset")
        assert reply.tool_sequence == ["load_dataset"]
        assert "11 records" in reply.text
        assert "PDFFile" in reply.text

    def test_fig4_decomposition(self, session):
        session.chat("Load the papers from the sigmod-demo dataset")
        reply = session.chat(
            "I am interested in papers that are about colorectal cancer, "
            "and I would like to extract the dataset name, description and "
            "url for any public dataset used by the study"
        )
        assert reply.tool_sequence == [
            "filter_dataset", "create_schema", "convert_dataset"
        ]

    def test_fig5_execution_and_stats(self, session):
        session.chat("Load the papers from the sigmod-demo dataset")
        session.chat(
            "Keep only the papers about colorectal cancer and extract "
            "whatever public dataset is used by the study"
        )
        reply = session.chat("Maximize quality and run the pipeline")
        assert "execute_pipeline" in reply.tool_sequence
        assert session.last_records is not None
        assert len(session.last_records) == 6
        stats_reply = session.chat("How much did it cost?")
        assert "get_execution_stats" in stats_reply.tool_sequence
        assert "total cost" in stats_reply.text

    def test_agent_reasoning_is_metered(self, session):
        session.chat("Load the papers from the sigmod-demo dataset")
        assert session.agent_cost_usd() > 0

    def test_unmetered_session(self, sigmod_demo):
        session = PalimpChatSession(agent_model=None)
        session.chat("Load the papers from the sigmod-demo dataset")
        assert session.agent_cost_usd() == 0.0


class TestArtifacts:
    def test_generated_code_runs(self, session):
        session.chat("Load the papers from the sigmod-demo dataset")
        session.chat("Keep only the papers about colorectal cancer")
        session.chat("run the pipeline")
        code = session.generated_code()
        from repro.chat.codegen import exec_program

        namespace = exec_program(code)
        assert len(namespace["records"]) == 8

    def test_notebook_export(self, session, tmp_path):
        session.chat("Load the papers from the sigmod-demo dataset")
        session.chat("show me something unrelated to pipelines")
        path = session.export_notebook(tmp_path / "out.ipynb")
        data = json.loads(path.read_text())
        kinds = [c["cell_type"] for c in data["cells"]]
        assert "markdown" in kinds and "code" in kinds

    def test_restore_rewinds_pipeline(self, session):
        first = session.chat("Load the papers from the sigmod-demo dataset")
        session.chat("Keep only the papers about colorectal cancer")
        assert len(session.workspace.current.logical_plan()) == 2
        session.restore(first.snapshot_index)
        assert len(session.workspace.current.logical_plan()) == 1

    def test_help_on_unknown_request(self, session):
        reply = session.chat("tell me a joke")
        assert reply.tool_sequence == []
        assert "pipeline" in reply.text.lower()


class TestExplainThroughChat:
    def test_explain_plans_tool(self, session):
        session.chat("Load the papers from the sigmod-demo dataset")
        session.chat("Keep only the papers about colorectal cancer")
        reply = session.chat("explain the plans")
        assert reply.tool_sequence == ["explain_plans"]
        assert "pareto frontier" in reply.text
        assert "chosen:" in reply.text


class TestParallelismThroughChat:
    def test_workers_speed_up_chat_run(self, session):
        session.chat("Load the papers from the sigmod-demo dataset")
        session.chat("Keep only the papers about colorectal cancer")
        session.chat("run the pipeline")
        sequential_time = session.last_stats.total_time_seconds
        session.chat("use 4 workers and run the pipeline")
        parallel_time = session.last_stats.total_time_seconds
        assert session.workspace.max_workers == 4
        assert parallel_time < sequential_time / 2


class TestNotebookKernel:
    def test_state_persists_across_executions(self, session):
        session.run_code("x = 40")
        output = session.run_code("print(x + 2)")
        assert output == "42\n"

    def test_pz_preloaded(self, session):
        output = session.run_code("print(pz.__version__)")
        assert output.strip() == "0.1.0"

    def test_cells_recorded_with_output(self, session):
        session.run_code("print('hello kernel')")
        code_cells = [c for c in session.notebook.cells if c.kind == "code"]
        assert code_cells[-1].source == "print('hello kernel')"
        assert code_cells[-1].outputs == ["hello kernel\n"]

    def test_exception_recorded_then_raised(self, session):
        with pytest.raises(ZeroDivisionError):
            session.run_code("1 / 0")
        code_cells = [c for c in session.notebook.cells if c.kind == "code"]
        assert "ZeroDivisionError" in code_cells[-1].outputs[0]

    def test_iterate_on_generated_code_in_kernel(self, session):
        session.chat("Load the papers from the sigmod-demo dataset")
        session.chat("Keep only the papers about colorectal cancer")
        session.chat("run the pipeline")
        session.run_code(session.generated_code())
        output = session.run_code("print(len(records))")
        assert output.strip() == "8"


class TestSentinelQualityCalibration:
    def test_sampled_quality_is_measured_f1(self, sigmod_demo):
        import repro as pz
        from repro.optimizer.optimizer import Optimizer

        dataset = pz.Dataset(source="sigmod-demo").filter(
            "The papers are about colorectal cancer"
        )
        report = Optimizer(pz.MaxQuality(), sample_size=5).optimize(
            dataset.logical_plan(), dataset.source
        )
        sampled = [c for c in report.candidates if c.estimate.from_sample]
        assert sampled
        # Measured qualities are valid F1 values, and the best plan on the
        # easy corpus sample is perfect.
        assert all(0.0 <= c.estimate.quality <= 1.0 for c in sampled)
        assert report.chosen.estimate.quality == 1.0
