"""The text memoization layer: correctness, single-computation, eviction."""

import pytest

from repro.core.builtin_schemas import TextFile
from repro.core.records import DataRecord
from repro.llm import memo as memo_module
from repro.llm import oracle as oracle_module
from repro.llm import tokenizer as tokenizer_module
from repro.llm.memo import TextMemo, clear_memos, memo_stats
from repro.llm.oracle import fingerprint_text
from repro.llm.tokenizer import count_tokens


class TestTextMemoUnit:
    def test_computes_once_per_text(self):
        memo = TextMemo("t")
        calls = []

        def compute(text):
            calls.append(text)
            return len(text)

        assert memo.get_or_compute("abc", compute) == 3
        assert memo.get_or_compute("abc", compute) == 3
        assert calls == ["abc"]
        assert memo.hits == 1
        assert memo.misses == 1

    def test_distinct_texts_distinct_values(self):
        memo = TextMemo("t")
        assert memo.get_or_compute("a", len) == 1
        assert memo.get_or_compute("bb", len) == 2
        assert len(memo) == 2

    def test_eviction_respects_bound(self):
        memo = TextMemo("t", max_entries=2)
        for text in ("a", "b", "c"):
            memo.get_or_compute(text, len)
        assert len(memo) == 2
        assert memo.evictions == 1

    def test_invalid_max_entries(self):
        with pytest.raises(ValueError):
            TextMemo("t", max_entries=0)

    def test_clear_resets_counters(self):
        memo = TextMemo("t")
        memo.get_or_compute("a", len)
        memo.get_or_compute("a", len)
        memo.clear()
        assert len(memo) == 0
        assert memo.stats() == {
            "entries": 0, "hits": 0, "misses": 0, "evictions": 0,
        }


class TestModuleMemos:
    def test_registry_exposes_tokenizer_and_oracle_memos(self):
        stats = memo_stats()
        assert "count_tokens" in stats
        assert "fingerprint_text" in stats

    def test_count_tokens_tokenizes_once_per_text(self, monkeypatch):
        clear_memos()
        calls = []
        real = tokenizer_module._count_tokens_uncached

        def counting(text):
            calls.append(text)
            return real(text)

        monkeypatch.setattr(
            tokenizer_module, "_count_tokens_uncached", counting
        )
        text = "memoized tokenization should only walk the regex once"
        first = count_tokens(text)
        second = count_tokens(text)
        assert first == second == real(text)
        assert calls == [text]

    def test_fingerprint_hashes_once_per_text(self, monkeypatch):
        clear_memos()
        calls = []
        real = oracle_module._fingerprint_uncached

        def counting(text):
            calls.append(text)
            return real(text)

        monkeypatch.setattr(
            oracle_module, "_fingerprint_uncached", counting
        )
        text = "the same document fingerprinted twice"
        assert fingerprint_text(text) == fingerprint_text(text)
        assert calls == [text]

    def test_memoized_results_match_uncached(self):
        clear_memos()
        texts = [
            "",
            "hi",
            "A study on colorectal cancer.",
            "word " * 50,
            "punctuation! and; symbols?",
            "   leading and trailing   ",
        ]
        for text in texts:
            assert count_tokens(text) == \
                tokenizer_module._count_tokens_uncached(text)
            assert fingerprint_text(text) == \
                oracle_module._fingerprint_uncached(text)

    def test_clear_memos_drops_entries(self):
        count_tokens("something to remember")
        clear_memos()
        stats = memo_stats()
        assert all(s["entries"] == 0 for s in stats.values())

    def test_default_cap_is_bounded(self):
        assert memo_module.DEFAULT_MAX_ENTRIES > 0


class TestDocumentTextCache:
    def _record(self, text):
        record = DataRecord(TextFile, source_id="memo-test")
        record.filename = "doc.txt"
        record.text_contents = text
        return record

    def test_document_text_is_stable(self):
        record = self._record("first version")
        assert record.document_text() == record.document_text()

    def test_mutation_invalidates_cached_text(self):
        record = self._record("first version")
        before = record.document_text()
        record.text_contents = "second version"
        after = record.document_text()
        assert "first version" in before
        assert "second version" in after
        assert before != after
