"""The ReAct loop: decisions, observations, metering, failure modes."""

import pytest

from repro.agent.react import (
    AgentStep,
    Brain,
    FinalAnswer,
    ReActAgent,
    ScriptedBrain,
    ToolCall,
)
from repro.agent.tools import AgentRef, ToolRegistry, tool
from repro.llm.clock import VirtualClock
from repro.llm.models import get_model
from repro.llm.usage import UsageLedger


@tool()
def echo(text: str) -> str:
    """Echo the provided text back.

    Args:
        text: what to echo
    """
    return f"echo: {text}"


@tool()
def fail(reason: str) -> str:
    """Always raises an error (for testing).

    Args:
        reason: the failure message
    """
    raise RuntimeError(reason)


@pytest.fixture()
def registry():
    return ToolRegistry([echo, fail])


class TestLoop:
    def test_tool_then_final(self, registry):
        brain = ScriptedBrain([
            ToolCall(thought="echo it", tool_name="echo",
                     arguments={"text": "hi"}),
            FinalAnswer(thought="done", answer="finished"),
        ])
        agent = ReActAgent(registry, brain)
        result = agent.run("say hi")
        assert result.succeeded
        assert result.answer == "finished"
        assert result.trace.tool_sequence() == ["echo"]
        observations = [
            s for s in result.trace.steps if s.kind == "observation"
        ]
        assert observations[0].content == "echo: hi"

    def test_chained_tool_calls(self, registry):
        brain = ScriptedBrain([
            ToolCall("1", "echo", {"text": "a"}),
            ToolCall("2", "echo", {"text": "b"}),
            FinalAnswer("done", "ok"),
        ])
        result = ReActAgent(registry, brain).run("go")
        assert result.trace.tool_sequence() == ["echo", "echo"]
        assert result.steps_used == 3

    def test_tool_exception_becomes_observation(self, registry):
        brain = ScriptedBrain([
            ToolCall("will fail", "fail", {"reason": "boom"}),
            FinalAnswer("recovered", "handled"),
        ])
        result = ReActAgent(registry, brain).run("go")
        assert result.succeeded
        errors = [s for s in result.trace.steps if s.kind == "error"]
        assert "boom" in errors[0].content

    def test_unknown_tool_becomes_error_observation(self, registry):
        brain = ScriptedBrain([
            ToolCall("bad", "nonexistent", {}),
            FinalAnswer("ok", "done"),
        ])
        result = ReActAgent(registry, brain).run("go")
        errors = [s for s in result.trace.steps if s.kind == "error"]
        assert "unknown tool" in errors[0].content

    def test_max_steps_cap(self, registry):
        brain = ScriptedBrain(
            [ToolCall("again", "echo", {"text": "x"})] * 50
        )
        agent = ReActAgent(registry, brain, max_steps=3)
        result = agent.run("loop forever")
        assert not result.succeeded
        assert result.steps_used == 3

    def test_invalid_max_steps(self, registry):
        with pytest.raises(ValueError):
            ReActAgent(registry, ScriptedBrain([]), max_steps=0)

    def test_script_exhaustion_gives_final_answer(self, registry):
        result = ReActAgent(registry, ScriptedBrain([])).run("hello")
        assert result.succeeded

    def test_state_passed_to_brain(self, registry):
        class StateBrain(Brain):
            def decide(self, context):
                context.state["touched"] = True
                return FinalAnswer("done", "ok")

        state = {}
        ReActAgent(registry, StateBrain()).run("go", state=state)
        assert state["touched"]

    def test_last_observation_visible_to_brain(self, registry):
        seen = []

        class ObservingBrain(Brain):
            def __init__(self):
                self.step = 0

            def decide(self, context):
                seen.append(context.last_observation)
                self.step += 1
                if self.step == 1:
                    return ToolCall("t", "echo", {"text": "ping"})
                return FinalAnswer("t", "ok")

        ReActAgent(registry, ObservingBrain()).run("go")
        assert seen == [None, "echo: ping"]


class TestMetering:
    def test_reasoning_calls_metered(self, registry):
        ledger = UsageLedger()
        clock = VirtualClock()
        brain = ScriptedBrain([
            ToolCall("1", "echo", {"text": "a"}),
            FinalAnswer("2", "ok"),
        ])
        agent = ReActAgent(
            registry, brain, model=get_model("gpt-4o"),
            clock=clock, ledger=ledger,
        )
        agent.run("go")
        # One metered reasoning call per loop iteration (2 decisions).
        assert len(ledger) == 2
        assert ledger.total().cost_usd > 0
        assert clock.elapsed > 0

    def test_non_reasoning_model_rejected(self, registry):
        with pytest.raises(ValueError, match="reasoning"):
            ReActAgent(
                registry, ScriptedBrain([]), model=get_model("llama-3-8b")
            )

    def test_unmetered_agent_works(self, registry):
        result = ReActAgent(registry, ScriptedBrain([])).run("go")
        assert result.succeeded


class TestTrace:
    def test_scratchpad_renders_all_kinds(self, registry):
        brain = ScriptedBrain([
            ToolCall("think", "echo", {"text": "x"}),
            FinalAnswer("conclude", "the answer"),
        ])
        result = ReActAgent(registry, brain).run("go")
        pad = result.trace.scratchpad()
        assert "Thought: think" in pad
        assert "Action: echo" in pad
        assert "Observation: echo: x" in pad
        assert "Final Answer: the answer" in pad
