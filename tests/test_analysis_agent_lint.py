"""Agent lint (AG2xx): docstring/signature drift and template scanning."""

from repro.agent.code_tools import CodeTool
from repro.agent.tools import ToolParameter, tool
from repro.analysis import lint_registry, lint_template, lint_tool
from repro.chat.tools_pz import build_pz_tools
from repro.chat.workspace import PipelineWorkspace


def make_code_tool(template, parameters=("message",), environment=None):
    return CodeTool(
        name="fixture",
        summary="A fixture code tool.",
        template=template,
        parameters=[
            ToolParameter(name=name, type_name="string")
            for name in parameters
        ],
        environment=environment,
    )


class TestDocstringRules:
    def test_ag201_renamed_parameter(self):
        @tool()
        def summarize(text: str) -> str:
            """Summarize a document.

            Args:
                document: the text to summarize.
            """
            return text

        result = lint_tool(summarize)
        codes = result.codes()
        assert "AG201" in codes
        [ag201] = [d for d in result.errors if d.code == "AG201"]
        assert "text" in ag201.hint  # close-match rename suggestion

    def test_ag202_undocumented_parameter(self):
        @tool()
        def search(query: str, limit: int = 5) -> str:
            """Search the corpus.

            Args:
                query: what to look for.
            """
            return query

        codes = lint_tool(search).codes()
        assert "AG202" in codes
        assert "AG201" not in codes

    def test_ag203_missing_summary(self):
        @tool()
        def nameless(x: str) -> str:
            """

            Args:
                x: something.
            """
            return x

        assert "AG203" in lint_tool(nameless).codes()

    def test_ag204_undocumented_return(self):
        @tool()
        def quiet(x: str) -> str:
            """Do a thing.

            Args:
                x: something.
            """
            return x

        result = lint_tool(quiet)
        assert "AG204" in result.codes()
        assert result.ok  # info only

    def test_fully_documented_tool_is_clean(self):
        @tool()
        def tidy(x: str) -> str:
            """Do a thing.

            Args:
                x: something.

            Returns:
                the same thing.
            """
            return x

        assert lint_tool(tidy).codes() == []


class TestTemplateRules:
    def test_ag205_unknown_variable(self):
        code_tool = make_code_tool(
            "result = {{ message }} + {{ missing_var }}"
        )
        result = lint_tool(code_tool)
        assert "AG205" in result.codes()
        assert not result.ok

    def test_environment_variables_are_available(self):
        code_tool = make_code_tool(
            "result = {{ message }} + {{ corpus }}",
            environment={"corpus": "docs"},
        )
        assert "AG205" not in lint_tool(code_tool).codes()

    def test_agent_is_always_available(self):
        code_tool = make_code_tool("result = {{ message }}; {{ agent }}")
        assert "AG205" not in lint_tool(code_tool).codes()

    def test_ag206_unknown_filter(self):
        code_tool = make_code_tool("result = {{ message | shout }}")
        result = lint_tool(code_tool)
        assert "AG206" in result.codes()
        [diagnostic] = result.errors
        assert "available" in diagnostic.message

    def test_chained_filters_each_checked(self):
        result = lint_template(
            "{{ x | upper | nope }}", available=["x"]
        )
        assert result.codes() == ["AG206"]

    def test_known_chained_filters_are_clean(self):
        result = lint_template(
            "{{ x | lower | repr }}", available=["x"]
        )
        assert result.codes() == []

    def test_duplicate_findings_deduplicated(self):
        result = lint_template(
            "{{ ghost }} then {{ ghost }}", available=[]
        )
        assert result.codes() == ["AG205"]


class TestShippedTools:
    def test_chat_tool_registry_has_no_errors_or_warnings(self):
        registry = build_pz_tools(PipelineWorkspace())
        result = lint_registry(registry)
        assert result.errors == []
        assert result.warnings == []
