"""The pz-lint diagnostics core: rules, config, results."""

from pathlib import Path

import pytest

from repro.analysis import (
    Diagnostic,
    LintConfig,
    LintError,
    LintResult,
    Severity,
    all_rules,
    get_rule,
    register_rule,
)
from repro.analysis.diagnostics import Emitter
from repro.core.errors import PlanError


class TestSeverity:
    def test_rank_orders_error_first(self):
        assert Severity.ERROR.rank < Severity.WARNING.rank < Severity.INFO.rank

    def test_parse_accepts_strings_and_members(self):
        assert Severity.parse("error") is Severity.ERROR
        assert Severity.parse(" Warning ") is Severity.WARNING
        assert Severity.parse(Severity.INFO) is Severity.INFO

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.parse("fatal")


class TestDiagnostic:
    def test_render_has_code_location_and_hint(self):
        diagnostic = Diagnostic(
            code="PZ101", severity=Severity.ERROR,
            message="bad field", location="op[1]", hint="rename it",
        )
        rendered = diagnostic.render()
        assert "error[PZ101]" in rendered
        assert "op[1]:" in rendered
        assert "bad field" in rendered
        assert "(hint: rename it)" in rendered

    def test_render_without_location_or_hint(self):
        rendered = Diagnostic(
            code="AG203", severity=Severity.WARNING, message="m"
        ).render()
        assert rendered == "warning[AG203] m"

    def test_to_dict_round_trip_fields(self):
        diagnostic = Diagnostic("CG301", Severity.ERROR, "m", "loc", "h")
        assert diagnostic.to_dict() == {
            "code": "CG301", "severity": "error", "message": "m",
            "location": "loc", "hint": "h",
        }


class TestRuleRegistry:
    def test_all_rules_sorted_and_nonempty(self):
        codes = [rule.code for rule in all_rules()]
        assert codes == sorted(codes)
        assert {"PZ101", "AG201", "CG301"} <= set(codes)

    def test_families_derived_from_code(self):
        assert get_rule("PZ101").family == "PZ"
        assert get_rule("AG205").family == "AG"

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_rule("PZ101", "dup", "dup", Severity.ERROR)

    def test_unknown_rule_lookup(self):
        with pytest.raises(KeyError, match="unknown lint rule"):
            get_rule("XX999")


class TestLintConfig:
    def test_parse_comma_separated(self):
        config = LintConfig.parse("pz102, ag")
        assert not config.is_enabled("PZ102")
        assert not config.is_enabled("AG205")
        assert config.is_enabled("PZ101")

    def test_prefix_disables_family(self):
        config = LintConfig.parse("CG")
        assert not config.is_enabled("CG301")
        assert not config.is_enabled("CG312")
        assert config.is_enabled("PZ101")

    def test_severity_override(self):
        config = LintConfig(
            severity_overrides={"PZ105": Severity.ERROR}
        )
        assert config.severity_for("PZ105") is Severity.ERROR
        assert config.severity_for("PZ101") is Severity.ERROR
        assert config.severity_for("PZ102") is Severity.WARNING

    def test_emitter_respects_disable(self):
        result = LintResult()
        emitter = Emitter(result, LintConfig.parse("PZ101"))
        emitter.emit("PZ101", "suppressed")
        emitter.emit("PZ102", "kept")
        assert result.codes() == ["PZ102"]


class TestLintResult:
    def _diag(self, code, severity, location=""):
        return Diagnostic(code, severity, f"msg {code}", location)

    def test_ok_depends_only_on_errors(self):
        result = LintResult([self._diag("PZ102", Severity.WARNING)])
        assert result.ok
        result.add(self._diag("PZ101", Severity.ERROR))
        assert not result.ok

    def test_extend_applies_location_prefix(self):
        inner = LintResult([self._diag("PZ101", Severity.ERROR, "op[0]")])
        outer = LintResult()
        outer.extend(inner, location_prefix="op[2].right ")
        assert outer.diagnostics[0].location == "op[2].right op[0]"

    def test_sorted_puts_errors_first(self):
        result = LintResult([
            self._diag("PZ108", Severity.INFO),
            self._diag("PZ101", Severity.ERROR),
            self._diag("PZ105", Severity.WARNING),
        ])
        assert [d.severity for d in result.sorted()] == [
            Severity.ERROR, Severity.WARNING, Severity.INFO,
        ]

    def test_summary_counts(self):
        result = LintResult([
            self._diag("PZ101", Severity.ERROR),
            self._diag("PZ105", Severity.WARNING),
            self._diag("PZ108", Severity.INFO),
        ])
        assert result.summary() == "1 error(s), 1 warning(s), 1 info(s)"

    def test_to_json_is_parseable(self):
        import json

        result = LintResult([self._diag("PZ101", Severity.ERROR)])
        payload = json.loads(result.to_json())
        assert payload["errors"] == 1
        assert payload["diagnostics"][0]["code"] == "PZ101"


class TestLintError:
    def test_is_a_plan_error_and_carries_result(self):
        result = LintResult([
            Diagnostic("PZ101", Severity.ERROR, "bad field", "op[1]"),
        ])
        error = LintError(result)
        assert isinstance(error, PlanError)
        assert error.result is result
        assert "PZ101" in str(error)
        assert "bad field" in str(error)


class TestDocumentation:
    def test_every_rule_documented_in_diagnostics_md(self):
        table = (
            Path(__file__).resolve().parents[1] / "docs" / "diagnostics.md"
        ).read_text()
        for rule in all_rules():
            assert rule.code in table, (
                f"rule {rule.code} is missing from docs/diagnostics.md"
            )
