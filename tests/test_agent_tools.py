"""The @tool decorator, spec parsing, and the registry."""

import pytest

from repro.agent.tools import (
    AgentRef,
    Tool,
    ToolError,
    ToolRegistry,
    tool,
)


@tool()
def add(a: int, b: int = 0) -> int:
    """Add two integers together.

    Args:
        a: the first addend
        b: the second addend (optional)

    Returns:
        the sum

    Examples:
        add(a=1, b=2)
    """
    return a + b


@tool(name="renamed")
def original_name() -> str:
    """A tool registered under a different name."""
    return "ok"


@tool()
def needs_agent(x: int, agent: AgentRef = None) -> str:
    """Use the running agent.

    Args:
        x: a number
    """
    return f"x={x} agent={'yes' if agent is not None else 'no'}"


@tool()
async def async_tool(value: str) -> str:
    """An asynchronous tool (the paper's tools are async def).

    Args:
        value: any string
    """
    return value.upper()


class TestSpecParsing:
    def test_summary_from_docstring(self):
        assert add.spec.summary == "Add two integers together."

    def test_parameters_with_descriptions(self):
        params = {p.name: p for p in add.spec.parameters}
        assert params["a"].required
        assert not params["b"].required
        assert params["b"].default == 0
        assert "addend" in params["a"].description

    def test_returns_section(self):
        assert add.spec.returns == "the sum"

    def test_examples_section(self):
        assert add.spec.examples == ["add(a=1, b=2)"]

    def test_type_names_captured(self):
        params = {p.name: p for p in add.spec.parameters}
        assert params["a"].type_name == "int"

    def test_custom_name(self):
        assert original_name.spec.name == "renamed"

    def test_agent_ref_hidden_from_spec(self):
        names = [p.name for p in needs_agent.spec.parameters]
        assert names == ["x"]

    def test_docstring_required(self):
        with pytest.raises(ToolError, match="docstring"):
            @tool()
            def undocumented(x):
                pass

    def test_render_block_mentions_params(self):
        text = add.spec.render()
        assert "add(" in text
        assert "a (int)" in text


class TestInvocation:
    def test_basic_invoke(self):
        assert add.invoke({"a": 2, "b": 3}) == 5

    def test_default_applied(self):
        assert add.invoke({"a": 2}) == 2

    def test_missing_required_rejected(self):
        with pytest.raises(ToolError, match="missing required"):
            add.invoke({"b": 1})

    def test_unexpected_argument_rejected(self):
        with pytest.raises(ToolError, match="unexpected"):
            add.invoke({"a": 1, "c": 9})

    def test_agent_injected(self):
        sentinel = object()
        assert needs_agent.invoke({"x": 1}, agent=sentinel) == "x=1 agent=yes"

    def test_agent_param_not_passable_by_model(self):
        with pytest.raises(ToolError, match="unexpected"):
            needs_agent.invoke({"x": 1, "agent": "fake"})

    def test_async_tool_driven_to_completion(self):
        assert async_tool.invoke({"value": "abc"}) == "ABC"


class TestRegistry:
    def test_register_and_get(self):
        registry = ToolRegistry([add])
        assert registry.get("add") is add
        assert "add" in registry
        assert len(registry) == 1

    def test_duplicate_rejected(self):
        registry = ToolRegistry([add])
        with pytest.raises(ToolError, match="already registered"):
            registry.register(add)

    def test_unknown_tool_lists_available(self):
        registry = ToolRegistry([add])
        with pytest.raises(ToolError, match="add"):
            registry.get("subtract")

    def test_non_tool_rejected(self):
        registry = ToolRegistry()
        with pytest.raises(ToolError, match="forget @tool"):
            registry.register(lambda: None)

    def test_render_block_sorted(self):
        registry = ToolRegistry([add, original_name])
        block = registry.render_block()
        assert block.index("- add(") < block.index("- renamed(")
