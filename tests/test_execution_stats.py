"""Statistics objects: aggregation and rendering."""

import pytest

from repro.execution.stats import ExecutionStats, OperatorStats, PlanStats


@pytest.fixture()
def plan_stats():
    return PlanStats(
        plan_id="abc123",
        plan_describe="Scan -> Filter",
        operator_stats=[
            OperatorStats(
                op_label="MarshalAndScan",
                logical_describe="scan",
                records_in=10, records_out=10,
                time_seconds=1.0, cost_usd=0.0,
            ),
            OperatorStats(
                op_label="LLMFilter[gpt-4o]",
                logical_describe="filter",
                records_in=10, records_out=4,
                time_seconds=30.0, cost_usd=0.12, llm_calls=10,
                input_tokens=5000, output_tokens=10,
            ),
        ],
        total_time_seconds=31.0,
        total_cost_usd=0.12,
        records_out=4,
    )


class TestOperatorStats:
    def test_selectivity(self):
        stats = OperatorStats("op", "l", records_in=10, records_out=4)
        assert stats.selectivity == pytest.approx(0.4)

    def test_selectivity_empty_input(self):
        assert OperatorStats("op", "l").selectivity == 1.0

    def test_to_dict_rounding(self):
        stats = OperatorStats(
            "op", "l", time_seconds=1.23456, cost_usd=0.000123456
        )
        data = stats.to_dict()
        assert data["time_seconds"] == 1.235
        assert data["cost_usd"] == 0.000123


class TestExecutionStats:
    def test_totals_include_optimization(self, plan_stats):
        stats = ExecutionStats(
            plan_stats=plan_stats,
            policy="max-quality",
            plans_considered=120,
            optimization_cost_usd=0.01,
            optimization_time_seconds=5.0,
        )
        assert stats.total_cost_usd == pytest.approx(0.13)
        assert stats.total_time_seconds == pytest.approx(36.0)
        assert stats.records_out == 4

    def test_summary_contains_key_numbers(self, plan_stats):
        stats = ExecutionStats(plan_stats=plan_stats, policy="max-quality")
        summary = stats.summary()
        assert "max-quality" in summary
        assert "LLMFilter[gpt-4o]" in summary
        assert "records produced:  4" in summary
        assert "$0.12" in summary

    def test_to_dict_structure(self, plan_stats):
        stats = ExecutionStats(plan_stats=plan_stats, policy="min-cost",
                               plans_considered=7)
        data = stats.to_dict()
        assert data["policy"] == "min-cost"
        assert data["plans_considered"] == 7
        assert len(data["plan"]["operators"]) == 2


class TestModelUsage:
    def test_model_usage_in_summary_and_dict(self):
        import repro as pz
        from repro.core.builtin_schemas import TextFile
        from repro.core.sources import MemorySource

        source = MemorySource(
            ["doc about colorectal cancer"], dataset_id="mu-test",
            schema=TextFile,
        )
        dataset = pz.Dataset(source).filter("about colorectal cancer")
        _, stats = pz.Execute(dataset, policy=pz.MaxQuality())
        assert stats.plan_stats.model_usage
        row = stats.plan_stats.model_usage[0]
        assert row.model == "gpt-4o"
        assert row.calls == 1
        summary = stats.summary()
        assert "LLM invocations by model:" in summary
        assert "gpt-4o" in summary
        data = stats.to_dict()
        assert data["plan"]["models"][0]["model"] == "gpt-4o"
