"""Physical filter operators."""

import pytest

from repro.core.builtin_schemas import TextFile
from repro.core.logical import FilterSpec, FilteredScan
from repro.core.records import DataRecord
from repro.llm.models import get_model
from repro.llm.oracle import DocumentTruth, GroundTruthRegistry
from repro.physical.base import StreamEstimate
from repro.physical.context import ExecutionContext
from repro.physical.filters import EmbeddingFilter, LLMFilter, NonLLMFilter


def record(text):
    return DataRecord.from_dict(TextFile, {"text_contents": text})


def semantic_filter(predicate="about colorectal cancer"):
    return FilteredScan(TextFile, FilterSpec(predicate=predicate))


@pytest.fixture()
def context():
    oracle = GroundTruthRegistry()
    oracle.register(
        "A colorectal cancer study.",
        DocumentTruth(
            predicates={"about colorectal cancer": True}, difficulty=0.0
        ),
    )
    oracle.register(
        "A pasta cooking guide.",
        DocumentTruth(
            predicates={"about colorectal cancer": False}, difficulty=0.0
        ),
    )
    return ExecutionContext(oracle=oracle)


class TestNonLLMFilter:
    def test_udf_applied(self, context):
        logical = FilteredScan(
            TextFile, FilterSpec(udf=lambda r: "keep" in r.text_contents)
        )
        op = NonLLMFilter(logical)
        op.open(context)
        assert op.process(record("keep me")) != []
        assert op.process(record("drop me")) == []

    def test_requires_udf_spec(self):
        with pytest.raises(ValueError):
            NonLLMFilter(semantic_filter())

    def test_estimates_are_free_and_perfect(self, context):
        logical = FilteredScan(TextFile, FilterSpec(udf=lambda r: True))
        estimates = NonLLMFilter(logical).naive_estimates(
            StreamEstimate(10, 1000)
        )
        assert estimates.cost_per_record == 0.0
        assert estimates.quality == 1.0


class TestLLMFilter:
    def test_keeps_true_documents(self, context):
        op = LLMFilter(semantic_filter(), get_model("gpt-4o"))
        op.open(context)
        assert op.process(record("A colorectal cancer study.")) != []
        assert op.process(record("A pasta cooking guide.")) == []

    def test_requires_semantic_spec(self):
        logical = FilteredScan(TextFile, FilterSpec(udf=lambda r: True))
        with pytest.raises(ValueError):
            LLMFilter(logical, get_model("gpt-4o"))

    def test_meters_context(self, context):
        op = LLMFilter(semantic_filter(), get_model("gpt-4o"))
        op.open(context)
        op.process(record("A colorectal cancer study."))
        assert len(context.ledger) == 1
        assert context.clock.elapsed > 0

    def test_unopened_operator_raises(self):
        op = LLMFilter(semantic_filter(), get_model("gpt-4o"))
        with pytest.raises(AssertionError):
            op.process(record("x"))

    def test_estimates_scale_with_model_price(self, context):
        stream = StreamEstimate(10, 2000)
        big = LLMFilter(semantic_filter(), get_model("gpt-4o"))
        small = LLMFilter(semantic_filter(), get_model("gpt-4o-mini"))
        assert (
            big.naive_estimates(stream).cost_per_record
            > small.naive_estimates(stream).cost_per_record
        )

    def test_estimates_quality_tracks_model_quality(self, context):
        stream = StreamEstimate(10, 2000)
        big = LLMFilter(semantic_filter(), get_model("gpt-4o"))
        small = LLMFilter(semantic_filter(), get_model("llama-3-8b"))
        assert (
            big.naive_estimates(stream).quality
            > small.naive_estimates(stream).quality
        )

    def test_op_label_includes_model(self):
        op = LLMFilter(semantic_filter(), get_model("gpt-4o"))
        assert op.op_label == "LLMFilter[gpt-4o]"


class TestEmbeddingFilter:
    def _embedder_model(self, context):
        return context.models.embedding_models()[0]

    def test_vocabulary_overlap_passes(self, context):
        op = EmbeddingFilter(
            semantic_filter("colorectal cancer research"),
            self._embedder_model(context),
        )
        op.open(context)
        kept = op.process(
            record(
                "a long colorectal cancer research cohort analysis with "
                "colorectal cancer outcomes discussed throughout " * 3
            )
        )
        dropped = op.process(
            record(
                "an unrelated essay on medieval architecture and art, "
                "covering cathedrals, frescoes, and stone masonry " * 3
            )
        )
        assert kept != []
        assert dropped == []

    def test_cheaper_than_llm(self, context):
        stream = StreamEstimate(10, 2000)
        embed = EmbeddingFilter(
            semantic_filter(), self._embedder_model(context)
        )
        llm = LLMFilter(semantic_filter(), get_model("gpt-4o-mini"))
        assert (
            embed.naive_estimates(stream).cost_per_record
            < llm.naive_estimates(stream).cost_per_record
        )

    def test_lower_estimated_quality_than_llm(self, context):
        stream = StreamEstimate(10, 2000)
        embed = EmbeddingFilter(
            semantic_filter(), self._embedder_model(context)
        )
        llm = LLMFilter(semantic_filter(), get_model("gpt-4o"))
        assert (
            embed.naive_estimates(stream).quality
            < llm.naive_estimates(stream).quality
        )
