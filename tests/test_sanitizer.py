"""Runtime lock sanitizer: wrapping, graphs, violations, Execute wiring."""

import sys
import threading

import pytest

from repro.analysis.sanitizer import (
    SanitizedLock,
    SanitizerReport,
    sanitize,
)
from repro.execution.execute import Execute
from repro.execution.executors import SequentialExecutor

sys.path.insert(0, "tests")
from test_execution_pipeline import (
    make_source,
    shape_filter_convert,
    shape_groupby,
    shape_limit_early,
)


class TestLockWrapping:
    def test_locks_created_inside_window_are_wrapped(self):
        with sanitize() as report:
            lock = threading.Lock()
            assert isinstance(lock, SanitizedLock)
            with lock:
                pass
        assert report.lock_count == 1

    def test_factories_restored_on_exit(self):
        with sanitize():
            pass
        assert not isinstance(threading.Lock(), SanitizedLock)
        assert not isinstance(threading.RLock(), SanitizedLock)

    def test_rlock_reentrancy_preserved(self):
        with sanitize() as report:
            lock = threading.RLock()
            with lock:
                with lock:  # would deadlock on a plain Lock
                    pass
        assert report.violations == []

    def test_nested_windows_raise(self):
        with sanitize():
            with pytest.raises(RuntimeError):
                with sanitize():
                    pass

    def test_condition_on_sanitized_locks_works(self):
        # Condition routes through _release_save/_acquire_restore.
        for factory in (threading.Lock, threading.RLock):
            with sanitize():
                condition = threading.Condition(factory())
                hits = []

                def waiter():
                    with condition:
                        condition.wait(timeout=5)
                        hits.append(1)

                thread = threading.Thread(target=waiter)
                thread.start()
                import time
                time.sleep(0.05)
                with condition:
                    condition.notify()
                thread.join(timeout=5)
                assert hits == [1]


class TestLockOrderGraph:
    def test_nested_acquisition_records_edge(self):
        with sanitize() as report:
            outer, inner = threading.Lock(), threading.Lock()
            with outer:
                with inner:
                    pass
        assert len(report.edges) == 1
        assert report.cycles() == []

    def test_inconsistent_order_reports_cycle(self):
        with sanitize() as report:
            a, b = threading.Lock(), threading.Lock()
            with a:
                with b:
                    pass
            with b:
                with a:  # opposite order: the classic deadlock shape
                    pass
        cycles = report.cycles()
        assert cycles, report.edges
        assert cycles[0][0] == cycles[0][-1]
        assert not report.ok()

    def test_consistent_order_is_acyclic(self):
        with sanitize() as report:
            a, b = threading.Lock(), threading.Lock()
            for _ in range(3):
                with a:
                    with b:
                        pass
        assert report.cycles() == []
        assert report.ok()


class TestGuardedWriteChecks:
    def _make_class(self):
        class Guarded:
            _GUARDED_BY = {"value": "_lock"}

            def __init__(self):
                self._lock = threading.Lock()
                self.value = 0  # constructor write: exempt

            def good(self):
                with self._lock:
                    self.value += 1

            def bad(self):
                self.value += 1

        Guarded.__module__ = "repro._sanitizer_test"
        sys.modules.setdefault(
            "repro._sanitizer_test", type(sys)("repro._sanitizer_test")
        )
        sys.modules["repro._sanitizer_test"].Guarded = Guarded
        return Guarded

    def teardown_method(self):
        sys.modules.pop("repro._sanitizer_test", None)

    def test_locked_write_clean_unlocked_write_flagged(self):
        cls = self._make_class()
        with sanitize() as report:
            obj = cls()
            obj.good()
            assert report.violations == []
            obj.bad()
        assert len(report.violations) == 1
        assert "Guarded.value" in report.violations[0]
        assert "Guarded._lock" in report.violations[0]
        assert report.guarded_writes == 2  # constructor write exempt
        assert not report.ok()

    def test_exercised_guard_not_reported_unexercised(self):
        cls = self._make_class()
        with sanitize() as report:
            obj = cls()
            obj.good()
        assert ("Guarded", "value", "_lock") not in report.unexercised

    def test_unexercised_guard_cross_check(self):
        cls = self._make_class()
        with sanitize() as report:
            cls()  # constructed but the guard never exercised
        assert ("Guarded", "value", "_lock") in report.unexercised

    def test_hooks_removed_after_window(self):
        cls = self._make_class()
        with sanitize():
            pass
        assert "__setattr__" not in cls.__dict__
        obj = cls()
        obj.bad()  # no hook, no error, no recording


class TestReportShape:
    def test_render_and_to_dict(self):
        with sanitize() as report:
            lock = threading.Lock()
            with lock:
                pass
        text = report.render()
        assert "Lock sanitizer report" in text
        assert "unguarded writes:    0" in text
        payload = report.to_dict()
        assert payload["violations"] == []
        assert payload["cycles"] == []
        assert payload["locks_observed"] == 1

    def test_mid_window_reads(self):
        with sanitize() as report:
            assert report.violations == []
            assert report.cycles() == []
            with pytest.raises(RuntimeError):
                report.render()


class TestExecuteWiring:
    def test_sanitize_flag_attaches_report(self):
        source = make_source(6, "san-wire")
        records, stats = Execute(
            shape_filter_convert(source), lint=False,
            executor="pipelined", max_workers=2, sanitize=True,
        )
        assert stats.sanitizer is not None
        assert stats.sanitizer.violations == []
        assert stats.sanitizer.cycles() == []
        assert stats.sanitizer.guarded_writes > 0
        assert len(records) == 6

    def test_sanitized_run_is_byte_identical(self):
        source = make_source(6, "san-ident")
        plain, _ = Execute(shape_filter_convert(source), lint=False,
                           executor="pipelined", max_workers=4)
        sanitized, stats = Execute(
            shape_filter_convert(source), lint=False,
            executor="pipelined", max_workers=4, sanitize=True,
        )
        assert [r.to_json() for r in sanitized] == \
            [r.to_json() for r in plain]
        assert stats.sanitizer.ok()

    def test_stats_to_dict_excludes_report(self):
        source = make_source(4, "san-dict")
        _, stats = Execute(shape_filter_convert(source), lint=False,
                           sanitize=True)
        assert "sanitizer" not in stats.to_dict()


class TestSanitizedEquivalence:
    """The executor-equivalence suite under the sanitizer: every worker
    count reports zero violations and a cycle-free lock-order graph."""

    SHAPES = [shape_filter_convert, shape_limit_early, shape_groupby]

    @pytest.mark.parametrize("workers", [1, 4, 8])
    def test_pipelined_clean_at_worker_counts(self, workers):
        source = make_source(8, f"san-eq-{workers}")
        for shape in self.SHAPES:
            baseline, _ = SequentialExecutor().execute(
                self._plan(shape, source)
            )
            with sanitize() as report:
                records, _ = Execute(
                    shape(source), lint=False,
                    executor="pipelined", max_workers=workers,
                )
            assert [r.to_json() for r in records] == \
                [r.to_json() for r in baseline], shape.__name__
            assert report.violations == [], shape.__name__
            assert report.cycles() == [], shape.__name__
            assert report.guarded_writes > 0  # the assertion isn't vacuous

    @pytest.mark.parametrize("shards", [1, 4, 8])
    def test_sharded_clean_at_shard_counts(self, shards):
        source = make_source(8, f"san-shard-{shards}")
        baseline, _ = Execute(shape_filter_convert(source), lint=False)
        with sanitize() as report:
            records, _ = Execute(
                shape_filter_convert(source), lint=False,
                executor="sharded", shards=shards,
            )
        assert [r.to_json() for r in records] == \
            [r.to_json() for r in baseline]
        assert report.violations == []
        assert report.cycles() == []

    def _plan(self, shape, source):
        from repro.optimizer.optimizer import Optimizer
        from repro.optimizer.policies import MaxQuality

        return (
            Optimizer(MaxQuality())
            .optimize(shape(source).logical_plan(), source)
            .chosen.plan
        )
