"""The tracing determinism contract.

Three promises, pinned across executors, worker counts, and batch sizes:

1. **Identical traces.** The pipelined executor's span tree — ids,
   ordering, lanes, start/end times — is byte-identical (via
   ``Trace.signature()``) run to run and across worker counts, despite
   real thread racing.
2. **Zero observer effect.** A traced run returns byte-identical records
   and stats to an untraced run, and adds zero LLM calls.
3. **Reconciliation.** Operator span durations sum to the per-operator
   busy times ``OperatorStats`` reports, within float rounding.
"""

import sys

import pytest

from repro.obs.trace import SpanKind, Tracer

sys.path.insert(0, "tests")
from test_execution_pipeline import (
    chosen_plan,
    make_source,
    run_fingerprint,
    run_plan,
    shape_filter_convert,
)
from repro.physical.context import ExecutionContext
from repro.execution.executors import ParallelExecutor, SequentialExecutor
from repro.execution.pipeline import PipelinedExecutor


def run_traced(plan, kind, workers=1, batch=1):
    context = ExecutionContext(max_workers=max(workers, 1))
    context.tracer = Tracer(clock=context.clock)
    if kind == "sequential":
        executor = SequentialExecutor(context)
    elif kind == "parallel":
        executor = ParallelExecutor(context, max_workers=workers)
    else:
        executor = PipelinedExecutor(
            context, max_workers=workers, batch_size=batch)
    records, stats = executor.execute(plan)
    return records, stats, context.tracer.finish()


@pytest.fixture(scope="module")
def plan():
    source = make_source(8, "obs-det")
    return chosen_plan(shape_filter_convert(source), source)


class TestTraceIdentity:
    def test_pipelined_signature_identical_across_runs(self, plan):
        signatures = {
            run_traced(plan, "pipelined", workers=4)[2].signature()
            for _ in range(3)
        }
        assert len(signatures) == 1

    @pytest.mark.parametrize("workers", [1, 4, 8])
    def test_pipelined_signature_identical_across_worker_counts(
            self, plan, workers):
        # Lane numbers differ by worker count, but the per-operator span
        # durations must not: project out (name, op, duration) multisets.
        def op_durations(trace):
            return sorted(
                (s.name, str(s.attributes.get("op")),
                 round(s.duration, 9))
                for s in trace.spans if s.kind == SpanKind.OPERATOR
            )

        base = op_durations(run_traced(plan, "pipelined", workers=1)[2])
        assert op_durations(
            run_traced(plan, "pipelined", workers=workers)[2]) == base

    def test_batched_signature_identical_across_runs(self, plan):
        batched = plan.with_batch_size(2)
        signatures = {
            run_traced(batched, "pipelined", workers=4, batch=2)[2]
            .signature()
            for _ in range(3)
        }
        assert len(signatures) == 1

    def test_sequential_and_parallel_signatures_stable(self, plan):
        for kind in ("sequential", "parallel"):
            first = run_traced(plan, kind, workers=4)[2].signature()
            second = run_traced(plan, kind, workers=4)[2].signature()
            assert first == second

    def test_span_ids_canonical_depth_first(self, plan):
        trace = run_traced(plan, "pipelined", workers=4)[2]
        assert [s.span_id for s in trace.spans] == list(
            range(1, len(trace) + 1))
        seen = {0}
        for span in trace.spans:
            assert span.parent_id in seen  # parents precede children
            seen.add(span.span_id)

    def test_bundles_ordered_by_seq(self, plan):
        trace = run_traced(plan, "pipelined", workers=4)[2]
        for stage in trace.find("pipeline.stage"):
            seqs = [c.attributes["seq"] for c in stage.children
                    if c.name == "pipeline.bundle"]
            assert seqs == sorted(seqs)


class TestZeroObserverEffect:
    @pytest.mark.parametrize("kind,workers,batch", [
        ("sequential", 1, 1),
        ("parallel", 4, 1),
        ("pipelined", 4, 1),
        ("pipelined", 4, 2),
    ])
    def test_traced_run_matches_untraced(self, plan, kind, workers, batch):
        run = plan.with_batch_size(batch) if batch > 1 else plan
        records_u, stats_u, context = run_plan(run, kind, workers=workers,
                                               batch=batch)
        records_t, stats_t, trace = run_traced(run, kind, workers=workers,
                                               batch=batch)
        assert run_fingerprint(records_t, stats_t) == run_fingerprint(
            records_u, stats_u)
        assert len(trace) > 0

    def test_tracing_adds_no_llm_calls(self, plan):
        _, stats_u, _ = run_plan(plan, "pipelined", workers=4)
        _, stats_t, trace = run_traced(plan, "pipelined", workers=4)
        untraced = sum(op.llm_calls for op in stats_u.operator_stats)
        traced = sum(op.llm_calls for op in stats_t.operator_stats)
        assert traced == untraced
        assert len(trace.find("llm.call")) == traced


class TestReconciliation:
    @pytest.mark.parametrize("kind,workers", [
        ("sequential", 1),
        ("parallel", 4),
        ("pipelined", 4),
    ])
    def test_span_durations_sum_to_operator_stats(self, plan, kind,
                                                  workers):
        _, stats, trace = run_traced(plan, kind, workers=workers)
        by_op = {}
        for span in trace.spans:
            if span.kind != SpanKind.OPERATOR:
                continue
            label = span.attributes.get("op", span.name)
            by_op[label] = by_op.get(label, 0.0) + span.duration
        for op in stats.operator_stats:
            assert by_op.get(op.op_label, 0.0) == pytest.approx(
                op.time_seconds, abs=1e-6), op.op_label

    def test_llm_call_spans_cover_ledger(self, plan):
        _, _, trace = run_traced(plan, "pipelined", workers=4)
        for span in trace.find("llm.call"):
            assert span.attributes["model"]
            assert span.attributes["operation"]
            assert span.duration > 0.0

    def test_plan_run_span_matches_elapsed(self, plan):
        _, stats, trace = run_traced(plan, "pipelined", workers=4)
        root = trace.first("plan.run")
        assert root is not None
        assert root.duration == pytest.approx(
            stats.total_time_seconds, abs=1e-6)
