"""Virtual clock: lanes, advancing, synchronization."""

import pytest

from repro.llm.clock import VirtualClock


class TestSingleLane:
    def test_starts_at_zero(self):
        clock = VirtualClock()
        assert clock.now == 0.0
        assert clock.elapsed == 0.0

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(1.5)
        clock.advance(2.5)
        assert clock.now == pytest.approx(4.0)
        assert clock.elapsed == pytest.approx(4.0)

    def test_negative_advance_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_reset(self):
        clock = VirtualClock()
        clock.advance(3.0)
        clock.reset()
        assert clock.elapsed == 0.0


class TestMultiLane:
    def test_lanes_validated(self):
        with pytest.raises(ValueError):
            VirtualClock(lanes=0)

    def test_elapsed_is_makespan(self):
        clock = VirtualClock(lanes=2)
        clock.use_lane(0)
        clock.advance(10.0)
        clock.use_lane(1)
        clock.advance(3.0)
        assert clock.elapsed == pytest.approx(10.0)
        assert clock.total_busy == pytest.approx(13.0)

    def test_pick_least_busy_lane_balances(self):
        clock = VirtualClock(lanes=3)
        for duration in [5.0, 5.0, 5.0, 5.0, 5.0, 5.0]:
            clock.pick_least_busy_lane()
            clock.advance(duration)
        # 6 equal tasks over 3 workers -> makespan 2 tasks each.
        assert clock.elapsed == pytest.approx(10.0)

    def test_parallel_speedup_vs_sequential(self):
        sequential = VirtualClock(lanes=1)
        parallel = VirtualClock(lanes=4)
        for _ in range(8):
            sequential.advance(1.0)
            parallel.pick_least_busy_lane()
            parallel.advance(1.0)
        assert sequential.elapsed == pytest.approx(8.0)
        assert parallel.elapsed == pytest.approx(2.0)

    def test_synchronize_sets_all_lanes_to_makespan(self):
        clock = VirtualClock(lanes=2)
        clock.use_lane(0)
        clock.advance(7.0)
        makespan = clock.synchronize()
        assert makespan == pytest.approx(7.0)
        clock.use_lane(1)
        assert clock.now == pytest.approx(7.0)
        assert clock.total_busy == pytest.approx(14.0)

    def test_use_lane_out_of_range(self):
        clock = VirtualClock(lanes=2)
        with pytest.raises(IndexError):
            clock.use_lane(5)
