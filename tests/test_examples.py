"""Smoke tests: every shipped example runs to completion."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = [
    "quickstart.py",
    "scientific_discovery.py",
    "chat_scientific_discovery.py",
    "legal_discovery.py",
    "real_estate_search.py",
    "policy_tradeoffs.py",
    "dataset_catalog_join.py",
    "advanced_features.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys, tmp_path, monkeypatch):
    # Isolate the demo corpora per test session (examples default to the
    # system temp dir; point them somewhere fresh but shared).
    monkeypatch.setenv("TMPDIR", str(tmp_path))
    import tempfile

    monkeypatch.setattr(tempfile, "gettempdir", lambda: str(tmp_path))

    path = EXAMPLES_DIR / script
    assert path.exists(), f"example {script} is missing"
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_examples_list_is_complete():
    shipped = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert shipped == set(EXAMPLES)
