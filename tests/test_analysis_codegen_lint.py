"""Codegen lint (CG3xx): generated programs and notebook structure."""

import json

import pytest

from repro.analysis import (
    lint_notebook,
    lint_program,
    lint_workspace_steps,
)
from repro.chat.codegen import CodegenError, generate_program
from repro.chat.notebook import Notebook
from repro.chat.workspace import PipelineWorkspace


def build_workspace():
    ws = PipelineWorkspace()
    ws.log_step("load", source="demo")
    ws.log_step("filter", predicate="about colorectal cancer")
    ws.log_step(
        "schema",
        name="ClinicalData",
        description="Datasets from papers.",
        field_names=["name", "url"],
        field_descriptions=["the name", "the url"],
    )
    ws.log_step("convert", schema="ClinicalData", cardinality="one_to_many")
    ws.log_step("policy", target="cost")
    ws.log_step("execute")
    return ws


class TestProgramLint:
    def test_generated_program_is_clean(self):
        program = generate_program(build_workspace())
        assert lint_program(program).codes() == []

    def test_cg301_syntax_error(self):
        result = lint_program("import repro as pz\nds = pz.Dataset(\n")
        assert result.codes() == ["CG301"]

    def test_cg302_unknown_attribute(self):
        result = lint_program(
            "import repro as pz\nds = pz.Datasets('x')\n"
        )
        assert "CG302" in result.codes()
        [diagnostic] = result.errors
        assert "pz.Dataset" in diagnostic.hint

    def test_cg302_unknown_cardinality_member(self):
        result = lint_program(
            "import repro as pz\nc = pz.Cardinality.MANY_TO_MANY\n"
        )
        assert "CG302" in result.codes()

    def test_cg302_unknown_dataset_method(self):
        result = lint_program(
            "import repro as pz\n"
            "ds = pz.Dataset('x')\n"
            "ds = ds.fliter('typo')\n"
        )
        assert "CG302" in result.codes()

    def test_cg303_bad_argument_shape(self):
        result = lint_program(
            "import repro as pz\n"
            "ds = pz.Dataset('x')\n"
            "ds = ds.filter()\n"
        )
        assert "CG303" in result.codes()

    def test_cg303_bad_keyword(self):
        result = lint_program(
            "import repro as pz\n"
            "ds = pz.Dataset('x')\n"
            "ds = ds.filter('p', depends='title')\n"
        )
        assert "CG303" in result.codes()

    def test_cg304_undefined_name(self):
        result = lint_program(
            "import repro as pz\nprint(never_defined)\n"
        )
        assert result.codes() == ["CG304"]

    def test_names_defined_by_assignment_are_known(self):
        result = lint_program(
            "import repro as pz\nx = 1\nprint(x)\n"
        )
        assert result.codes() == []

    def test_function_bodies_are_out_of_scope(self):
        result = lint_program(
            "import repro as pz\n"
            "def main():\n"
            "    return locally_scoped\n"
        )
        assert "CG304" not in result.codes()

    def test_non_repro_imports_are_ignored(self):
        result = lint_program("import json\nprint(json.dumps({}))\n")
        assert result.codes() == []


class TestWorkspaceSteps:
    def test_cg305_unknown_policy_target(self):
        ws = PipelineWorkspace()
        ws.log_step("policy", target="vibes")
        result = lint_workspace_steps(ws.steps)
        assert result.codes() == ["CG305"]

    def test_cg305_unknown_cardinality(self):
        ws = PipelineWorkspace()
        ws.log_step("convert", schema="S", cardinality="many_to_many")
        assert lint_workspace_steps(ws.steps).codes() == ["CG305"]

    def test_valid_steps_are_clean(self):
        assert lint_workspace_steps(build_workspace().steps).codes() == []


class TestCodegenStrictness:
    def test_unknown_policy_target_raises(self):
        ws = PipelineWorkspace()
        ws.log_step("load", source="demo")
        ws.log_step("policy", target="vibes")
        with pytest.raises(CodegenError, match="vibes"):
            generate_program(ws)

    def test_unknown_cardinality_raises(self):
        ws = PipelineWorkspace()
        ws.log_step("load", source="demo")
        ws.log_step("convert", schema="S", cardinality="many_to_many")
        with pytest.raises(CodegenError, match="many_to_many"):
            generate_program(ws)

    def test_error_lists_valid_keys(self):
        ws = PipelineWorkspace()
        ws.log_step("load", source="demo")
        ws.log_step("policy", target="vibes")
        with pytest.raises(CodegenError, match="quality"):
            generate_program(ws)


def notebook_dict(**overrides):
    notebook = Notebook(title="T")
    notebook.add_markdown("**User:** hello")
    notebook.add_code("print('kernel cell, not generated')", outputs=["ok"])
    payload = notebook.to_ipynb()
    payload.update(overrides)
    return payload


class TestNotebookLint:
    def test_valid_export_is_clean(self):
        assert lint_notebook(notebook_dict()).codes() == []

    def test_cg310_wrong_nbformat(self):
        assert "CG310" in lint_notebook(
            notebook_dict(nbformat=3)
        ).codes()

    def test_cg310_missing_kernelspec(self):
        assert "CG310" in lint_notebook(
            notebook_dict(metadata={})
        ).codes()

    def test_cg310_invalid_json_text(self):
        assert "CG310" in lint_notebook("{not json").codes()

    def test_cg311_unknown_cell_type(self):
        payload = notebook_dict()
        payload["cells"].append({"cell_type": "raw", "source": "x"})
        assert "CG311" in lint_notebook(payload).codes()

    def test_cg311_code_cell_missing_outputs(self):
        payload = notebook_dict()
        payload["cells"].append({"cell_type": "code", "source": "x = 1"})
        assert "CG311" in lint_notebook(payload).codes()

    def test_cg312_non_monotonic_history(self):
        payload = notebook_dict()
        first = "import repro as pz\n\na = 1\nb = 2\n"
        second = "import repro as pz\n\nc = 3\n"  # does not extend first
        for source in (first, second):
            payload["cells"].append({
                "cell_type": "code",
                "source": source,
                "outputs": [],
                "execution_count": None,
                "metadata": {},
            })
        result = lint_notebook(payload)
        assert "CG312" in result.codes()
        assert result.ok  # warning only

    def test_monotonic_history_is_clean(self):
        payload = notebook_dict()
        first = "import repro as pz\n\na = 1\n"
        second = "import repro as pz\n\na = 1\nb = 2\n"
        for source in (first, second):
            payload["cells"].append({
                "cell_type": "code",
                "source": source,
                "outputs": [],
                "execution_count": None,
                "metadata": {},
            })
        assert "CG312" not in lint_notebook(payload).codes()

    def test_lint_notebook_from_path(self, tmp_path):
        path = tmp_path / "session.ipynb"
        path.write_text(json.dumps(notebook_dict()))
        assert lint_notebook(path).codes() == []
