"""The Palimpzest tool suite bound to a workspace."""

import pytest

from repro.agent.tools import ToolError
from repro.chat.tools_pz import build_pz_tools
from repro.chat.workspace import PipelineWorkspace


@pytest.fixture()
def workspace():
    return PipelineWorkspace()


@pytest.fixture()
def tools(workspace):
    return build_pz_tools(workspace)


def invoke(tools, name, **arguments):
    return tools.get(name).invoke(arguments)


class TestLoadDataset:
    def test_load_registered_id(self, tools, workspace, sigmod_demo):
        message = invoke(tools, "load_dataset", source="sigmod-demo")
        assert "11 records" in message
        assert "PDFFile" in message
        assert workspace.current is not None
        assert workspace.steps_of_kind("load")

    def test_load_folder_path(self, tools, workspace, tmp_path):
        (tmp_path / "a.txt").write_text("hello")
        message = invoke(tools, "load_dataset", source=str(tmp_path))
        assert "1 records" in message

    def test_unknown_source_raises(self, tools):
        from repro.core.errors import DatasetError

        with pytest.raises(DatasetError):
            invoke(tools, "load_dataset", source="missing-dataset-xyz")


class TestCreateSchema:
    def test_creates_and_registers(self, tools, workspace):
        message = invoke(
            tools, "create_schema",
            schema_name="Author",
            schema_description="Paper author",
            field_names=["name", "email"],
            field_descriptions=["the name", "the email"],
        )
        assert "Author" in message
        schema = workspace.get_schema("Author")
        assert schema.field_names() == ["name", "email"]

    def test_invalid_field_name_propagates(self, tools):
        from repro.core.errors import SchemaError

        with pytest.raises(SchemaError):
            invoke(
                tools, "create_schema",
                schema_name="Bad",
                schema_description="d",
                field_names=["has space"],
                field_descriptions=["x"],
            )

    def test_unknown_schema_lookup_raises(self, workspace):
        with pytest.raises(KeyError, match="no schema named"):
            workspace.get_schema("Missing")


class TestPipelineBuilding:
    def test_filter_requires_loaded_dataset(self, tools):
        with pytest.raises(ToolError, match="load_dataset first"):
            invoke(tools, "filter_dataset", predicate="about x")

    def test_filter_extends_pipeline(self, tools, workspace, sigmod_demo):
        invoke(tools, "load_dataset", source="sigmod-demo")
        invoke(tools, "filter_dataset", predicate="about colorectal cancer")
        plan = workspace.current.logical_plan()
        assert len(plan) == 2

    def test_convert_uses_created_schema(self, tools, workspace, sigmod_demo):
        invoke(tools, "load_dataset", source="sigmod-demo")
        invoke(
            tools, "create_schema",
            schema_name="Clinical",
            schema_description="d",
            field_names=["name"],
            field_descriptions=["n"],
        )
        invoke(
            tools, "convert_dataset",
            schema_name="Clinical", cardinality="one_to_many",
        )
        assert workspace.current.schema.schema_name() == "Clinical"

    def test_convert_unknown_schema(self, tools, workspace, sigmod_demo):
        invoke(tools, "load_dataset", source="sigmod-demo")
        with pytest.raises(KeyError):
            invoke(tools, "convert_dataset", schema_name="Nope")

    def test_set_policy(self, tools, workspace):
        invoke(tools, "set_optimization_target", target="cost")
        assert workspace.policy.name == "min-cost"

    def test_set_invalid_policy(self, tools):
        with pytest.raises(ValueError):
            invoke(tools, "set_optimization_target", target="vibes")

    def test_describe_pipeline_empty(self, tools):
        assert "no pipeline" in invoke(tools, "describe_pipeline")

    def test_reset(self, tools, workspace, sigmod_demo):
        invoke(tools, "load_dataset", source="sigmod-demo")
        invoke(tools, "reset_pipeline")
        assert workspace.current is None
        assert workspace.steps == []


class TestExecution:
    def test_execute_requires_dataset(self, tools):
        with pytest.raises(ToolError):
            invoke(tools, "execute_pipeline")

    def test_stats_require_execution(self, tools):
        with pytest.raises(ToolError, match="executed"):
            invoke(tools, "get_execution_stats")

    def test_show_records_require_execution(self, tools):
        with pytest.raises(ToolError):
            invoke(tools, "show_records")

    def test_full_cycle(self, tools, workspace, sigmod_demo):
        invoke(tools, "load_dataset", source="sigmod-demo")
        invoke(tools, "filter_dataset", predicate="about colorectal cancer")
        message = invoke(tools, "execute_pipeline")
        assert "records produced" in message
        assert workspace.last_records is not None
        stats_text = invoke(tools, "get_execution_stats")
        assert "total cost" in stats_text
        listing = invoke(tools, "show_records", limit=3)
        assert listing.startswith("-")

    def test_show_records_limit(self, tools, workspace, sigmod_demo):
        invoke(tools, "load_dataset", source="sigmod-demo")
        invoke(tools, "execute_pipeline")
        listing = invoke(tools, "show_records", limit=2)
        assert "more" in listing


class TestUtilities:
    def test_list_datasets_mentions_registered(self, tools, sigmod_demo):
        assert "sigmod-demo" in invoke(tools, "list_datasets")

    def test_generate_code_empty(self, tools):
        assert "No pipeline" in invoke(tools, "generate_code")
