"""File parsing and extension-based schema dispatch."""

import pytest

from repro.core.builtin_schemas import (
    CSVFile,
    Email,
    File,
    HTMLFile,
    PDFFile,
    TextFile,
)
from repro.core.fakepdf import write_fake_pdf
from repro.core.files import parse_file, schema_for_path


class TestSchemaDispatch:
    @pytest.mark.parametrize("name,expected", [
        ("a.txt", TextFile),
        ("a.md", TextFile),
        ("a.pdf", PDFFile),
        ("a.html", HTMLFile),
        ("a.csv", CSVFile),
        ("a.eml", Email),
        ("a.unknown", File),
        ("A.PDF", PDFFile),  # case-insensitive
    ])
    def test_extension_mapping(self, name, expected, tmp_path):
        assert schema_for_path(tmp_path / name) is expected


class TestParseText(object):
    def test_text_file(self, tmp_path):
        path = tmp_path / "doc.txt"
        path.write_text("plain body")
        record = parse_file(path)
        assert record.schema is TextFile
        assert record.filename == "doc.txt"
        assert record.text_contents == "plain body"
        assert record.contents == b"plain body"

    def test_latin1_fallback(self, tmp_path):
        path = tmp_path / "doc.txt"
        path.write_bytes("café".encode("latin-1"))
        record = parse_file(path)
        assert "caf" in record.text_contents


class TestParsePDF:
    def test_fake_pdf(self, tmp_path):
        path = tmp_path / "paper.pdf"
        path.write_bytes(write_fake_pdf("The study text. " * 100))
        record = parse_file(path)
        assert record.schema is PDFFile
        assert "study text" in record.text_contents
        assert record.page_count >= 1

    def test_real_pdf_salvage(self, tmp_path):
        path = tmp_path / "real.pdf"
        path.write_bytes(
            b"%PDF-1.4\n1 0 obj\n<</Type /Page>>\n"
            b"stream\nSome visible sentence here\nendstream\n%%EOF"
        )
        record = parse_file(path)
        assert "Some visible sentence here" in record.text_contents


class TestParseHTML:
    def test_strips_tags_and_extracts_title(self, tmp_path):
        path = tmp_path / "page.html"
        path.write_text(
            "<html><head><title>My Page</title></head>"
            "<body><p>Hello <b>world</b></p></body></html>"
        )
        record = parse_file(path)
        assert record.title == "My Page"
        assert "Hello" in record.text_contents
        assert "<p>" not in record.text_contents


class TestParseCSV:
    def test_header_and_rows(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("a,b\n1,2\n3,4\n")
        record = parse_file(path)
        assert record.header == ["a", "b"]
        assert record.rows == [["1", "2"], ["3", "4"]]

    def test_empty_csv(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        record = parse_file(path)
        assert record.header == []
        assert record.rows == []


class TestParseEmail:
    def test_headers_and_body(self, tmp_path):
        path = tmp_path / "mail.eml"
        path.write_text(
            "From: a@x.com\nTo: b@y.com\nSubject: Hi\nDate: Jan 1, 2024\n"
            "\nThe body text.\n"
        )
        record = parse_file(path)
        assert record.sender == "a@x.com"
        assert record.recipient == "b@y.com"
        assert record.subject == "Hi"
        assert record.body == "The body text."


class TestOverrides:
    def test_schema_override(self, tmp_path):
        path = tmp_path / "notes.unknownext"
        path.write_text("text body")
        record = parse_file(path, schema=TextFile)
        assert record.schema is TextFile
        assert record.text_contents == "text body"

    def test_source_id_stamped(self, tmp_path):
        path = tmp_path / "a.txt"
        path.write_text("x")
        record = parse_file(path, source_id="demo")
        assert record.source_id == "demo"
