"""Run the doctests embedded in public docstrings."""

import doctest

import pytest

import repro.agent.templating
import repro.agent.tools
import repro.core.schemas
import repro.llm.tokenizer

MODULES = [
    repro.llm.tokenizer,
    repro.core.schemas,
    repro.agent.templating,
    repro.agent.tools,
]


@pytest.mark.parametrize(
    "module", MODULES, ids=[m.__name__ for m in MODULES]
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, (
        f"{results.failed} doctest failures in {module.__name__}"
    )
    assert results.attempted > 0, (
        f"{module.__name__} was expected to carry doctests"
    )
