"""OB401: span naming/kind/attribute conventions over real traces."""

import sys

import pytest

from repro.analysis import LintConfig, lint_trace
from repro.execution.execute import Execute
from repro.obs.trace import Span, SpanKind, Trace

sys.path.insert(0, "tests")
from test_execution_pipeline import make_source, shape_filter_convert


def bad_trace():
    root = Span("BadName", "mystery", 0.0, 1.0)  # bad name AND bad kind
    root.children.append(
        Span("op.process", SpanKind.OPERATOR, 0.0, 1.0))  # missing 'op'
    root.children.append(
        Span("llm.call", SpanKind.LLM, 0.0, 1.0,
             attributes={"model": "gpt-4o"}))  # missing 'operation'
    return Trace([root])


class TestGolden:
    def test_real_traces_are_clean(self):
        source = make_source(6, "obslint-clean")
        for kwargs in ({}, {"executor": "pipelined", "max_workers": 2}):
            _, stats = Execute(shape_filter_convert(source), lint=False,
                               trace=True, **kwargs)
            result = lint_trace(stats.trace)
            assert result.diagnostics == [], [
                str(d) for d in result.diagnostics]

    def test_bad_spans_flagged(self):
        result = lint_trace(bad_trace())
        messages = [d.message for d in result.diagnostics]
        assert len(result.diagnostics) == 4
        assert all(d.code == "OB401" for d in result.diagnostics)
        assert any("not a dotted lowercase" in m for m in messages)
        assert any("not in the SpanKind" in m for m in messages)
        assert any("'op'" in m for m in messages)
        assert any("'operation'" in m for m in messages)

    def test_locations_name_the_span(self):
        result = lint_trace(bad_trace())
        assert any("(BadName)" in d.location for d in result.diagnostics)

    def test_disable_by_family(self):
        config = LintConfig(disabled=("OB",))
        assert lint_trace(bad_trace(), config=config).diagnostics == []

    def test_warnings_do_not_block(self):
        # OB401 is warning severity: no error-level findings.
        result = lint_trace(bad_trace())
        assert result.errors == []
        assert len(result.warnings) == 4
