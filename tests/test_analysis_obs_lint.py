"""OB401/OB402: span and provenance conventions over real artifacts."""

import sys

import pytest

from repro.analysis import LintConfig, lint_provenance, lint_trace
from repro.execution.execute import Execute
from repro.obs.trace import Span, SpanKind, Trace

sys.path.insert(0, "tests")
from test_execution_pipeline import make_source, shape_filter_convert


def bad_trace():
    root = Span("BadName", "mystery", 0.0, 1.0)  # bad name AND bad kind
    root.children.append(
        Span("op.process", SpanKind.OPERATOR, 0.0, 1.0))  # missing 'op'
    root.children.append(
        Span("llm.call", SpanKind.LLM, 0.0, 1.0,
             attributes={"model": "gpt-4o"}))  # missing 'operation'
    return Trace([root])


class TestGolden:
    def test_real_traces_are_clean(self):
        source = make_source(6, "obslint-clean")
        for kwargs in ({}, {"executor": "pipelined", "max_workers": 2}):
            _, stats = Execute(shape_filter_convert(source), lint=False,
                               trace=True, **kwargs)
            result = lint_trace(stats.trace)
            assert result.diagnostics == [], [
                str(d) for d in result.diagnostics]

    def test_bad_spans_flagged(self):
        result = lint_trace(bad_trace())
        messages = [d.message for d in result.diagnostics]
        assert len(result.diagnostics) == 4
        assert all(d.code == "OB401" for d in result.diagnostics)
        assert any("not a dotted lowercase" in m for m in messages)
        assert any("not in the SpanKind" in m for m in messages)
        assert any("'op'" in m for m in messages)
        assert any("'operation'" in m for m in messages)

    def test_locations_name_the_span(self):
        result = lint_trace(bad_trace())
        assert any("(BadName)" in d.location for d in result.diagnostics)

    def test_disable_by_family(self):
        config = LintConfig(disabled=("OB",))
        assert lint_trace(bad_trace(), config=config).diagnostics == []

    def test_warnings_do_not_block(self):
        # OB401 is warning severity: no error-level findings.
        result = lint_trace(bad_trace())
        assert result.errors == []
        assert len(result.warnings) == 4


def bad_graph():
    """One violation of every OB402 convention."""
    return {
        "ops": ["Scan", "Filter"],
        "nodes": [
            {"id": 1, "source_id": "s", "schema": "TextFile",
             "origin": "scan", "preview": "{}", "fp": "0" * 16},
            {"id": 2, "source_id": "s", "schema": "TextFile",
             "origin": "derived", "preview": "{}", "fp": "1" * 16},
        ],
        "events": [
            # unknown drop reason + wrong arity (2 parents)
            {"op": 1, "op_label": "Filter", "kind": "drop",
             "parents": [1, 2], "children": [], "reason": "vanished",
             "attrs": {}, "llm": None},
            # dead node reference + childless emit
            {"op": 1, "op_label": "Filter", "kind": "emit",
             "parents": [99], "children": [], "reason": None,
             "attrs": {"verdict": True}, "llm": None},
            # pass-through emit with no evidence
            {"op": 1, "op_label": "Filter", "kind": "emit",
             "parents": [1], "children": [1], "reason": None,
             "attrs": {}, "llm": None},
            # parentless emit that is not a folded=0 aggregate
            {"op": 1, "op_label": "Filter", "kind": "emit",
             "parents": [], "children": [2], "reason": None,
             "attrs": {}, "llm": None},
            # unknown event kind
            {"op": 0, "op_label": "Scan", "kind": "mutate",
             "parents": [1], "children": [1], "reason": None,
             "attrs": {}, "llm": None},
        ],
        "output_ids": [2, 77],  # 77 is not a node
    }


class TestProvenanceGolden:
    def test_real_graphs_are_clean(self):
        source = make_source(6, "obslint-prov-clean")
        for kwargs in ({}, {"executor": "pipelined", "max_workers": 2}):
            _, stats = Execute(shape_filter_convert(source), lint=False,
                               provenance=True, **kwargs)
            result = lint_provenance(stats.provenance)
            assert result.diagnostics == [], [
                str(d) for d in result.diagnostics]

    def test_accepts_graph_object_and_payload(self):
        source = make_source(4, "obslint-prov-payload")
        _, stats = Execute(shape_filter_convert(source), lint=False,
                           provenance=True)
        from_object = lint_provenance(stats.provenance)
        from_payload = lint_provenance(stats.provenance.to_dict())
        assert from_object.diagnostics == from_payload.diagnostics == []

    def test_bad_events_flagged(self):
        result = lint_provenance(bad_graph())
        messages = [d.message for d in result.diagnostics]
        assert all(d.code == "OB402" for d in result.diagnostics)
        assert any("not in the DropReason enum" in m for m in messages)
        assert any("exactly one record" in m for m in messages)
        assert any("references node 99" in m for m in messages)
        assert any("at least one child" in m for m in messages)
        assert any("pass-through emit" in m for m in messages)
        assert any("at least one parent" in m for m in messages)
        assert any("unknown event kind" in m for m in messages)
        assert any("output id 77" in m for m in messages)

    def test_folded_zero_aggregate_is_exempt(self):
        graph = bad_graph()
        graph["events"] = [
            {"op": 1, "op_label": "Aggregate", "kind": "emit",
             "parents": [], "children": [2], "reason": None,
             "attrs": {"folded": 0}, "llm": None},
        ]
        graph["output_ids"] = [2]
        result = lint_provenance(graph)
        assert result.diagnostics == []

    def test_locations_name_the_op(self):
        result = lint_provenance(bad_graph())
        assert any("(Filter)" in d.location for d in result.diagnostics)

    def test_warnings_do_not_block(self):
        result = lint_provenance(bad_graph())
        assert result.errors == []
        assert result.warnings


# -- OB403: the wall-clock boundary -------------------------------------


class TestWallclockBoundary:
    def _lint(self, source, filename="src/repro/execution/fake.py"):
        from repro.analysis import lint_source_wallclock

        return lint_source_wallclock(source, filename=filename)

    def test_direct_reads_flagged(self):
        source = (
            "import time\n"
            "from datetime import datetime\n"
            "started = time.perf_counter()\n"
            "stamp = time.time()\n"
            "when = datetime.now()\n"
        )
        result = self._lint(source)
        assert len(result.diagnostics) == 3
        assert all(d.code == "OB403" for d in result.diagnostics)
        assert all(d.severity.value == "error" for d in result.diagnostics)

    def test_import_alias_does_not_dodge(self):
        source = "import time as _t\nx = _t.monotonic()\n"
        result = self._lint(source)
        assert len(result.diagnostics) == 1
        assert "time.monotonic()" in result.diagnostics[0].message

    def test_dotted_datetime_receivers_flagged(self):
        source = (
            "import datetime\n"
            "now = datetime.datetime.now()\n"
            "today = datetime.date.today()\n"
            "utc = datetime.datetime.utcnow()\n"
        )
        result = self._lint(source)
        assert len(result.diagnostics) == 3
        assert "datetime.now()" in result.diagnostics[0].message
        assert "date.today()" in result.diagnostics[1].message

    def test_dotted_receiver_module_alias_does_not_dodge(self):
        source = "import datetime as dt\nx = dt.datetime.now()\n"
        result = self._lint(source)
        assert len(result.diagnostics) == 1

    def test_dotted_non_clock_attributes_clean(self):
        source = (
            "import datetime\n"
            "delta = datetime.timedelta(days=1)\n"
            "fixed = datetime.datetime(2020, 1, 1)\n"
            "parsed = datetime.datetime.fromisoformat('2020-01-01')\n"
        )
        assert self._lint(source).diagnostics == []

    def test_from_import_bare_name_flagged(self):
        source = ("from time import perf_counter\n"
                  "started = perf_counter()\n")
        result = self._lint(source)
        assert len(result.diagnostics) == 1

    def test_pragma_waives_a_read(self):
        source = (
            "import time\n"
            "x = time.time()  # wallclock: ok(client-side poll cadence)\n"
        )
        assert self._lint(source).diagnostics == []

    def test_telemetry_module_is_exempt(self):
        source = "import time\nx = time.time()\n"
        result = self._lint(source,
                            filename="src/repro/obs/telemetry.py")
        assert result.diagnostics == []

    def test_non_repro_paths_out_of_scope(self):
        source = "import time\nx = time.time()\n"
        for filename in ("<program>", "examples/demo.py",
                         "/home/user/script.py"):
            assert self._lint(source, filename=filename).diagnostics == []

    def test_telemetry_helpers_are_clean(self):
        source = (
            "from repro.obs.telemetry import wall_now, wall_perf\n"
            "started = wall_perf()\n"
            "stamp = wall_now()\n"
        )
        assert self._lint(source).diagnostics == []

    def test_lint_program_runs_it_on_repro_paths(self):
        from repro.analysis import lint_program

        source = "import time\nx = time.time()\n"
        result = lint_program(source,
                              filename="src/repro/execution/fake.py")
        assert any(d.code == "OB403" for d in result.diagnostics)

    def test_engine_source_sweep_is_clean(self):
        from pathlib import Path

        from repro.analysis import lint_source_wallclock

        src = Path(__file__).resolve().parents[1] / "src" / "repro"
        for path in sorted(src.rglob("*.py")):
            result = lint_source_wallclock(path.read_text(),
                                           filename=str(path))
            assert result.diagnostics == [], (
                f"{path}: {[str(d) for d in result.diagnostics]}")
