"""The wall-clock operational telemetry layer (`repro.obs.telemetry`).

Everything here drives the layer with fake clocks so the tests are
deterministic even though the production layer is wall-clock by design:
log rotation, correlation binding across threads, sliding-window
histograms, the Prometheus exposition, SLO evaluation per rule kind,
and the `repro top` dashboard renderer.
"""

import json
import threading

import pytest

from repro.obs.telemetry import (
    DEFAULT_SLO_RULES,
    NULL_TELEMETRY,
    NullTelemetry,
    OpsMetrics,
    OpsWindowHistogram,
    SloEvaluator,
    SloRule,
    Telemetry,
    TelemetryLog,
    bind_context,
    current_context,
    render_dashboard,
    stack_digest,
)


class FakeClock:
    """A settable wall clock for deterministic telemetry tests."""

    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# -- correlation context ------------------------------------------------


class TestBindContext:
    def test_bind_and_restore(self):
        assert current_context() == {}
        with bind_context(request_id="req-1", tenant="acme"):
            assert current_context() == {
                "request_id": "req-1", "tenant": "acme"}
        assert current_context() == {}

    def test_nested_binds_merge_inner_wins(self):
        with bind_context(request_id="req-1", tenant="acme"):
            with bind_context(tenant="globex", turn="t-1"):
                assert current_context() == {
                    "request_id": "req-1", "tenant": "globex",
                    "turn": "t-1"}
            assert current_context()["tenant"] == "acme"

    def test_none_values_are_dropped(self):
        with bind_context(request_id="req-1", tenant=None):
            assert "tenant" not in current_context()

    def test_context_is_thread_local(self):
        seen = {}

        def worker():
            seen["fields"] = current_context()

        with bind_context(request_id="req-1"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["fields"] == {}  # not inherited implicitly

    def test_restores_previous_on_exception(self):
        with pytest.raises(RuntimeError):
            with bind_context(request_id="req-1"):
                raise RuntimeError("boom")
        assert current_context() == {}


class TestStackDigest:
    def test_same_shape_same_digest(self):
        def boom():
            raise ValueError("x")

        digests = set()
        for _ in range(2):
            try:
                boom()
            except ValueError as exc:
                digests.add(stack_digest(exc))
        assert len(digests) == 1
        digest = digests.pop()
        assert len(digest) == 12 and all(
            c in "0123456789abcdef" for c in digest)


# -- the JSONL log ------------------------------------------------------


class TestTelemetryLog:
    def test_lines_carry_context_and_fields(self, tmp_path):
        clock = FakeClock()
        log = TelemetryLog(tmp_path, clock=clock)
        with bind_context(request_id="req-9", tenant="acme"):
            log.log("turn_start", message_chars=42)
        log.close()
        events = log.read_events()
        assert len(events) == 1
        assert events[0]["event"] == "turn_start"
        assert events[0]["request_id"] == "req-9"
        assert events[0]["tenant"] == "acme"
        assert events[0]["message_chars"] == 42
        assert events[0]["ts"] == 1000.0

    def test_rotation_and_pruning(self, tmp_path):
        # max_bytes floors at 1024; each line below is ~120 bytes, so
        # ~9 lines per file.  60 lines must roll several times and prune
        # down to keep_files=2.
        log = TelemetryLog(tmp_path, max_bytes=1024, keep_files=2,
                           clock=FakeClock())
        for i in range(60):
            log.log("tick", index=i, padding="x" * 64)
        log.close()
        files = sorted(tmp_path.glob("events-*.jsonl"))
        assert len(files) <= 2
        events = log.read_events()
        # The newest events survived, oldest were pruned with their files.
        assert events[-1]["index"] == 59
        assert events[0]["index"] > 0

    def test_reopen_appends_to_latest_file(self, tmp_path):
        log = TelemetryLog(tmp_path, clock=FakeClock())
        log.log("first")
        log.close()
        reborn = TelemetryLog(tmp_path, clock=FakeClock())
        reborn.log("second")
        reborn.close()
        assert [e["event"] for e in reborn.read_events()] == [
            "first", "second"]

    def test_lines_are_valid_sorted_json(self, tmp_path):
        log = TelemetryLog(tmp_path, clock=FakeClock())
        log.log("zeta", beta=1, alpha=2)
        log.close()
        raw = log.path.read_text().strip()
        parsed = json.loads(raw)
        assert list(parsed) == sorted(parsed)  # sort_keys pinned


# -- sliding-window histograms and the registry -------------------------


class TestOpsWindowHistogram:
    def test_summary_quantiles(self):
        clock = FakeClock()
        histogram = OpsWindowHistogram(window_seconds=60.0, clock=clock)
        for value in [1.0, 2.0, 3.0, 4.0, 5.0]:
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 5
        assert summary["sum"] == pytest.approx(15.0)
        assert summary["min"] == 1.0 and summary["max"] == 5.0
        assert summary["p50"] == 3.0
        assert summary["p95"] == 5.0 and summary["p99"] == 5.0

    def test_samples_age_out_of_the_window(self):
        clock = FakeClock()
        histogram = OpsWindowHistogram(window_seconds=60.0, clock=clock)
        histogram.observe(100.0)
        clock.advance(61.0)
        histogram.observe(1.0)
        summary = histogram.summary()
        assert summary["count"] == 1
        assert summary["max"] == 1.0

    def test_empty_window_is_zeros(self):
        histogram = OpsWindowHistogram(clock=FakeClock())
        summary = histogram.summary()
        assert summary["count"] == 0 and summary["p95"] == 0.0


class TestOpsMetrics:
    def test_same_name_and_labels_share_an_instrument(self):
        ops = OpsMetrics(clock=FakeClock())
        ops.counter("turns.completed_total", tenant="acme").inc()
        ops.counter("turns.completed_total", tenant="acme").inc()
        ops.counter("turns.completed_total", tenant="globex").inc()
        snapshot = ops.snapshot()
        rows = {
            row["labels"]["tenant"]: row["value"]
            for row in snapshot["counters"]
        }
        assert rows == {"acme": 2.0, "globex": 1.0}

    def test_prometheus_exposition_shape(self):
        ops = OpsMetrics(clock=FakeClock())
        ops.counter("http.requests_total", route="health",
                    status="200").inc()
        ops.gauge("pool.workers").set(4)
        ops.histogram("turn.wall_seconds", tenant="acme").observe(0.5)
        text = ops.to_prometheus()
        assert "# TYPE http_requests_total counter" in text
        assert ('http_requests_total{route="health",status="200"} 1'
                in text)
        assert "# TYPE pool_workers gauge" in text
        assert "# TYPE turn_wall_seconds summary" in text
        assert ('turn_wall_seconds{quantile="0.95",tenant="acme"} 0.5'
                in text)
        assert 'turn_wall_seconds_count{tenant="acme"} 1' in text
        # every non-comment line is "name{labels} value" or "name value"
        for line in text.strip().splitlines():
            if line.startswith("#"):
                continue
            name_part, _, value = line.rpartition(" ")
            assert name_part and float(value) is not None

    def test_label_values_are_escaped(self):
        ops = OpsMetrics(clock=FakeClock())
        ops.counter("odd.total", label='we"ird\nvalue').inc()
        text = ops.to_prometheus()
        assert '\\"' in text and "\\n" in text


# -- SLO evaluation -----------------------------------------------------


class TestSloEvaluation:
    def _telemetry(self, tmp_path, rules=None):
        clock = FakeClock()
        return Telemetry(root=tmp_path, slo_rules=rules, clock=clock), clock

    def test_all_ok_when_quiet(self, tmp_path):
        telemetry, _ = self._telemetry(tmp_path)
        health = telemetry.health()
        assert health["status"] == "ok" and health["ok"] is True
        assert health["alerts"] == []
        assert {row["name"] for row in health["slos"]} == {
            rule.name for rule in DEFAULT_SLO_RULES}

    def test_availability_fires_on_5xx(self, tmp_path):
        telemetry, _ = self._telemetry(tmp_path)
        histogram = telemetry.ops.histogram("http.availability")
        for _ in range(9):
            histogram.observe(1.0)
        histogram.observe(0.0)  # 90% < 99% objective
        alerts = {row["name"] for row in telemetry.health()["alerts"]}
        assert "availability" in alerts

    def test_latency_p95_fires_above_threshold(self, tmp_path):
        rules = [SloRule("lat", "latency_p95", 1.0, "p95 test")]
        telemetry, _ = self._telemetry(tmp_path, rules)
        for _ in range(20):
            telemetry.ops.histogram("turn.wall_seconds").observe(2.0)
        health = telemetry.health()
        assert health["status"] == "degraded"
        assert health["alerts"][0]["value"] == pytest.approx(2.0)

    def test_quota_rejection_rate(self, tmp_path):
        telemetry, _ = self._telemetry(tmp_path)
        histogram = telemetry.ops.histogram("turn.quota_outcome")
        histogram.observe(1.0)
        histogram.observe(1.0)
        histogram.observe(0.0)
        alerts = {row["name"] for row in telemetry.health()["alerts"]}
        assert "quota_rejection_rate" in alerts  # 2/3 > 0.5

    def test_saturation_fires_and_ages_out(self, tmp_path):
        telemetry, clock = self._telemetry(tmp_path)
        telemetry.ops.histogram("pool.saturation_rejections").observe(1.0)
        assert telemetry.health()["status"] == "degraded"
        clock.advance(301.0)  # past the default window
        assert telemetry.health(now=clock())["status"] == "ok"

    def test_unknown_rule_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown SLO kind"):
            SloRule("bad", "made_up", 1.0)

    def test_evaluator_reads_empty_windows_as_healthy(self):
        evaluator = SloEvaluator(OpsMetrics(clock=FakeClock()))
        assert all(row["ok"] for row in evaluator.evaluate())


# -- the facade ---------------------------------------------------------


class TestTelemetryFacade:
    def test_request_ids_are_unique_and_prefixed(self, tmp_path):
        telemetry = Telemetry(root=tmp_path, clock=FakeClock())
        ids = {telemetry.new_request_id() for _ in range(100)}
        assert len(ids) == 100
        assert all(rid.startswith("req-") for rid in ids)

    def test_request_id_epoch_survives_24bit_millisecond_wrap(
            self, tmp_path):
        first = Telemetry(root=tmp_path / "a", clock=FakeClock(0.0))
        # A restart 2**24 ms later would collide under a 24-bit epoch;
        # the wider timestamp keeps the two processes' ids distinct.
        reborn = Telemetry(root=tmp_path / "b",
                           clock=FakeClock(float(2 ** 24)))
        assert first.new_request_id() != reborn.new_request_id()

    def test_error_logs_type_message_digest(self, tmp_path):
        telemetry = Telemetry(root=tmp_path, clock=FakeClock())
        try:
            raise ValueError("kaput")
        except ValueError as exc:
            telemetry.error("turn_error", exc, turn="t-1")
        telemetry.close()
        [event] = telemetry.log.read_events()
        assert event["error_type"] == "ValueError"
        assert event["error"] == "kaput"
        assert len(event["stack_digest"]) == 12
        assert event["turn"] == "t-1"

    def test_phase_records_tenant_labeled_histogram(self, tmp_path):
        telemetry = Telemetry(root=tmp_path, clock=FakeClock())
        with bind_context(tenant="acme"):
            with telemetry.phase("engine.optimize"):
                pass
        snapshot = telemetry.ops.snapshot()
        [row] = snapshot["histograms"]
        assert row["name"] == "engine.optimize_wall_seconds"
        assert row["labels"] == {"tenant": "acme"}
        assert row["summary"]["count"] == 1
        events = [e["event"] for e in telemetry.log.read_events()]
        assert events == ["engine.optimize_phase"]

    def test_prometheus_includes_slo_verdicts(self, tmp_path):
        telemetry = Telemetry(root=tmp_path, clock=FakeClock())
        text = telemetry.prometheus()
        assert "# TYPE repro_slo_ok gauge" in text
        assert 'repro_slo_ok{slo="availability"} 1' in text

    def test_metrics_payload_shape(self, tmp_path):
        telemetry = Telemetry(root=tmp_path, clock=FakeClock())
        payload = telemetry.metrics_payload(now=1234.0)
        assert set(payload) == {"generated_at", "window_seconds",
                                "status", "alerts", "slos", "metrics"}
        assert set(payload["metrics"]) == {"counters", "gauges",
                                           "histograms"}


class TestNullTelemetry:
    def test_null_is_inert_but_complete(self, tmp_path):
        null = NullTelemetry()
        assert null.enabled is False
        null.event("anything", x=1)
        null.error("boom", ValueError("x"))
        with null.phase("engine.execute"):
            pass
        null.ops.counter("a.b", tenant="t").inc()
        null.ops.gauge("c.d").set(5)
        null.ops.histogram("e.f").observe(1.0)
        assert null.ops.snapshot() == {
            "counters": [], "gauges": [], "histograms": []}
        assert null.health()["ok"] is True
        assert null.metrics_payload()["status"] == "ok"
        assert null.prometheus().startswith("# TYPE repro_slo_ok")
        assert not list(tmp_path.iterdir())  # no files, ever

    def test_null_request_ids_still_unique(self):
        ids = {NULL_TELEMETRY.new_request_id() for _ in range(10)}
        assert len(ids) == 10


# -- the dashboard renderer ---------------------------------------------


class TestRenderDashboard:
    def _payload(self, turns=10.0, alerts=()):
        return {
            "status": "degraded" if alerts else "ok",
            "window_seconds": 300.0,
            "alerts": list(alerts),
            "metrics": {
                "counters": [
                    {"name": "turns.completed_total",
                     "labels": {"tenant": "acme", "status": "ok"},
                     "value": turns},
                    {"name": "quota.rejections_total",
                     "labels": {"tenant": "acme"}, "value": 2.0},
                ],
                "gauges": [
                    {"name": "turns.in_flight",
                     "labels": {"tenant": "acme"}, "value": 1.0},
                    {"name": "tenant.spent_cost_usd",
                     "labels": {"tenant": "acme"}, "value": 0.1234},
                    {"name": "pool.workers", "labels": {}, "value": 4.0},
                    {"name": "pool.active", "labels": {}, "value": 1.0},
                ],
                "histograms": [
                    {"name": "turn.wall_seconds",
                     "labels": {"tenant": "acme"},
                     "summary": {"count": 10, "sum": 5.0, "min": 0.1,
                                 "max": 1.0, "p50": 0.4, "p95": 0.9,
                                 "p99": 1.0}},
                ],
            },
        }

    def test_frame_has_tenant_row_and_pool_line(self):
        frame = render_dashboard(self._payload())
        assert "service OK" in frame
        assert "acme" in frame
        assert "0.900" in frame  # p95
        assert "pool: active 1/4 workers" in frame
        assert "alerts: none" in frame
        # No previous payload: the rate column shows a dash.
        acme_row = next(l for l in frame.splitlines()
                        if l.startswith("acme"))
        assert " - " in acme_row

    def test_rates_from_previous_frame(self):
        previous = self._payload(turns=4.0)
        frame = render_dashboard(self._payload(turns=10.0),
                                 previous=previous, elapsed=2.0)
        assert "3.00" in frame  # (10-4)/2 turns/s

    def test_alerts_section(self):
        alert = {"name": "availability", "value": 0.5, "threshold": 0.99,
                 "description": "fraction of non-5xx responses"}
        frame = render_dashboard(self._payload(alerts=[alert]))
        assert "service DEGRADED" in frame
        assert "ALERTS FIRING:" in frame
        assert "availability" in frame

    def test_empty_payload_renders(self):
        frame = render_dashboard({"status": "ok", "window_seconds": 0,
                                  "alerts": [], "metrics": {}})
        assert "(no tenant traffic yet)" in frame
