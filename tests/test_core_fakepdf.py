"""The fake-PDF container: round-tripping and error handling."""

import pytest

from repro.core.fakepdf import (
    FakePDFError,
    is_fake_pdf,
    paginate,
    parse_fake_pdf,
    write_fake_pdf,
)


class TestRoundTrip:
    def test_text_roundtrips(self):
        text = "Hello PDF world. " * 30
        document = parse_fake_pdf(write_fake_pdf(text))
        assert document.text.split() == text.split()

    def test_metadata_roundtrips(self):
        data = write_fake_pdf("body", {"title": "T", "index": "3"})
        document = parse_fake_pdf(data)
        assert document.metadata == {"title": "T", "index": "3"}

    def test_unicode_content(self):
        text = "Résumé — naïve façade ✓"
        document = parse_fake_pdf(write_fake_pdf(text))
        assert document.text == text

    def test_pagination_by_words(self):
        text = "word " * 1000
        document = parse_fake_pdf(write_fake_pdf(text, words_per_page=100))
        assert document.page_count == 10

    def test_empty_text(self):
        document = parse_fake_pdf(write_fake_pdf(""))
        assert document.text == ""
        assert document.page_count == 1

    def test_bytes_are_not_plaintext(self):
        # The text stream must actually be encoded (rot13+hex).
        data = write_fake_pdf("findme secret phrase")
        assert b"findme" not in data


class TestPaginate:
    def test_short_text_single_page(self):
        assert len(paginate("a b c", words_per_page=100)) == 1

    def test_exact_boundary(self):
        assert len(paginate("w " * 200, words_per_page=100)) >= 2


class TestErrors:
    def test_missing_header(self):
        with pytest.raises(FakePDFError, match="header"):
            parse_fake_pdf(b"%PDF-1.7 real pdf")

    def test_truncated_document(self):
        data = write_fake_pdf("some text")
        truncated = data.rsplit(b"%%EOF", 1)[0]
        with pytest.raises(FakePDFError, match="EOF"):
            parse_fake_pdf(truncated)

    def test_corrupt_stream(self):
        data = write_fake_pdf("some text").decode()
        lines = data.splitlines()
        # Replace the first stream line with invalid hex.
        for index, line in enumerate(lines):
            if line.startswith("%%PAGE"):
                lines[index + 1] = "zz-not-hex"
                break
        with pytest.raises(FakePDFError, match="stream"):
            parse_fake_pdf("\n".join(lines).encode())

    def test_corrupt_metadata(self):
        data = write_fake_pdf("x").decode()
        data = data.replace("%%META {}", "%%META {not json")
        with pytest.raises(FakePDFError, match="metadata"):
            parse_fake_pdf(data.encode())

    def test_non_utf8_bytes(self):
        with pytest.raises(FakePDFError):
            parse_fake_pdf(b"%FPDF-1.0\n\xff\xfe\x00")

    def test_is_fake_pdf(self):
        assert is_fake_pdf(write_fake_pdf("x"))
        assert not is_fake_pdf(b"%PDF-1.7")
