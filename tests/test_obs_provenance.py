"""Record-level provenance: graph semantics, explanations, registry.

Covers the per-operator event contract (which drops carry which reasons
and evidence), the ``why``/``why_not`` explanation API, serialization
round-trips, and the persistent run registry with its three-way diff.
"""

import json
import sys

import pytest

from repro.core.builtin_schemas import TextFile
from repro.core.dataset import Dataset
from repro.core.sources import MemorySource
from repro.execution.execute import Execute
from repro.llm.oracle import DocumentTruth, global_oracle
from repro.obs import (
    DROP_REASONS,
    DropReason,
    ProvenanceError,
    ProvenanceGraph,
    RunRegistry,
    RunSnapshot,
    diff_runs,
    render_why,
    render_why_not,
)

sys.path.insert(0, "tests")
from test_execution_pipeline import Clinical, make_source


def make_mixed_source(dataset_id, n=6):
    """Half the documents fail the filter predicate."""
    docs = []
    for i in range(n):
        relevant = i % 2 == 0
        topic = "colorectal cancer" if relevant else "galaxy formation"
        text = (
            f"Mixed record {i} about {topic}. "
            f"The Mix-{i} dataset is at https://example.org/mix/{i}."
        )
        docs.append(text)
        global_oracle().register(
            text,
            DocumentTruth(
                predicates={"about colorectal cancer": relevant},
                fields={"name": f"Mix-{i}", "score": str(i % 2)},
                difficulty=0.0,
            ),
        )
    return MemorySource(docs, dataset_id=dataset_id, schema=TextFile)


def recorded(dataset, **kwargs):
    records, stats = Execute(dataset, provenance=True, lint=False, **kwargs)
    return records, stats, stats.provenance


def event_reasons(graph):
    return {e["reason"] for e in graph.events if e["kind"] == "drop"}


class TestOperatorEvents:
    def test_filter_rejections_recorded_with_verdict(self):
        source = make_mixed_source("prov-filter")
        _, _, graph = recorded(
            Dataset(source).filter("about colorectal cancer"))
        rejects = [e for e in graph.events
                   if e.get("reason") == DropReason.FILTER_REJECTED]
        assert len(rejects) == 3
        for event in rejects:
            assert len(event["parents"]) == 1 and not event["children"]
            assert event["attrs"]["verdict"] is False

    def test_limit_cutoff_records_position(self):
        # A bare limit early-stops the scan (nothing arrives after
        # exhaustion, so nothing drops); the sort barrier upstream forces
        # every record through the limit.
        source = make_source(8, "prov-limit")
        _, _, graph = recorded(
            Dataset(source).convert(Clinical).sort("name").limit(3))
        cutoffs = [e for e in graph.events
                   if e.get("reason") == DropReason.LIMIT_CUTOFF]
        assert len(cutoffs) == 5
        assert all(e["attrs"]["limit"] == 3 for e in cutoffs)
        positions = sorted(e["attrs"]["position"] for e in cutoffs)
        assert positions == [4, 5, 6, 7, 8]

    def test_aggregate_folds_every_input(self):
        source = make_source(6, "prov-agg")
        records, _, graph = recorded(
            Dataset(source)
            .convert(Clinical)
            .groupby(["score"], [("count", None)]))
        folds = [e for e in graph.events
                 if e.get("reason") == DropReason.AGGREGATE_FOLD]
        assert len(folds) == 6  # every converted record folds in
        emits = [e for e in graph.events
                 if e["kind"] == "emit" and e["attrs"].get("group")]
        assert len(emits) == len(records)
        # The folded inputs reappear as parents of the group outputs.
        folded_ids = {e["parents"][0] for e in folds}
        emit_parents = {p for e in emits for p in e["parents"]}
        assert folded_ids == emit_parents
        assert all(e["attrs"]["folded"] >= 1 for e in emits)

    def test_retrieve_cutoff_records_score_and_rank(self):
        source = make_source(6, "prov-retr")
        _, _, graph = recorded(
            Dataset(source).retrieve("colorectal cancer datasets", k=2))
        cut = [e for e in graph.events
               if e.get("reason") == DropReason.RETRIEVE_CUTOFF]
        assert len(cut) == 4
        for event in cut:
            assert event["attrs"]["rank"] > 2
            assert event["attrs"]["k"] == 2
            assert "score" in event["attrs"]

    def test_distinct_duplicate_names_the_survivor(self):
        source = make_source(4, "prov-dist")
        _, _, graph = recorded(
            Dataset(source).convert(Clinical).distinct(["score"]))
        dups = [e for e in graph.events
                if e.get("reason") == DropReason.DISTINCT_DUPLICATE]
        # Scores cycle 0,1,2,0 -> one duplicate.
        assert len(dups) == 1
        survivor = dups[0]["attrs"]["duplicate_of"]
        node_ids = {n["id"] for n in graph.nodes}
        assert survivor in node_ids

    def test_all_reasons_are_registered(self):
        for reason in (DropReason.FILTER_REJECTED, DropReason.LIMIT_CUTOFF,
                       DropReason.JOIN_NO_MATCH, DropReason.AGGREGATE_FOLD,
                       DropReason.RETRIEVE_CUTOFF,
                       DropReason.DISTINCT_DUPLICATE,
                       DropReason.CONVERT_EMPTY):
            assert reason in DROP_REASONS


class TestWhy:
    @pytest.fixture(scope="class")
    def run(self):
        source = make_mixed_source("prov-why")
        return recorded(
            Dataset(source)
            .filter("about colorectal cancer")
            .convert(Clinical))

    def test_tree_reaches_the_source(self, run):
        _, _, graph = run
        tree = graph.why(graph.output_ids[0])
        assert tree["in_output"]
        assert tree["produced_by"]["op_label"]
        assert tree["parents"], "convert output must name its input"
        root = tree["parents"][0]
        assert root["origin"] == "scan"
        assert root["produced_by"] is None  # roots have no producing event
        assert root["source_id"] == "prov-why"

    def test_llm_summary_has_cost_but_no_latency(self, run):
        _, _, graph = run
        tree = graph.why(graph.output_ids[0])
        llm = tree["produced_by"]["llm"]
        assert llm["calls"] >= 1
        assert llm["cost_usd"] > 0
        assert "latency" not in llm  # latency is not batch-invariant

    def test_render_mentions_every_hop(self, run):
        _, _, graph = run
        text = render_why(graph.why(graph.output_ids[0]))
        assert "(in output)" in text
        assert "produced by:" in text
        assert "from:" in text
        assert "source" in text

    def test_unknown_id_raises(self, run):
        _, _, graph = run
        with pytest.raises(ProvenanceError):
            graph.why(len(graph.nodes) + 1)

    def test_canonical_id_maps_live_records(self, run):
        records, _, graph = run
        assert [graph.canonical_id(r) for r in records] == graph.output_ids


class TestWhyNot:
    def test_dropped_record_names_reason_and_verdict(self):
        source = make_mixed_source("prov-whynot")
        _, _, graph = recorded(
            Dataset(source).filter("about colorectal cancer"))
        result = graph.why_not("prov-whynot")
        assert result["matches"] == 6
        statuses = {f["status"] for f in result["fates"]}
        assert statuses == {"in_output", "dropped"}
        dropped = [f for f in result["fates"] if f["status"] == "dropped"]
        assert all(f["dropped_by"]["reason"] == DropReason.FILTER_REJECTED
                   for f in dropped)
        text = render_why_not(result)
        assert "eliminated by:" in text
        assert "in_output" in text or "in output" in text

    def test_folded_record_reports_aggregate_output(self):
        source = make_source(4, "prov-whynot-agg")
        _, _, graph = recorded(Dataset(source).convert(Clinical).count())
        result = graph.why_not("prov-whynot-agg")
        derived = [f for f in result["fates"] if f["status"] == "derived"]
        assert derived, "scanned records derive the converted ones"
        folded = derived[0]["children"][0]
        assert folded["status"] == "folded"
        assert folded["dropped_by"]["reason"] == DropReason.AGGREGATE_FOLD
        assert folded["children"][0]["status"] == "in_output"

    def test_no_match_renders_gracefully(self):
        source = make_source(2, "prov-whynot-none")
        _, _, graph = recorded(Dataset(source).convert(Clinical))
        result = graph.why_not("no-such-source")
        assert result["matches"] == 0
        assert "no source record matching" in render_why_not(result)

    def test_preview_containment_matches_content(self):
        source = make_source(3, "prov-whynot-prev")
        _, _, graph = recorded(Dataset(source).convert(Clinical))
        # Every root shares source_id; match one doc by its content.
        result = graph.why_not("Record 1 about colorectal")
        assert result["matches"] == 1


class TestSerialization:
    def test_round_trip_preserves_bytes(self):
        source = make_source(4, "prov-ser")
        _, _, graph = recorded(Dataset(source).convert(Clinical).limit(2))
        clone = ProvenanceGraph.from_dict(
            json.loads(json.dumps(graph.to_dict())))
        assert clone.to_json() == graph.to_json()
        assert clone.signature() == graph.signature()

    def test_why_answers_survive_round_trip(self):
        source = make_source(4, "prov-ser2")
        _, _, graph = recorded(Dataset(source).convert(Clinical))
        clone = ProvenanceGraph.from_dict(graph.to_dict())
        for output_id in graph.output_ids:
            assert render_why(clone.why(output_id)) == render_why(
                graph.why(output_id))


class TestRunRegistry:
    def snapshot_run(self, registry, dataset):
        records, stats = Execute(dataset, provenance=True, lint=False)
        return registry.record(records, stats)

    def test_sequential_ids_and_listing(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        source = make_source(4, "prov-reg")
        first = self.snapshot_run(registry, Dataset(source).convert(Clinical))
        second = self.snapshot_run(
            registry, Dataset(source).convert(Clinical))
        assert first.run_id == "run-0001"
        assert second.run_id == "run-0002"
        assert [m["run_id"] for m in registry.list()] == [
            "run-0001", "run-0002"]
        assert registry.latest() == "run-0002"
        assert registry.latest(before="run-0002") == "run-0001"

    def test_load_round_trips_everything(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        source = make_source(4, "prov-reg-rt")
        saved = self.snapshot_run(
            registry, Dataset(source).convert(Clinical).limit(2))
        loaded = registry.load(saved.run_id)
        assert loaded.meta == saved.meta
        assert loaded.records == saved.records
        assert loaded.stats == json.loads(
            json.dumps(saved.stats, default=str))
        assert loaded.graph.to_json() == saved.graph.to_json()

    def test_missing_run_lists_known_ids(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        with pytest.raises(FileNotFoundError, match="known runs"):
            registry.load("run-9999")


class TestRunDiff:
    def test_identical_runs_diff_empty(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        source = make_source(4, "prov-diff-same")
        dataset = Dataset(source).convert(Clinical)
        for _ in range(2):
            records, stats = Execute(dataset, provenance=True, lint=False)
            registry.record(records, stats)
        diff = registry.diff("run-0001", "run-0002")
        assert not diff.plan_changed
        payload = diff.to_dict()
        assert payload["totals"] == {
            "records_out": 0, "cost_usd": 0.0, "time_seconds": 0.0}
        assert payload["membership"]["appeared"] == []
        assert payload["membership"]["disappeared"] == []
        assert payload["membership"]["common"] == 4
        assert "plan: unchanged" in diff.render()

    def test_changed_plan_and_membership_explained(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        source = make_source(5, "prov-diff-chg")
        records, stats = Execute(
            Dataset(source).convert(Clinical),
            provenance=True, lint=False)
        a = registry.record(records, stats)
        records, stats = Execute(
            Dataset(source).convert(Clinical).sort("name").limit(2),
            provenance=True, lint=False)
        b = registry.record(records, stats)

        diff = diff_runs(a, b)
        payload = diff.to_dict()
        assert diff.plan_changed
        assert any("Limit" in label for label in payload["plan"]["added_ops"])
        assert payload["totals"]["records_out"] == -3
        assert payload["membership"]["common"] == 2
        disappeared = payload["membership"]["disappeared"]
        assert len(disappeared) == 3
        # Each disappearance is explained via the new run's why_not.
        assert all("limit_cutoff" in e["why_not"] for e in disappeared)
        text = diff.render()
        assert "plan: CHANGED" in text
        assert "per-operator deltas" in text
        assert "- disappeared:" in text

    def test_membership_keys_survive_disk_round_trip(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        source = make_source(3, "prov-diff-disk")
        records, stats = Execute(
            Dataset(source).convert(Clinical), provenance=True, lint=False)
        live = registry.record(records, stats)
        reloaded = registry.load(live.run_id)
        assert set(live.record_keys()) == set(reloaded.record_keys())
        assert diff_runs(live, reloaded).to_dict()["membership"] == {
            "appeared": [], "disappeared": [], "common": 3}
