"""Logical operators and plan validation."""

import pytest

from repro.core.builtin_schemas import PDFFile, TextFile
from repro.core.cardinality import Cardinality
from repro.core.errors import PlanError, SchemaError
from repro.core.logical import (
    AggFunc,
    Aggregate,
    BaseScan,
    ConvertScan,
    FilterSpec,
    FilteredScan,
    GroupByAggregate,
    LimitScan,
    LogicalPlan,
    Project,
    RetrieveScan,
)
from repro.core.schemas import make_schema

Clinical = make_schema(
    "Clinical", "Clinical info", {"name": "n", "url": "u"}
)


class TestFilterSpec:
    def test_nl_predicate(self):
        spec = FilterSpec(predicate="about cancer")
        assert spec.is_semantic
        assert "about cancer" in spec.describe()

    def test_udf(self):
        spec = FilterSpec(udf=lambda r: True)
        assert not spec.is_semantic

    def test_both_rejected(self):
        with pytest.raises(PlanError):
            FilterSpec(predicate="x", udf=lambda r: True)

    def test_neither_rejected(self):
        with pytest.raises(PlanError):
            FilterSpec()

    def test_empty_predicate_rejected(self):
        with pytest.raises(PlanError):
            FilterSpec(predicate="   ")


class TestCardinality:
    @pytest.mark.parametrize("raw", [
        "one_to_many", "ONE_TO_MANY", Cardinality.ONE_TO_MANY,
    ])
    def test_parse_accepts_variants(self, raw):
        assert Cardinality.parse(raw) is Cardinality.ONE_TO_MANY

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            Cardinality.parse("many_to_many")


class TestConvertScan:
    def test_new_fields_computed(self):
        op = ConvertScan(PDFFile, Clinical)
        assert set(op.new_fields) == {"name", "url"}
        assert op.is_semantic

    def test_no_new_fields_rejected(self):
        Sub = make_schema(
            "Sub", "d", {"filename": "f"},
        )
        with pytest.raises(PlanError, match="no new"):
            ConvertScan(PDFFile, Sub)

    def test_udf_convert_not_semantic(self):
        op = ConvertScan(PDFFile, Clinical, udf=lambda r: {"name": "x"})
        assert not op.is_semantic

    def test_desc_defaults_to_schema_doc(self):
        op = ConvertScan(PDFFile, Clinical)
        assert op.desc == "Clinical info"


class TestProject:
    def test_output_schema_subset(self):
        op = Project(PDFFile, ["filename"])
        assert op.output_schema.field_names() == ["filename"]

    def test_unknown_field_rejected(self):
        with pytest.raises(SchemaError):
            Project(PDFFile, ["bogus"])

    def test_empty_projection_rejected(self):
        with pytest.raises(PlanError):
            Project(PDFFile, [])


class TestAggregates:
    def test_count_needs_no_field(self):
        op = Aggregate(PDFFile, AggFunc.COUNT)
        assert op.alias == "count"
        assert op.output_schema.field_names() == ["count"]

    def test_average_needs_field(self):
        with pytest.raises(PlanError):
            Aggregate(PDFFile, AggFunc.AVERAGE)

    def test_average_unknown_field(self):
        with pytest.raises(SchemaError):
            Aggregate(PDFFile, AggFunc.AVERAGE, "bogus")

    def test_parse_func_aliases(self):
        assert AggFunc.parse("avg") is AggFunc.AVERAGE
        assert AggFunc.parse("mean") is AggFunc.AVERAGE
        assert AggFunc.parse("COUNT") is AggFunc.COUNT
        with pytest.raises(PlanError):
            AggFunc.parse("median")

    def test_groupby_output_schema(self):
        op = GroupByAggregate(
            Clinical, ["name"], [(AggFunc.COUNT, None)]
        )
        assert op.output_schema.field_names() == ["name", "count"]

    def test_groupby_needs_group_fields(self):
        with pytest.raises(PlanError):
            GroupByAggregate(Clinical, [], [(AggFunc.COUNT, None)])

    def test_groupby_unknown_field(self):
        with pytest.raises(SchemaError):
            GroupByAggregate(Clinical, ["bogus"], [(AggFunc.COUNT, None)])


class TestStructural:
    def test_limit_negative_rejected(self):
        with pytest.raises(PlanError):
            LimitScan(PDFFile, -1)

    def test_retrieve_validation(self):
        with pytest.raises(PlanError):
            RetrieveScan(PDFFile, "", 3)
        with pytest.raises(PlanError):
            RetrieveScan(PDFFile, "query", 0)


class TestLogicalPlan:
    def _plan(self):
        scan = BaseScan("demo", PDFFile)
        filt = FilteredScan(PDFFile, FilterSpec(predicate="about cancer"))
        conv = ConvertScan(PDFFile, Clinical)
        return LogicalPlan([scan, filt, conv])

    def test_valid_plan(self):
        plan = self._plan()
        assert len(plan) == 3
        assert plan.output_schema is Clinical

    def test_must_start_with_scan(self):
        with pytest.raises(PlanError):
            LogicalPlan([FilteredScan(PDFFile, FilterSpec(predicate="x"))])

    def test_scan_only_first(self):
        scan = BaseScan("demo", PDFFile)
        with pytest.raises(PlanError):
            LogicalPlan([scan, BaseScan("demo2", PDFFile)])

    def test_schema_mismatch_detected(self):
        scan = BaseScan("demo", PDFFile)
        bad = FilteredScan(TextFile, FilterSpec(predicate="x"))
        with pytest.raises(PlanError, match="mismatch"):
            LogicalPlan([scan, bad])

    def test_empty_plan_rejected(self):
        with pytest.raises(PlanError):
            LogicalPlan([])

    def test_semantic_operators_listed(self):
        plan = self._plan()
        semantic = plan.semantic_operators()
        assert len(semantic) == 2

    def test_udf_ops_not_semantic(self):
        scan = BaseScan("demo", PDFFile)
        filt = FilteredScan(PDFFile, FilterSpec(udf=lambda r: True))
        plan = LogicalPlan([scan, filt])
        assert plan.semantic_operators() == []

    def test_describe_mentions_all_ops(self):
        text = self._plan().describe()
        assert "scan" in text and "filter" in text and "convert" in text

    def test_signatures_stable(self):
        a = self._plan()
        b = self._plan()
        assert [op.signature() for op in a] == [op.signature() for op in b]
