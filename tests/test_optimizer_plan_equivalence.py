"""Regression: pruned enumeration chooses the same plan as exhaustive.

Enumeration-time Pareto pruning discards dominated partial plans before
their completions are materialized.  All supported policies are monotone in
(cost, time, quality) — cost/time compose additively and quality
multiplicatively with per-op factors in [0, 1] — so a dominated prefix can
never complete into a plan a policy would choose.  These tests pin that
equivalence on the paper's two demo workloads.
"""

import pytest

import repro as pz
from repro.core.sources import DirectorySource
from repro.corpora.legal import CONTRACT_FIELDS, LEGAL_PREDICATE
from repro.corpora.papers import CLINICAL_FIELDS, PAPERS_PREDICATE
from repro.llm.models import default_registry
from repro.optimizer.cost_model import CostModel
from repro.optimizer.planner import enumerate_plans

POLICIES = [
    pz.MaxQuality(),
    pz.MinCost(),
    pz.MinTime(),
    pz.MaxQualityAtFixedCost(max_cost_usd=1.0),
]


@pytest.fixture()
def sci_workload(papers_dir):
    source = DirectorySource(papers_dir, dataset_id="equiv-papers")
    ClinicalData = pz.make_schema(
        "ClinicalDataEquiv",
        "A schema for extracting clinical data datasets from papers.",
        CLINICAL_FIELDS,
    )
    pipeline = (
        pz.Dataset(source)
        .filter(PAPERS_PREDICATE)
        .convert(ClinicalData, cardinality=pz.Cardinality.ONE_TO_MANY)
    )
    return source, pipeline


@pytest.fixture()
def legal_workload(legal_dir):
    source = DirectorySource(legal_dir, dataset_id="equiv-legal")
    Contract = pz.make_schema(
        "ContractEquiv",
        "Deal terms extracted from responsive documents.",
        CONTRACT_FIELDS,
    )
    pipeline = (
        pz.Dataset(source).filter(LEGAL_PREDICATE).convert(Contract)
    )
    return source, pipeline


def _enumerate_both(source, pipeline):
    cost_model = CostModel(source.profile())
    logical = pipeline.logical_plan()
    registry = default_registry()
    full = enumerate_plans(
        logical, source, registry, cost_model, prune=False
    )
    pruned = enumerate_plans(
        logical, source, registry, cost_model, prune=True
    )
    assert 0 < len(pruned) <= len(full)
    return full, pruned


def _chosen(candidates, policy):
    best = policy.choose([c.estimate for c in candidates])
    return next(c for c in candidates if c.estimate is best)


def _assert_same_choice(full, pruned, policy):
    chosen_full = _chosen(full, policy)
    chosen_pruned = _chosen(pruned, policy)
    if chosen_full.plan.plan_id != chosen_pruned.plan.plan_id:
        # Distinct plans are acceptable only as exact sort-key ties.
        assert policy.sort_key(chosen_pruned.estimate) == \
            policy.sort_key(chosen_full.estimate)


class TestPlanChoiceEquivalence:
    @pytest.mark.parametrize(
        "policy", POLICIES, ids=lambda p: p.describe()
    )
    def test_sci_discovery_choice_matches(self, sci_workload, policy):
        full, pruned = _enumerate_both(*sci_workload)
        _assert_same_choice(full, pruned, policy)

    @pytest.mark.parametrize(
        "policy", POLICIES, ids=lambda p: p.describe()
    )
    def test_legal_choice_matches(self, legal_workload, policy):
        full, pruned = _enumerate_both(*legal_workload)
        _assert_same_choice(full, pruned, policy)

    def test_pruned_set_is_subset_of_exhaustive(self, sci_workload):
        full, pruned = _enumerate_both(*sci_workload)
        full_ids = {c.plan.plan_id for c in full}
        assert {c.plan.plan_id for c in pruned} <= full_ids


class TestIncrementalEstimatesMatchOneShot:
    def test_accumulated_estimate_equals_full_walk(self, legal_workload):
        # The DP extends prefixes one operator at a time; the resulting
        # estimate must be bit-identical to re-costing the whole plan.
        source, pipeline = legal_workload
        cost_model = CostModel(source.profile())
        candidates = enumerate_plans(
            pipeline.logical_plan(), source, default_registry(), cost_model,
            prune=True,
        )
        for candidate in candidates:
            direct = cost_model.estimate_plan(candidate.plan)
            assert direct.cost_usd == candidate.estimate.cost_usd
            assert direct.time_seconds == candidate.estimate.time_seconds
            assert direct.quality == candidate.estimate.quality
            assert direct.output_cardinality == \
                candidate.estimate.output_cardinality
