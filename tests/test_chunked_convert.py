"""Chunked (map-reduce) converts for documents exceeding context windows."""

import pytest

import repro as pz
from repro.core.builtin_schemas import TextFile
from repro.core.cardinality import Cardinality
from repro.core.logical import ConvertScan
from repro.core.records import DataRecord
from repro.core.schemas import make_schema
from repro.core.sources import MemorySource
from repro.llm.models import ModelCard, ModelRegistry, default_registry
from repro.llm.tokenizer import count_tokens, split_into_token_chunks
from repro.optimizer.candidates import candidate_operators
from repro.physical.context import ExecutionContext
from repro.physical.converts import ChunkedConvert, LLMConvertBonded

Info = make_schema(
    "Info", "Extracted info",
    {"url": "The URL mentioned", "email": "The contact e-mail"},
)

# A document whose interesting facts live in different "pages".
LONG_DOC = (
    "Section one. " + "filler words here " * 120
    + " The project site is https://deep.example.org/project. "
    + "more filler text " * 120
    + " Contact the team at team@example.org for access. "
    + "closing remarks " * 60
)


def tiny_model(context_window=300, name="tiny-window"):
    return ModelCard(
        name=name, provider="test",
        usd_per_1m_input=1.0, usd_per_1m_output=2.0,
        quality=1.0, context_window=context_window,
    )


class TestSplitIntoChunks:
    def test_chunks_respect_budget(self):
        chunks = split_into_token_chunks(LONG_DOC, 100)
        assert all(count_tokens(c) <= 100 for c in chunks)

    def test_concatenation_covers_text(self):
        chunks = split_into_token_chunks(LONG_DOC, 100)
        assert "".join(chunks) == LONG_DOC

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            split_into_token_chunks("x", 0)

    def test_short_text_single_chunk(self):
        assert split_into_token_chunks("short", 100) == ["short"]


class TestChunkedConvertRuntime:
    def test_merges_fields_across_chunks(self):
        logical = ConvertScan(TextFile, Info)
        op = ChunkedConvert(logical, tiny_model(), chunk_tokens=120)
        op.open(ExecutionContext())
        record = DataRecord.from_dict(
            TextFile, {"text_contents": LONG_DOC}
        )
        outputs = op.process(record)
        assert len(outputs) == 1
        assert outputs[0].url == "https://deep.example.org/project"
        assert outputs[0].email == "team@example.org"

    def test_multiple_calls_metered(self):
        logical = ConvertScan(TextFile, Info)
        context = ExecutionContext()
        op = ChunkedConvert(logical, tiny_model(), chunk_tokens=120)
        op.open(context)
        op.process(
            DataRecord.from_dict(TextFile, {"text_contents": LONG_DOC})
        )
        assert len(context.ledger) > 1  # several per-chunk calls

    def test_early_stop_when_all_fields_found(self):
        # Facts early in the document: later chunks are skipped.
        early_doc = (
            "Visit https://early.example.org and write to e@x.org. "
            + "padding " * 400
        )
        logical = ConvertScan(TextFile, Info)
        context = ExecutionContext()
        op = ChunkedConvert(logical, tiny_model(), chunk_tokens=120)
        op.open(context)
        op.process(
            DataRecord.from_dict(TextFile, {"text_contents": early_doc})
        )
        total_chunks = len(split_into_token_chunks(early_doc, 120))
        assert len(context.ledger) < total_chunks

    def test_estimates_scale_with_chunk_count(self):
        from repro.physical.base import StreamEstimate

        logical = ConvertScan(TextFile, Info)
        op = ChunkedConvert(logical, tiny_model(), chunk_tokens=100)
        short = op.naive_estimates(StreamEstimate(10, 100))
        long = op.naive_estimates(StreamEstimate(10, 1000))
        assert long.cost_per_record > short.cost_per_record * 5


class TestPlannerGating:
    def _source_and_convert(self):
        source = MemorySource(
            [LONG_DOC, LONG_DOC + " again"],
            dataset_id="chunk-gate", schema=TextFile,
        )
        dataset = pz.Dataset(source).convert(Info)
        return source, dataset.logical_plan().operators[-1]

    def test_oversized_docs_get_only_chunked_for_small_models(self):
        source, logical = self._source_and_convert()
        registry = ModelRegistry(
            [tiny_model()] + default_registry().embedding_models()
        )
        candidates = candidate_operators(logical, registry, source=source)
        assert [type(c).__name__ for c in candidates] == ["ChunkedConvert"]

    def test_big_window_models_keep_all_strategies(self):
        source, logical = self._source_and_convert()
        candidates = candidate_operators(
            logical, default_registry(), source=source
        )
        strategies = {type(c).__name__ for c in candidates}
        assert "ChunkedConvert" not in strategies
        assert "LLMConvertBonded" in strategies

    def test_end_to_end_with_tiny_model(self):
        source, _ = self._source_and_convert()
        registry = ModelRegistry(
            [tiny_model()] + default_registry().embedding_models()
        )
        dataset = pz.Dataset(source).convert(Info)
        records, stats = pz.Execute(
            dataset, policy=pz.MaxQuality(), models=registry
        )
        assert len(records) == 2
        assert all(r.url for r in records)
        assert "ChunkedConvert" in stats.plan_stats.plan_describe

    def test_oversized_filter_truncates_context(self):
        source = MemorySource(
            [LONG_DOC], dataset_id="chunk-filter", schema=TextFile
        )
        dataset = pz.Dataset(source).filter("about the project")
        logical = dataset.logical_plan().operators[-1]
        registry = ModelRegistry(
            [tiny_model()] + default_registry().embedding_models()
        )
        candidates = candidate_operators(logical, registry, source=source)
        llm_filters = [
            c for c in candidates if type(c).__name__ == "LLMFilter"
        ]
        assert llm_filters
        assert llm_filters[0].context_fraction < 1.0
