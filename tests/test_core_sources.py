"""Data sources: directory, file, memory, callback, registry."""

import pytest

from repro.core.builtin_schemas import PDFFile, TextFile
from repro.core.errors import DatasetError
from repro.core.fakepdf import write_fake_pdf
from repro.core.records import DataRecord
from repro.core.sources import (
    CallbackSource,
    DataSourceRegistry,
    DirectorySource,
    FileSource,
    MemorySource,
)


@pytest.fixture()
def pdf_dir(tmp_path):
    for index in range(3):
        (tmp_path / f"doc-{index}.pdf").write_bytes(
            write_fake_pdf(f"Document number {index}. " * 50)
        )
    return tmp_path


class TestDirectorySource:
    def test_every_file_is_a_record(self, pdf_dir):
        source = DirectorySource(pdf_dir, dataset_id="pdfs")
        assert len(source) == 3
        records = list(source)
        assert all(r.schema is PDFFile for r in records)

    def test_schema_inferred_from_extension(self, pdf_dir):
        source = DirectorySource(pdf_dir)
        assert source.schema is PDFFile

    def test_deterministic_order(self, pdf_dir):
        source = DirectorySource(pdf_dir)
        names = [r.filename for r in source]
        assert names == sorted(names)

    def test_sidecar_and_hidden_files_skipped(self, pdf_dir):
        (pdf_dir / "corpus.facts.json").write_text("{}")
        (pdf_dir / ".hidden").write_text("x")
        source = DirectorySource(pdf_dir)
        assert len(source) == 3

    def test_pattern_filtering(self, pdf_dir):
        (pdf_dir / "notes.txt").write_text("x")
        source = DirectorySource(pdf_dir, pattern="*.pdf")
        assert len(source) == 3

    def test_non_directory_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            DirectorySource(tmp_path / "missing")

    def test_default_dataset_id_is_dirname(self, pdf_dir):
        assert DirectorySource(pdf_dir).dataset_id == pdf_dir.name

    def test_profile_reports_cardinality_and_tokens(self, pdf_dir):
        profile = DirectorySource(pdf_dir).profile()
        assert profile.cardinality == 3
        assert profile.avg_document_tokens > 10

    def test_sample_limits(self, pdf_dir):
        assert len(DirectorySource(pdf_dir).sample(2)) == 2


class TestFileSource:
    def test_single_record(self, tmp_path):
        path = tmp_path / "one.txt"
        path.write_text("hello")
        source = FileSource(path)
        assert len(source) == 1
        assert list(source)[0].text_contents == "hello"

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            FileSource(tmp_path / "none.txt")


class TestMemorySource:
    def test_strings_become_text_records(self):
        source = MemorySource(["alpha", "beta"], dataset_id="mem")
        records = list(source)
        assert len(records) == 2
        assert records[0].text_contents == "alpha"
        assert records[0].filename == "mem-0"

    def test_dicts_infer_schema(self):
        source = MemorySource(
            [{"city": "Rome", "pop": 3}], dataset_id="mem"
        )
        record = list(source)[0]
        assert record.city == "Rome"

    def test_ready_records_pass_through(self):
        record = DataRecord.from_dict(TextFile, {"filename": "a"})
        source = MemorySource([record], dataset_id="mem")
        assert list(source)[0] is record

    def test_unmarshalable_item_rejected(self):
        source = MemorySource([object()], dataset_id="mem", schema=TextFile)
        with pytest.raises(DatasetError, match="marshal"):
            list(source)

    def test_empty_iterable(self):
        source = MemorySource([], dataset_id="mem", schema=TextFile)
        assert len(source) == 0


class TestCallbackSource:
    def test_custom_marshaling(self):
        def factory():
            for i in range(2):
                yield DataRecord.from_dict(
                    TextFile, {"filename": f"f{i}", "text_contents": "x"}
                )

        source = CallbackSource(factory, dataset_id="cb", schema=TextFile)
        assert len(source) == 2
        assert [r.filename for r in source] == ["f0", "f1"]

    def test_explicit_length(self):
        source = CallbackSource(
            lambda: iter(()), dataset_id="cb", schema=TextFile, length=7
        )
        assert len(source) == 7

    def test_non_record_yield_rejected(self):
        source = CallbackSource(
            lambda: iter(["nope"]), dataset_id="cb", schema=TextFile
        )
        with pytest.raises(DatasetError):
            list(source)


class TestRegistry:
    def test_register_and_get(self):
        registry = DataSourceRegistry()
        source = MemorySource(["x"], dataset_id="demo")
        registry.register(source)
        assert registry.get("demo") is source
        assert "demo" in registry

    def test_duplicate_rejected_without_overwrite(self):
        registry = DataSourceRegistry()
        registry.register(MemorySource(["x"], dataset_id="demo"))
        with pytest.raises(DatasetError):
            registry.register(MemorySource(["y"], dataset_id="demo"))

    def test_unknown_id_lists_known(self):
        registry = DataSourceRegistry()
        registry.register(MemorySource(["x"], dataset_id="known"))
        with pytest.raises(DatasetError, match="known"):
            registry.get("unknown")

    def test_list_ids_sorted(self):
        registry = DataSourceRegistry()
        registry.register(MemorySource(["x"], dataset_id="b"))
        registry.register(MemorySource(["x"], dataset_id="a"))
        assert registry.list_ids() == ["a", "b"]

    def test_empty_dataset_id_rejected(self):
        with pytest.raises(DatasetError):
            MemorySource(["x"], dataset_id="")
