"""Pipeline fuzzing: random op chains must always execute cleanly.

Hypothesis composes random (but schema-valid) chains of operators over a
small in-memory corpus; every generated pipeline must optimize and execute
without raising, and basic sanity invariants must hold on the output.
"""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro as pz
from repro.core.builtin_schemas import TextFile
from repro.core.schemas import make_schema
from repro.core.sources import MemorySource

Doc = make_schema(
    "FuzzDoc", "A fuzz document",
    {"title": "The title", "body": "The body",
     "score": pz.NumericField(desc="A score")},
)


def make_source(n):
    rows = [
        {
            "title": f"Document {i}",
            "body": f"body text {'cancer' if i % 2 else 'garden'} {i}",
            "score": (i * 7) % 13,
        }
        for i in range(n)
    ]
    return MemorySource(rows, dataset_id=f"fuzz-{n}", schema=Doc)


# Each op descriptor is (kind, parameter).
op_strategy = st.one_of(
    st.tuples(st.just("filter_udf"), st.integers(0, 3)),
    st.tuples(st.just("filter_nl"), st.sampled_from(
        ["about cancer", "about gardens", "mentions body text"]
    )),
    st.tuples(st.just("limit"), st.integers(0, 12)),
    st.tuples(st.just("distinct"), st.none()),
    st.tuples(st.just("sort"), st.sampled_from(["title", "score"])),
    st.tuples(st.just("project"), st.sampled_from(
        [["title"], ["title", "score"], ["body"]]
    )),
)

terminal_strategy = st.one_of(
    st.none(),
    st.just("count"),
    st.just("groupby"),
)


def apply_ops(dataset, ops, terminal):
    for kind, parameter in ops:
        if kind == "filter_udf":
            threshold = parameter
            dataset = dataset.filter(
                lambda r, t=threshold: (r.get("score") or 0) >= t
                if "score" in r.schema.field_map() else True
            )
        elif kind == "filter_nl":
            dataset = dataset.filter(parameter)
        elif kind == "limit":
            dataset = dataset.limit(parameter)
        elif kind == "distinct":
            dataset = dataset.distinct()
        elif kind == "sort":
            if parameter in dataset.schema.field_map():
                dataset = dataset.sort(parameter)
        elif kind == "project":
            fields = [
                f for f in parameter if f in dataset.schema.field_map()
            ]
            if fields:
                dataset = dataset.project(fields)
    if terminal == "count":
        dataset = dataset.count()
    elif terminal == "groupby":
        if "title" in dataset.schema.field_map():
            dataset = dataset.groupby(["title"], [("count", None)])
    return dataset


class TestPipelineFuzz:
    @given(
        st.integers(min_value=0, max_value=8),
        st.lists(op_strategy, max_size=5),
        terminal_strategy,
        st.sampled_from(["quality", "cost", "runtime"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_pipelines_execute(self, n_docs, ops, terminal, policy):
        dataset = apply_ops(pz.Dataset(make_source(n_docs)), ops, terminal)
        records, stats = pz.Execute(dataset, policy=policy)

        assert isinstance(records, list)
        assert stats.records_out == len(records)
        assert stats.total_cost_usd >= 0
        assert stats.total_time_seconds >= 0
        # Output cardinality can never exceed the input for these
        # (non-fanout) operators, except scalar aggregates on empty input.
        if terminal is None:
            assert len(records) <= n_docs
        elif terminal == "count":
            assert len(records) == 1
            assert records[0].count <= n_docs

    @given(st.lists(op_strategy, min_size=1, max_size=4))
    @settings(max_examples=20, deadline=None)
    def test_fuzzed_pipelines_are_deterministic(self, ops):
        dataset_a = apply_ops(pz.Dataset(make_source(6)), ops, None)
        dataset_b = apply_ops(pz.Dataset(make_source(6)), ops, None)
        records_a, stats_a = pz.Execute(dataset_a, policy="quality")
        records_b, stats_b = pz.Execute(dataset_b, policy="quality")
        assert [r.to_dict() for r in records_a] == [
            r.to_dict() for r in records_b
        ]
        assert stats_a.total_cost_usd == pytest.approx(
            stats_b.total_cost_usd
        )
