"""Property-based tests (hypothesis) on core data structures and invariants."""

import string

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.agent.templating import render_template, template_variables
from repro.core.fakepdf import parse_fake_pdf, write_fake_pdf
from repro.core.records import DataRecord
from repro.core.schemas import make_schema, schema_signature
from repro.llm.clock import VirtualClock
from repro.llm.embeddings import cosine_similarity, embed_text
from repro.llm.models import ModelCard
from repro.llm.oracle import fingerprint_text
from repro.llm.quality import decide_correct, error_probability
from repro.llm.tokenizer import count_tokens, truncate_to_tokens
from repro.optimizer.cost_model import PlanEstimate
from repro.optimizer.planner import PlanCandidate, pareto_frontier

text_strategy = st.text(
    alphabet=string.ascii_letters + string.digits + " .,!?-\n",
    max_size=500,
)

identifier_strategy = st.from_regex(
    r"[a-z][a-z0-9_]{0,10}", fullmatch=True
).filter(lambda s: not s.endswith("_") and "__" not in s)


class TestTokenizerProperties:
    @given(text_strategy)
    def test_count_non_negative(self, text):
        assert count_tokens(text) >= 0

    @given(text_strategy, text_strategy)
    def test_concatenation_superadditive_within_bounds(self, a, b):
        # Concatenation can merge tokens at the seam but never exceeds
        # the sum by more than the merged-word bonus.
        combined = count_tokens(a + " " + b)
        assert combined <= count_tokens(a) + count_tokens(b) + 1

    @given(text_strategy, st.integers(min_value=0, max_value=200))
    def test_truncate_respects_budget(self, text, budget):
        truncated = truncate_to_tokens(text, budget)
        assert count_tokens(truncated) <= budget
        assert text.startswith(truncated)


class TestFingerprintProperties:
    @given(text_strategy)
    def test_whitespace_normal_form(self, text):
        squeezed = " ".join(text.split())
        assert fingerprint_text(text) == fingerprint_text(squeezed)

    @given(text_strategy)
    def test_fixed_length(self, text):
        assert len(fingerprint_text(text)) == 24


class TestFakePDFProperties:
    @given(
        st.text(
            alphabet=string.printable.replace("\r", "").replace("\x0b", "")
            .replace("\x0c", ""),
            max_size=2000,
        )
    )
    @settings(max_examples=50)
    def test_roundtrip_preserves_words(self, text):
        document = parse_fake_pdf(write_fake_pdf(text))
        assert document.text.split() == text.split()

    @given(st.dictionaries(
        st.text(alphabet=string.ascii_letters, min_size=1, max_size=8),
        st.text(alphabet=string.ascii_letters + " ", max_size=20),
        max_size=5,
    ))
    def test_metadata_roundtrip(self, metadata):
        document = parse_fake_pdf(write_fake_pdf("body", metadata))
        assert document.metadata == metadata


class TestTemplateProperties:
    @given(st.dictionaries(
        identifier_strategy,
        st.text(alphabet=string.ascii_letters + " ", max_size=30),
        min_size=1, max_size=5,
    ))
    def test_all_variables_substituted(self, variables):
        template = " ".join("{{ %s }}" % name for name in variables)
        rendered = render_template(template, variables)
        assert "{{" not in rendered
        for value in variables.values():
            assert value in rendered

    @given(identifier_strategy)
    def test_template_variables_detects_roots(self, name):
        assert template_variables("{{ %s }}" % name) == [name]


class TestEmbeddingProperties:
    @given(text_strategy)
    @settings(max_examples=50)
    def test_norm_at_most_one(self, text):
        import numpy as np

        norm = np.linalg.norm(embed_text(text))
        assert norm == pytest.approx(1.0) or norm == 0.0

    @given(text_strategy, text_strategy)
    @settings(max_examples=50)
    def test_cosine_bounded_and_symmetric(self, a, b):
        va, vb = embed_text(a), embed_text(b)
        sim_ab = cosine_similarity(va, vb)
        assert -1.0001 <= sim_ab <= 1.0001
        assert sim_ab == pytest.approx(cosine_similarity(vb, va))


class TestClockProperties:
    @given(st.lists(
        st.floats(min_value=0.0, max_value=100.0,
                  allow_nan=False, allow_infinity=False),
        max_size=30,
    ), st.integers(min_value=1, max_value=8))
    def test_makespan_bounds(self, durations, lanes):
        clock = VirtualClock(lanes=lanes)
        for duration in durations:
            clock.pick_least_busy_lane()
            clock.advance(duration)
        total = sum(durations)
        longest = max(durations) if durations else 0.0
        # Classic list-scheduling bounds.
        assert clock.elapsed <= total + 1e-9
        assert clock.elapsed >= max(total / lanes, longest) - 1e-9
        assert clock.total_busy == pytest.approx(total)


class TestQualityProperties:
    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_error_probability_in_range(self, quality, difficulty, fraction):
        card = ModelCard(
            name="m", provider="t", usd_per_1m_input=1.0,
            usd_per_1m_output=1.0, quality=quality,
        )
        p = error_probability(card, difficulty, fraction)
        assert 0.0 <= p <= 0.95

    @given(st.text(min_size=1, max_size=20), st.text(min_size=1, max_size=20))
    def test_decide_correct_deterministic(self, fingerprint, task):
        card = ModelCard(
            name="m", provider="t", usd_per_1m_input=1.0,
            usd_per_1m_output=1.0, quality=0.5,
        )
        first = decide_correct(card, fingerprint, task, 0.5)
        second = decide_correct(card, fingerprint, task, 0.5)
        assert first == second


class TestSchemaProperties:
    @given(st.dictionaries(
        identifier_strategy,
        st.text(alphabet=string.ascii_letters + " ", min_size=1,
                max_size=30),
        min_size=1, max_size=6,
    ))
    def test_make_schema_roundtrip(self, fields):
        schema = make_schema("Generated", "A generated schema", fields)
        assert set(schema.field_names()) == set(fields)
        for name, desc in fields.items():
            assert schema.field_desc(name) == desc
        # Signature is deterministic for the same shape.
        again = make_schema("Generated", "A generated schema", fields)
        assert schema_signature(schema) == schema_signature(again)

    @given(st.dictionaries(
        identifier_strategy,
        st.text(alphabet=string.ascii_letters + " ", max_size=20),
        min_size=1, max_size=4,
    ))
    def test_record_roundtrip(self, values):
        schema = make_schema(
            "R", "d", {name: f"field {name}" for name in values}
        )
        record = DataRecord.from_dict(schema, values)
        assert record.to_dict() == values


class TestParetoProperties:
    estimates = st.tuples(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )

    @staticmethod
    def _candidates(points):
        return [
            PlanCandidate(
                plan=None,
                estimate=PlanEstimate(
                    plan=None, cost_usd=c, time_seconds=t, quality=q,
                    output_cardinality=1.0,
                ),
            )
            for c, t, q in points
        ]

    @given(st.lists(estimates, min_size=1, max_size=30))
    def test_frontier_nonempty_and_subset(self, points):
        candidates = self._candidates(points)
        frontier = pareto_frontier(candidates)
        assert 0 < len(frontier) <= len(candidates)
        assert all(c in candidates for c in frontier)

    @given(st.lists(estimates, min_size=1, max_size=30))
    def test_extremes_survive(self, points):
        candidates = self._candidates(points)
        frontier = pareto_frontier(candidates)
        frontier_costs = [c.estimate.cost_usd for c in frontier]
        frontier_quality = [c.estimate.quality for c in frontier]
        assert min(frontier_costs) == min(
            c.estimate.cost_usd for c in candidates
        )
        assert max(frontier_quality) == max(
            c.estimate.quality for c in candidates
        )

    @given(st.lists(estimates, min_size=1, max_size=20))
    def test_no_internal_domination(self, points):
        from repro.optimizer.planner import _dominates

        frontier = pareto_frontier(self._candidates(points))
        for a in frontier:
            for b in frontier:
                if a is not b:
                    assert not _dominates(a.estimate, b.estimate)


class TestSetOpsProperties:
    values = st.lists(
        st.one_of(
            st.integers(min_value=-100, max_value=100),
            st.text(alphabet=string.ascii_lowercase, max_size=5),
            st.none(),
        ),
        max_size=25,
    )

    @staticmethod
    def _records(values):
        from repro.core.schemas import make_schema
        from repro.core.fields import Field

        Holder = make_schema("Holder", "d", {"value": Field(desc="v")})
        return [
            DataRecord.from_dict(Holder, {"value": v}) for v in values
        ], Holder

    @given(values)
    @settings(max_examples=40)
    def test_distinct_is_idempotent_and_preserves_first(self, values):
        from repro.core.logical_ext import Distinct
        from repro.physical.setops import DistinctOp
        from repro.physical.context import ExecutionContext

        records, Holder = self._records(values)
        op = DistinctOp(Distinct(Holder, ["value"]))
        op.open(ExecutionContext())
        out = [r for rec in records for r in op.process(rec)]
        kept = [r.get("value") for r in out]
        # No duplicates, order of first occurrence preserved.
        seen = []
        for v in values:
            if v not in seen:
                seen.append(v)
        assert kept == seen

    @given(st.lists(
        st.one_of(st.integers(min_value=-1000, max_value=1000), st.none()),
        max_size=25,
    ))
    @settings(max_examples=40)
    def test_sort_orders_numbers_with_nones_last(self, values):
        from repro.core.logical_ext import Sort
        from repro.physical.setops import SortOp
        from repro.physical.context import ExecutionContext

        records, Holder = self._records(values)
        op = SortOp(Sort(Holder, "value"))
        op.open(ExecutionContext())
        for record in records:
            op.process(record)
        out = [r.get("value") for r in op.close()]
        numbers = [v for v in out if v is not None]
        assert numbers == sorted(numbers)
        if None in out:
            first_none = out.index(None)
            assert all(v is None for v in out[first_none:])


class TestCacheProperties:
    @given(
        st.text(min_size=1, max_size=10),
        st.text(min_size=1, max_size=10),
        st.text(min_size=1, max_size=10),
    )
    def test_store_then_lookup_roundtrips(self, model, task, fingerprint):
        from repro.llm.cache import CallCache

        cache = CallCache()
        key = CallCache.make_key(model, "judge", task, fingerprint)
        cache.store(key, ("payload", task))
        hit, value = cache.lookup(key)
        assert hit and value == ("payload", task)

    @given(st.lists(st.text(min_size=1, max_size=6), min_size=1,
                    max_size=30, unique=True),
           st.integers(min_value=1, max_value=10))
    def test_bounded_cache_never_exceeds_capacity(self, tasks, capacity):
        from repro.llm.cache import CallCache

        cache = CallCache(max_entries=capacity)
        for task in tasks:
            cache.store(CallCache.make_key("m", "judge", task, "fp"), 1)
        assert len(cache) <= capacity
