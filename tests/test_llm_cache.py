"""The semantic call cache: hits, eviction, end-to-end savings."""

import pytest

import repro as pz
from repro.core.builtin_schemas import TextFile
from repro.core.sources import MemorySource
from repro.llm.cache import CallCache
from repro.llm.client import (
    BooleanRequest,
    ExtractionRequest,
    SimulatedLLMClient,
)
from repro.llm.oracle import DocumentTruth, GroundTruthRegistry
from repro.llm.usage import UsageLedger

DOC = "A study on colorectal cancer with data at https://x.example.org."


@pytest.fixture()
def oracle():
    reg = GroundTruthRegistry()
    reg.register(
        DOC,
        DocumentTruth(
            predicates={"about colorectal cancer": True},
            fields={"url": "https://x.example.org"},
            difficulty=0.0,
        ),
    )
    return reg


class TestCacheUnit:
    def test_lookup_miss_then_hit(self):
        cache = CallCache()
        key = CallCache.make_key("m", "judge", "p", "fp")
        hit, _ = cache.lookup(key)
        assert not hit
        cache.store(key, True)
        hit, value = cache.lookup(key)
        assert hit and value is True
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_distinct_keys_do_not_collide(self):
        cache = CallCache()
        a = CallCache.make_key("m", "judge", "p", "fp1")
        b = CallCache.make_key("m", "judge", "p", "fp2")
        cache.store(a, True)
        hit, _ = cache.lookup(b)
        assert not hit

    def test_model_is_part_of_key(self):
        assert CallCache.make_key("m1", "judge", "p", "fp") != \
            CallCache.make_key("m2", "judge", "p", "fp")

    def test_eviction_without_lookups_drops_oldest(self):
        cache = CallCache(max_entries=2)
        keys = [CallCache.make_key("m", "judge", f"p{i}", "fp")
                for i in range(3)]
        for key in keys:
            cache.store(key, True)
        assert len(cache) == 2
        hit, _ = cache.lookup(keys[0])
        assert not hit  # evicted
        assert cache.stats.evictions == 1

    def test_lru_eviction_spares_recently_used(self):
        # Distinguishes LRU from FIFO: after a lookup hit on the oldest
        # entry, the *second*-oldest must be the one evicted.
        cache = CallCache(max_entries=2)
        a, b, c = [CallCache.make_key("m", "judge", f"p{i}", "fp")
                   for i in range(3)]
        cache.store(a, "A")
        cache.store(b, "B")
        hit, _ = cache.lookup(a)  # refreshes a; FIFO would still evict it
        assert hit
        cache.store(c, "C")
        hit_a, value_a = cache.lookup(a)
        hit_b, _ = cache.lookup(b)
        assert hit_a and value_a == "A"
        assert not hit_b
        assert cache.stats.evictions == 1

    def test_re_store_refreshes_recency(self):
        cache = CallCache(max_entries=2)
        a, b, c = [CallCache.make_key("m", "judge", f"p{i}", "fp")
                   for i in range(3)]
        cache.store(a, "A")
        cache.store(b, "B")
        cache.store(a, "A2")  # re-store moves a to most-recent
        cache.store(c, "C")   # evicts b
        hit_a, value_a = cache.lookup(a)
        hit_b, _ = cache.lookup(b)
        assert hit_a and value_a == "A2"
        assert not hit_b
        assert len(cache) == 2

    def test_invalid_max_entries(self):
        with pytest.raises(ValueError):
            CallCache(max_entries=0)

    def test_clear_resets_stats(self):
        cache = CallCache()
        cache.store(CallCache.make_key("m", "j", "p", "f"), 1)
        cache.lookup(CallCache.make_key("m", "j", "p", "f"))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.lookups == 0


class TestClientIntegration:
    def test_judge_hit_is_free_and_identical(self, oracle):
        cache = CallCache()
        ledger = UsageLedger()
        client = SimulatedLLMClient(
            "gpt-4o", ledger=ledger, oracle=oracle, cache=cache
        )
        request = BooleanRequest(
            predicate="about colorectal cancer", document=DOC
        )
        first = client.judge(request)
        second = client.judge(request)
        assert second.value == first.value
        assert ledger.records[0].cost_usd > 0
        assert ledger.records[1].cost_usd == 0.0
        assert ledger.records[1].operation.endswith(":cached")
        assert cache.stats.hits == 1

    def test_extract_hit_returns_same_payload(self, oracle):
        cache = CallCache()
        client = SimulatedLLMClient("gpt-4o", oracle=oracle, cache=cache)
        request = ExtractionRequest(
            fields={"url": "the url"}, document=DOC
        )
        first = client.extract(request)
        second = client.extract(request)
        assert second.value == first.value
        assert cache.stats.hits == 1

    def test_different_fraction_misses(self, oracle):
        cache = CallCache()
        client = SimulatedLLMClient("gpt-4o", oracle=oracle, cache=cache)
        client.judge(BooleanRequest(
            predicate="about colorectal cancer", document=DOC,
            context_fraction=1.0,
        ))
        client.judge(BooleanRequest(
            predicate="about colorectal cancer", document=DOC,
            context_fraction=0.5,
        ))
        assert cache.stats.hits == 0

    def test_no_cache_means_no_stats(self, oracle):
        client = SimulatedLLMClient("gpt-4o", oracle=oracle)
        assert client.cache is None


class TestPipelineIntegration:
    def _pipeline(self):
        docs = [
            f"Report {i} about colorectal cancer. "
            f"Data at https://r{i}.example.org." for i in range(6)
        ]
        source = MemorySource(docs, dataset_id="cache-pipe", schema=TextFile)
        return pz.Dataset(source).filter("about colorectal cancer")

    def test_warm_rerun_is_nearly_free(self):
        cache = CallCache()
        _, cold = pz.Execute(
            self._pipeline(), policy=pz.MaxQuality(), cache=cache
        )
        records, warm = pz.Execute(
            self._pipeline(), policy=pz.MaxQuality(), cache=cache
        )
        assert warm.total_cost_usd == 0.0
        assert warm.total_time_seconds < cold.total_time_seconds / 10
        assert cold.records_out == warm.records_out

    def test_cold_runs_without_cache_pay_twice(self):
        _, first = pz.Execute(self._pipeline(), policy=pz.MaxQuality())
        _, second = pz.Execute(self._pipeline(), policy=pz.MaxQuality())
        assert second.total_cost_usd == pytest.approx(first.total_cost_usd)
        assert second.total_cost_usd > 0


class TestEmbeddingCache:
    def test_warm_embedding_is_free(self):
        from repro.llm.embeddings import EmbeddingModel
        import numpy as np

        cache = CallCache()
        ledger = UsageLedger()
        model = EmbeddingModel(ledger=ledger, cache=cache)
        first = model.embed("some document text")
        second = model.embed("some document text")
        assert np.allclose(first, second)
        assert ledger.records[0].cost_usd > 0
        assert ledger.records[1].cost_usd == 0.0
        assert cache.stats.hits == 1

    def test_warm_retrieve_pipeline_is_free(self):
        import repro as pz
        from repro.core.builtin_schemas import TextFile
        from repro.core.sources import MemorySource

        source = MemorySource(
            [f"listing {i} on the waterfront" for i in range(5)],
            dataset_id="embed-cache", schema=TextFile,
        )
        cache = CallCache()
        pipeline = pz.Dataset(source).retrieve("waterfront", k=2)
        _, cold = pz.Execute(pipeline, cache=cache)
        _, warm = pz.Execute(pipeline, cache=cache)
        assert cold.total_cost_usd > 0
        assert warm.total_cost_usd == 0.0
