"""Executors: sequential, parallel, early stopping, stats accounting."""

import pytest

from repro.core.builtin_schemas import TextFile
from repro.core.dataset import Dataset
from repro.core.schemas import make_schema
from repro.core.sources import MemorySource
from repro.execution.executors import ParallelExecutor, SequentialExecutor
from repro.llm.oracle import DocumentTruth, global_oracle
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.policies import MaxQuality
from repro.physical.context import ExecutionContext

Clinical = make_schema("Clinical", "d", {"name": "n"})


def make_source(n=8, dataset_id="exec-test"):
    docs = []
    for i in range(n):
        text = (
            f"Record {i} about colorectal cancer. "
            f"The Set-{i} dataset is publicly available at "
            f"https://example.org/{i}."
        )
        docs.append(text)
        global_oracle().register(
            text,
            DocumentTruth(
                predicates={"about colorectal cancer": True},
                fields={"name": f"Set-{i}"},
                difficulty=0.0,
            ),
        )
    return MemorySource(docs, dataset_id=dataset_id, schema=TextFile)


def chosen_plan(dataset, source, **kwargs):
    return (
        Optimizer(MaxQuality(), **kwargs)
        .optimize(dataset.logical_plan(), source)
        .chosen.plan
    )


class TestSequentialExecutor:
    def test_executes_and_counts(self):
        source = make_source()
        dataset = Dataset(source).filter("about colorectal cancer").convert(
            Clinical
        )
        plan = chosen_plan(dataset, source)
        records, stats = SequentialExecutor().execute(plan)
        assert len(records) == 8
        assert stats.records_out == 8
        assert stats.total_cost_usd > 0
        assert stats.total_time_seconds > 0

    def test_operator_stats_row_per_op(self):
        source = make_source()
        dataset = Dataset(source).filter("about colorectal cancer")
        plan = chosen_plan(dataset, source)
        _, stats = SequentialExecutor().execute(plan)
        assert len(stats.operator_stats) == len(plan.operators)
        filter_stats = stats.operator_stats[1]
        assert filter_stats.records_in == 8
        assert filter_stats.llm_calls == 8

    def test_operator_costs_sum_to_total(self):
        source = make_source()
        dataset = Dataset(source).filter("about colorectal cancer").convert(
            Clinical
        )
        plan = chosen_plan(dataset, source)
        _, stats = SequentialExecutor().execute(plan)
        summed = sum(op.cost_usd for op in stats.operator_stats)
        assert summed == pytest.approx(stats.total_cost_usd)

    def test_operator_times_sum_to_busy_time(self):
        source = make_source()
        dataset = Dataset(source).filter("about colorectal cancer")
        plan = chosen_plan(dataset, source)
        executor = SequentialExecutor()
        _, stats = executor.execute(plan)
        summed = sum(op.time_seconds for op in stats.operator_stats)
        assert summed == pytest.approx(
            executor.context.clock.total_busy, rel=1e-6
        )

    def test_limit_early_stop_saves_llm_calls(self):
        source = make_source(n=10, dataset_id="exec-limit")
        dataset = Dataset(source).filter("about colorectal cancer").limit(2)
        plan = chosen_plan(dataset, source)
        executor = SequentialExecutor()
        records, stats = executor.execute(plan)
        assert len(records) == 2
        filter_stats = stats.operator_stats[1]
        assert filter_stats.llm_calls < 10

    def test_blocking_aggregate(self):
        source = make_source(dataset_id="exec-agg")
        dataset = Dataset(source).count()
        plan = chosen_plan(dataset, source)
        records, stats = SequentialExecutor().execute(plan)
        assert len(records) == 1
        assert records[0].count == 8


class TestParallelExecutor:
    def test_same_results_as_sequential(self):
        source = make_source(dataset_id="exec-par")
        dataset = Dataset(source).filter("about colorectal cancer").convert(
            Clinical
        )
        plan = chosen_plan(dataset, source)
        seq_records, seq_stats = SequentialExecutor().execute(plan)
        par_records, par_stats = ParallelExecutor(max_workers=4).execute(plan)
        assert {r.name for r in par_records} == {r.name for r in seq_records}
        # Same total work (costs), less wall-clock.
        assert par_stats.total_cost_usd == pytest.approx(
            seq_stats.total_cost_usd
        )
        assert par_stats.total_time_seconds < seq_stats.total_time_seconds

    def test_speedup_bounded_by_workers(self):
        source = make_source(dataset_id="exec-par2")
        dataset = Dataset(source).filter("about colorectal cancer")
        plan = chosen_plan(dataset, source)
        seq = SequentialExecutor().execute(plan)[1].total_time_seconds
        par = ParallelExecutor(max_workers=4).execute(plan)[1]
        speedup = seq / par.total_time_seconds
        assert 1.0 < speedup <= 4.5

    def test_context_lane_mismatch_rejected(self):
        context = ExecutionContext(max_workers=4)
        object.__setattr__  # no-op; context is fine
        bad_context = ExecutionContext(max_workers=1)
        bad_context.max_workers = 4  # clock has 1 lane but claims 4 workers
        with pytest.raises(ValueError):
            ParallelExecutor(bad_context)
