"""No-false-positives sweep: everything the repo ships must lint clean.

The fuzz suite (``test_pipeline_fuzz.py``) provides further coverage for
free: its randomly generated pipelines execute through ``Execute``, which
now runs plan lint first — any error-severity false positive there would
fail that suite.
"""

from pathlib import Path

import pytest

from repro.analysis import lint_plan, lint_program, lint_registry
from repro.chat.tools_pz import build_pz_tools
from repro.chat.workspace import PipelineWorkspace
from repro.cli import _demo_pipelines

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"


class TestDemoPipelines:
    @pytest.fixture(scope="class")
    def pipelines(self, tmp_path_factory):
        return _demo_pipelines(str(tmp_path_factory.mktemp("sweep")))

    @pytest.mark.parametrize("scenario", ["sci", "legal", "realestate"])
    def test_demo_pipeline_has_no_errors(self, pipelines, scenario):
        result = lint_plan(pipelines[scenario])
        assert result.errors == [], result.render()

    @pytest.mark.parametrize("scenario", ["sci", "legal", "realestate"])
    def test_demo_pipeline_has_no_warnings(self, pipelines, scenario):
        result = lint_plan(pipelines[scenario])
        assert result.warnings == [], result.render()


class TestShippedExamples:
    @pytest.mark.parametrize(
        "path",
        sorted(EXAMPLES_DIR.glob("*.py")),
        ids=lambda p: p.name,
    )
    def test_example_program_lints_clean(self, path):
        result = lint_program(path.read_text(), filename=str(path))
        assert result.errors == [], result.render()


class TestRegisteredTools:
    def test_chat_tools_have_no_errors(self):
        result = lint_registry(build_pz_tools(PipelineWorkspace()))
        assert result.errors == [], result.render()
