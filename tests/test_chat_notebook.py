"""The Beaker-like notebook: cells, snapshots, restore, export."""

import json

import pytest

from repro.chat.notebook import Notebook, NotebookCell
from repro.chat.workspace import PipelineWorkspace
from repro.optimizer.policies import MinCost


class TestCells:
    def test_markdown_and_code_cells(self):
        nb = Notebook()
        nb.add_markdown("**User:** hello")
        nb.add_code("print(1)", outputs=["1"])
        assert len(nb) == 2
        assert nb.cells[0].kind == "markdown"
        assert nb.cells[1].outputs == ["1"]

    def test_ipynb_cell_shapes(self):
        markdown = NotebookCell("markdown", "# title").to_ipynb()
        assert markdown["cell_type"] == "markdown"
        code = NotebookCell("code", "x = 1", outputs=["ok"]).to_ipynb()
        assert code["cell_type"] == "code"
        assert code["outputs"][0]["output_type"] == "stream"


class TestSnapshots:
    def test_snapshot_and_restore(self):
        nb = Notebook()
        ws = PipelineWorkspace()
        ws.log_step("load", source="a")
        index_before = nb.snapshot_state(ws)

        ws.log_step("filter", predicate="x")
        ws.policy = MinCost()
        nb.snapshot_state(ws)

        nb.restore_state(index_before, ws)
        assert len(ws.steps) == 1
        assert ws.policy.name == "max-quality"

    def test_restore_truncates_future_snapshots(self):
        nb = Notebook()
        ws = PipelineWorkspace()
        first = nb.snapshot_state(ws)
        nb.snapshot_state(ws)
        nb.snapshot_state(ws)
        nb.restore_state(first, ws)
        assert nb.snapshot_count == first + 1

    def test_restore_out_of_range(self):
        nb = Notebook()
        with pytest.raises(IndexError):
            nb.restore_state(0, PipelineWorkspace())

    def test_restore_clears_results(self):
        nb = Notebook()
        ws = PipelineWorkspace()
        index = nb.snapshot_state(ws)
        ws.last_records = ["sentinel"]
        nb.restore_state(index, ws)
        assert ws.last_records is None


class TestExport:
    def test_ipynb_structure(self, tmp_path):
        nb = Notebook(title="My session")
        nb.add_markdown("**User:** hi")
        nb.add_code("x = 1")
        path = nb.save(tmp_path / "session.ipynb")
        data = json.loads(path.read_text())
        assert data["nbformat"] == 4
        # Header cell + 2 content cells.
        assert len(data["cells"]) == 3
        assert data["cells"][0]["source"] == ["# My session"]
        assert data["metadata"]["palimpchat"]["title"] == "My session"

    def test_multiline_sources_split(self, tmp_path):
        nb = Notebook()
        nb.add_code("a = 1\nb = 2\n")
        data = nb.to_ipynb()
        code_cell = data["cells"][1]
        assert code_cell["source"] == ["a = 1\n", "b = 2\n"]
