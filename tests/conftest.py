"""Shared fixtures: generated corpora and registered demo datasets."""

from __future__ import annotations

import pytest

from repro.corpora.legal import generate_legal_corpus
from repro.corpora.papers import generate_paper_corpus
from repro.corpora.realestate import generate_realestate_corpus
from repro.core.sources import DirectorySource, register_datasource


@pytest.fixture(scope="session")
def papers_dir(tmp_path_factory):
    """The default 11-paper scientific-discovery corpus."""
    directory = tmp_path_factory.mktemp("papers")
    return generate_paper_corpus(directory)


@pytest.fixture(scope="session")
def legal_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("legal")
    return generate_legal_corpus(directory)


@pytest.fixture(scope="session")
def realestate_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("realestate")
    return generate_realestate_corpus(directory)


@pytest.fixture()
def papers_source(papers_dir):
    return DirectorySource(papers_dir, dataset_id="papers-test")


@pytest.fixture()
def sigmod_demo(papers_dir):
    """Register the papers corpus under the paper's dataset id."""
    source = DirectorySource(papers_dir, dataset_id="sigmod-demo")
    register_datasource(source, overwrite=True)
    return source
