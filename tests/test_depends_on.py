"""``depends_on``: semantic operators reading only the named fields."""

import pytest

import repro as pz
from repro.core.builtin_schemas import TextFile
from repro.core.records import DataRecord
from repro.core.schemas import make_schema
from repro.core.sources import MemorySource

Profile = make_schema(
    "Profile", "A person profile",
    {"name": "The name", "bio": "The biography",
     "homepage": "The homepage URL"},
)


def profiles():
    rows = [
        {"name": "Ada", "bio": "Works on colorectal cancer genomics.",
         "homepage": "https://ada.example.org"},
        {"name": "Bo", "bio": "Studies medieval architecture.",
         "homepage": "https://bo.example.org"},
    ]
    return MemorySource(rows, dataset_id="profiles", schema=Profile)


class TestFieldsText:
    def test_named_fields_only(self):
        record = DataRecord.from_dict(
            Profile,
            {"name": "Ada", "bio": "the bio", "homepage": "https://x"},
        )
        text = record.fields_text(["bio"])
        assert text == "bio: the bio"
        assert "Ada" not in text

    def test_parent_fallback_per_field(self):
        Narrow = make_schema("Narrow", "d", {"other": "o"})
        parent = DataRecord.from_dict(Profile, {"bio": "parent bio"})
        child = parent.derive(Narrow, {"other": "x"})
        assert child.fields_text(["bio"]) == "bio: parent bio"

    def test_all_missing_falls_back_to_document(self):
        record = DataRecord.from_dict(
            TextFile, {"text_contents": "the full document"}
        )
        assert record.fields_text(["nonexistent"]) == "the full document"


class TestFilterDependsOn:
    def test_filter_judges_only_named_field(self):
        # The predicate words appear in the *name* field of no record and
        # the *bio* of Ada only; restricting to bio keeps exactly Ada.
        dataset = pz.Dataset(profiles()).filter(
            "mentions colorectal cancer research",
            depends_on=["bio"],
        )
        records, _ = pz.Execute(dataset, policy=pz.MaxQuality())
        assert [r.name for r in records] == ["Ada"]

    def test_depends_on_shrinks_prompts(self):
        rows = [{
            "name": "Ada",
            "bio": "colorectal cancer. " * 200,
            "homepage": "https://x",
        }]
        source = MemorySource(rows, dataset_id="big-profile",
                              schema=Profile)
        full = pz.Dataset(source).filter("about colorectal cancer")
        narrow = pz.Dataset(source).filter(
            "about colorectal cancer", depends_on=["name"]
        )
        _, full_stats = pz.Execute(full, policy=pz.MaxQuality())
        _, narrow_stats = pz.Execute(narrow, policy=pz.MaxQuality())
        full_tokens = full_stats.plan_stats.operator_stats[1].input_tokens
        narrow_tokens = narrow_stats.plan_stats.operator_stats[1].input_tokens
        assert narrow_tokens < full_tokens / 10


class TestConvertDependsOn:
    def test_convert_extracts_from_named_field(self):
        Link = make_schema("Link", "d", {"url": "The URL mentioned"})
        dataset = pz.Dataset(profiles()).convert(
            Link, depends_on=["homepage"]
        )
        records, _ = pz.Execute(dataset, policy=pz.MaxQuality())
        assert {r.url for r in records} == {
            "https://ada.example.org", "https://bo.example.org",
        }

    def test_udf_convert_ignores_depends_on(self):
        Out = make_schema("Out", "d", {"upper": "uppercased name"})
        dataset = pz.Dataset(profiles()).convert(
            Out, udf=lambda r: {"upper": r.name.upper()},
            depends_on=["bio"],
        )
        records, _ = pz.Execute(dataset)
        assert {r.upper for r in records} == {"ADA", "BO"}
