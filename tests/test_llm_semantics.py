"""Heuristic semantic engine: boolean judgments and field extraction."""

import pytest

from repro.llm.semantics import (
    answer_boolean,
    extract_all_urls,
    extract_field,
    summarize,
)

PAPER = (
    "Title: A colorectal cancer cohort study\n"
    "Authors: A. Moreno, L. Chen\n"
    "We analyze colorectal cancer tumors across 500 patients. "
    "The TCGA-COAD dataset is publicly available at "
    "https://portal.example.org/coad. Contact: lead@example.org. "
    "Submitted on March 3, 2024. The total budget was $1.2 million."
)


class TestAnswerBoolean:
    def test_matching_keywords_true(self):
        assert answer_boolean("about colorectal cancer", PAPER) is True

    def test_non_matching_false(self):
        assert answer_boolean("about quantum computing", PAPER) is False

    def test_negation_flips(self):
        assert answer_boolean("not about colorectal cancer", PAPER) is False

    def test_quoted_phrase_must_match(self):
        assert answer_boolean('"colorectal cancer"', PAPER) is True
        assert answer_boolean('"pancreatic cancer"', PAPER) is False

    def test_empty_predicate_accepts(self):
        assert answer_boolean("", PAPER) is True

    def test_stopword_only_predicate_accepts(self):
        assert answer_boolean("the papers that are", PAPER) is True

    def test_majority_rule(self):
        # 1 of 3 content words match -> below majority -> False.
        assert answer_boolean("cancer zebrafish astronomy", PAPER) is False


class TestExtractField:
    def test_url(self):
        assert extract_field("url", "public URL", PAPER) == (
            "https://portal.example.org/coad"
        )

    def test_email(self):
        assert extract_field("email", "contact e-mail", PAPER) == (
            "lead@example.org"
        )

    def test_date(self):
        assert "2024" in extract_field("date", "submission date", PAPER)

    def test_money(self):
        assert "$" in extract_field("cost", "the total budget amount", PAPER)

    def test_title_from_labelled_line(self):
        assert extract_field("title", "paper title", PAPER) == (
            "A colorectal cancer cohort study"
        )

    def test_authors_from_labelled_line(self):
        assert "Moreno" in extract_field("authors", "the authors", PAPER)

    def test_dataset_name_pattern(self):
        assert extract_field("name", "dataset name", PAPER) == "TCGA-COAD"

    def test_labelled_line_with_underscore_name(self):
        text = "Deal_Value: $300 million\nother text"
        assert extract_field("deal_value", "", text) == "$300 million"

    def test_missing_returns_none(self):
        assert extract_field("email", "contact e-mail", "no contact here") is None

    def test_description_falls_back_to_first_sentence(self):
        result = extract_field("summary", "short description", PAPER)
        assert result.startswith("Title:")


class TestHelpers:
    def test_extract_all_urls(self):
        urls = extract_all_urls(PAPER)
        assert urls == ["https://portal.example.org/coad"]

    def test_summarize_limits_sentences(self):
        text = "One. Two. Three. Four."
        assert summarize(text, max_sentences=2) == "One. Two."
