"""Usage records and ledger aggregation."""

import pytest

from repro.llm.usage import LLMUsage, UsageLedger, UsageTotals


def usage(model="m", inp=100, out=10, cost=0.01, latency=1.0, op="filter"):
    return LLMUsage(
        model=model,
        input_tokens=inp,
        output_tokens=out,
        cost_usd=cost,
        latency_seconds=latency,
        operation=op,
    )


class TestUsageTotals:
    def test_add_accumulates_all_fields(self):
        totals = UsageTotals()
        totals.add(usage())
        totals.add(usage(inp=50, out=5, cost=0.02))
        assert totals.calls == 2
        assert totals.input_tokens == 150
        assert totals.output_tokens == 15
        assert totals.cost_usd == pytest.approx(0.03)
        assert totals.total_tokens == 165

    def test_merge(self):
        a, b = UsageTotals(), UsageTotals()
        a.add(usage())
        b.add(usage(cost=0.05))
        a.merge(b)
        assert a.calls == 2
        assert a.cost_usd == pytest.approx(0.06)


class TestUsageLedger:
    def test_empty_ledger_totals(self):
        ledger = UsageLedger()
        assert len(ledger) == 0
        assert ledger.total().cost_usd == 0.0

    def test_record_and_total(self):
        ledger = UsageLedger()
        ledger.record(usage())
        ledger.record(usage(cost=0.04))
        assert len(ledger) == 2
        assert ledger.total().cost_usd == pytest.approx(0.05)

    def test_by_model_groups(self):
        ledger = UsageLedger()
        ledger.record(usage(model="a"))
        ledger.record(usage(model="b"))
        ledger.record(usage(model="a"))
        grouped = ledger.by_model()
        assert grouped["a"].calls == 2
        assert grouped["b"].calls == 1

    def test_by_operation_groups(self):
        ledger = UsageLedger()
        ledger.record(usage(op="filter"))
        ledger.record(usage(op="convert"))
        assert set(ledger.by_operation()) == {"filter", "convert"}

    def test_filtered_view(self):
        ledger = UsageLedger()
        ledger.record(usage(model="a", op="filter"))
        ledger.record(usage(model="b", op="filter"))
        ledger.record(usage(model="a", op="convert"))
        assert len(ledger.filtered(model="a")) == 2
        assert len(ledger.filtered(operation="filter")) == 2
        assert len(ledger.filtered(model="a", operation="filter")) == 1

    def test_records_returns_copy(self):
        ledger = UsageLedger()
        ledger.record(usage())
        snapshot = ledger.records
        snapshot.clear()
        assert len(ledger) == 1

    def test_summary_lines_mention_models(self):
        ledger = UsageLedger()
        ledger.record(usage(model="gpt-4o"))
        lines = ledger.summary_lines()
        assert any("gpt-4o" in line for line in lines)

    def test_clear(self):
        ledger = UsageLedger()
        ledger.record(usage())
        ledger.clear()
        assert len(ledger) == 0

    def test_extend(self):
        ledger = UsageLedger()
        ledger.extend([usage(), usage()])
        assert len(ledger) == 2


class TestVirtualTimestamps:
    def test_timestamps_monotone_within_a_sequential_run(self):
        import repro as pz
        from repro.core.builtin_schemas import TextFile
        from repro.core.sources import MemorySource
        from repro.execution.executors import SequentialExecutor
        from repro.optimizer.optimizer import Optimizer

        source = MemorySource(
            [f"doc {i} about colorectal cancer" for i in range(4)],
            dataset_id="ts-test", schema=TextFile,
        )
        dataset = pz.Dataset(source).filter("about colorectal cancer")
        report = Optimizer().optimize(dataset.logical_plan(), source)
        executor = SequentialExecutor()
        executor.execute(report.chosen.plan)
        timestamps = [
            u.virtual_timestamp for u in executor.context.ledger.records
        ]
        assert timestamps == sorted(timestamps)
        assert timestamps[0] > 0
