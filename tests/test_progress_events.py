"""Executor progress events."""

import pytest

import repro as pz
from repro.core.builtin_schemas import TextFile
from repro.core.sources import MemorySource
from repro.execution.executors import ParallelExecutor, SequentialExecutor
from repro.optimizer.optimizer import Optimizer


def make_plan(n=5, blocking=False, dataset_id="events"):
    docs = [f"document number {i}" for i in range(n)]
    source = MemorySource(docs, dataset_id=dataset_id, schema=TextFile)
    dataset = pz.Dataset(source)
    if blocking:
        dataset = dataset.count()
    report = Optimizer().optimize(dataset.logical_plan(), source)
    return report.chosen.plan


class TestSequentialEvents:
    def test_event_sequence(self):
        events = []
        executor = SequentialExecutor(on_event=events.append)
        executor.execute(make_plan(n=4))
        kinds = [e["type"] for e in events]
        assert kinds[0] == "plan_start"
        assert kinds[-1] == "plan_end"
        assert kinds.count("record_processed") == 4

    def test_record_events_carry_progress(self):
        events = []
        executor = SequentialExecutor(on_event=events.append)
        executor.execute(make_plan(n=3))
        indices = [
            e["index"] for e in events if e["type"] == "record_processed"
        ]
        assert indices == [1, 2, 3]

    def test_plan_end_totals_match_stats(self):
        events = []
        executor = SequentialExecutor(on_event=events.append)
        records, stats = executor.execute(make_plan(n=3))
        end = events[-1]
        assert end["records_out"] == len(records)
        assert end["cost_usd"] == pytest.approx(stats.total_cost_usd)

    def test_blocking_flush_event(self):
        events = []
        executor = SequentialExecutor(on_event=events.append)
        executor.execute(make_plan(n=3, blocking=True, dataset_id="ev-agg"))
        flushes = [e for e in events if e["type"] == "operator_flush"]
        assert len(flushes) == 1
        assert flushes[0]["records"] == 1

    def test_no_callback_is_fine(self):
        records, _ = SequentialExecutor().execute(make_plan(n=2))
        assert len(records) == 2


class TestParallelEvents:
    def test_parallel_executor_emits_too(self):
        events = []
        executor = ParallelExecutor(max_workers=2, on_event=events.append)
        executor.execute(make_plan(n=4, dataset_id="ev-par"))
        assert [e["type"] for e in events].count("record_processed") == 4
