"""Executor progress events and the per-turn ProgressBuffer."""

import threading
import time

import pytest

import repro as pz
from repro.core.builtin_schemas import TextFile
from repro.core.sources import MemorySource
from repro.execution.executors import ParallelExecutor, SequentialExecutor
from repro.optimizer.optimizer import Optimizer
from repro.server.progress import ProgressBuffer, progress_events_from_trace


def make_plan(n=5, blocking=False, dataset_id="events"):
    docs = [f"document number {i}" for i in range(n)]
    source = MemorySource(docs, dataset_id=dataset_id, schema=TextFile)
    dataset = pz.Dataset(source)
    if blocking:
        dataset = dataset.count()
    report = Optimizer().optimize(dataset.logical_plan(), source)
    return report.chosen.plan


class TestSequentialEvents:
    def test_event_sequence(self):
        events = []
        executor = SequentialExecutor(on_event=events.append)
        executor.execute(make_plan(n=4))
        kinds = [e["type"] for e in events]
        assert kinds[0] == "plan_start"
        assert kinds[-1] == "plan_end"
        assert kinds.count("record_processed") == 4

    def test_record_events_carry_progress(self):
        events = []
        executor = SequentialExecutor(on_event=events.append)
        executor.execute(make_plan(n=3))
        indices = [
            e["index"] for e in events if e["type"] == "record_processed"
        ]
        assert indices == [1, 2, 3]

    def test_plan_end_totals_match_stats(self):
        events = []
        executor = SequentialExecutor(on_event=events.append)
        records, stats = executor.execute(make_plan(n=3))
        end = events[-1]
        assert end["records_out"] == len(records)
        assert end["cost_usd"] == pytest.approx(stats.total_cost_usd)

    def test_blocking_flush_event(self):
        events = []
        executor = SequentialExecutor(on_event=events.append)
        executor.execute(make_plan(n=3, blocking=True, dataset_id="ev-agg"))
        flushes = [e for e in events if e["type"] == "operator_flush"]
        assert len(flushes) == 1
        assert flushes[0]["records"] == 1

    def test_no_callback_is_fine(self):
        records, _ = SequentialExecutor().execute(make_plan(n=2))
        assert len(records) == 2


class TestParallelEvents:
    def test_parallel_executor_emits_too(self):
        events = []
        executor = ParallelExecutor(max_workers=2, on_event=events.append)
        executor.execute(make_plan(n=4, dataset_id="ev-par"))
        assert [e["type"] for e in events].count("record_processed") == 4


class TestProgressBufferEdges:
    def test_long_poll_times_out_empty(self):
        buffer = ProgressBuffer()
        started = time.monotonic()
        events, done, next_offset = buffer.read(offset=0,
                                                wait_seconds=0.15)
        waited = time.monotonic() - started
        assert events == [] and done is False and next_offset == 0
        assert waited >= 0.1  # actually blocked, then expired

    def test_long_poll_wakes_on_emit(self):
        buffer = ProgressBuffer()
        result = {}

        def reader():
            result["read"] = buffer.read(offset=0, wait_seconds=10.0)

        thread = threading.Thread(target=reader)
        thread.start()
        time.sleep(0.05)
        buffer.emit({"type": "tick"})
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        events, done, next_offset = result["read"]
        assert [e["type"] for e in events] == ["tick"]
        assert next_offset == 1

    def test_long_poll_wakes_on_close(self):
        buffer = ProgressBuffer()
        result = {}

        def reader():
            result["read"] = buffer.read(offset=0, wait_seconds=10.0)

        thread = threading.Thread(target=reader)
        thread.start()
        time.sleep(0.05)
        buffer.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        events, done, _ = result["read"]
        assert events == [] and done is True

    def test_offset_past_end_returns_empty_not_error(self):
        buffer = ProgressBuffer()
        buffer.emit({"type": "a"})
        events, done, next_offset = buffer.read(offset=99)
        assert events == [] and next_offset == 99
        buffer.close()
        events, done, next_offset = buffer.read(offset=99)
        assert done is True and next_offset == 99

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError, match="offset must be >= 0"):
            ProgressBuffer().read(offset=-1)

    def test_emit_after_close_is_dropped(self):
        buffer = ProgressBuffer()
        buffer.emit({"type": "a"})
        buffer.close()
        buffer.emit({"type": "late"})
        buffer.extend([{"type": "later"}])
        assert len(buffer) == 1
        assert buffer.snapshot() == [{"type": "a"}]

    def test_events_are_copied_both_ways(self):
        buffer = ProgressBuffer()
        original = {"type": "a", "nested": 1}
        buffer.emit(original)
        original["type"] = "mutated"
        events, _, _ = buffer.read()
        assert events[0]["type"] == "a"
        events[0]["type"] = "reader-mutated"
        assert buffer.snapshot()[0]["type"] == "a"

    def test_concurrent_writer_and_reader_see_every_event(self):
        buffer = ProgressBuffer()
        total = 200
        collected = []

        def writer():
            for i in range(total):
                buffer.emit({"type": "tick", "i": i})
            buffer.close()

        def reader():
            offset, done = 0, False
            while not done:
                events, done, offset = buffer.read(
                    offset=offset, wait_seconds=5.0)
                collected.extend(events)

        threads = [threading.Thread(target=writer),
                   threading.Thread(target=reader)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not any(t.is_alive() for t in threads)
        assert [e["i"] for e in collected] == list(range(total))

    def test_two_readers_at_different_offsets(self):
        buffer = ProgressBuffer()
        for i in range(5):
            buffer.emit({"i": i})
        head, _, _ = buffer.read(offset=0)
        tail, _, _ = buffer.read(offset=3)
        assert [e["i"] for e in head] == [0, 1, 2, 3, 4]
        assert [e["i"] for e in tail] == [3, 4]


class TestFinishedTurnEviction:
    """A finished turn's live buffer is evicted on persistence: the
    store truncates the event tail to its disk cap and rebuilds a
    closed buffer on restore."""

    def test_persisted_turn_truncates_and_stays_closed(self):
        from repro.server.store import _PERSISTED_EVENTS, TurnState

        turn = TurnState("t-0001", "hello", request_id="req-1")
        for i in range(_PERSISTED_EVENTS + 50):
            turn.events.emit({"type": "tick", "i": i})
        turn.events.close()
        payload = turn.to_payload()
        assert len(payload["events"]) == _PERSISTED_EVENTS
        # The newest events survive eviction, not the oldest.
        assert payload["events"][-1]["i"] == _PERSISTED_EVENTS + 49

        restored = TurnState.from_payload(payload)
        assert restored.request_id == "req-1"
        assert restored.events.closed is True
        events, done, _ = restored.events.read()
        assert done is True and len(events) == _PERSISTED_EVENTS


class TestSpanTailTruncation:
    def test_span_events_capped_with_marker(self):
        trace = {"spans": [
            {"name": f"op.process{i}", "kind": "operator", "start": i,
             "duration": 1, "lane": 0}
            for i in range(10)
        ]}
        events = progress_events_from_trace(trace, limit=4)
        assert len(events) == 5
        assert events[-1] == {"type": "truncated", "dropped_spans": 6}

    def test_uninteresting_kinds_filtered(self):
        trace = {"spans": [
            {"name": "op.process", "kind": "operator"},
            {"name": "record.step", "kind": "record"},
        ]}
        events = progress_events_from_trace(trace)
        assert [e["name"] for e in events] == ["op.process"]
