"""Templated code tools (the Fig. 2 tool style)."""

import pytest

from repro.agent.code_tools import (
    CodeTool,
    code_tool,
    fig2_create_schema_tool,
)
from repro.agent.react import ReActAgent, ScriptedBrain, ToolCall, FinalAnswer
from repro.agent.tools import ToolError, ToolParameter, ToolRegistry


def adder_tool(environment=None):
    return code_tool(
        name="add_numbers",
        summary="Add two numbers with generated code.",
        template="result = {{ a }} + {{ b }}",
        parameters=[
            ToolParameter("a", "int", "first addend"),
            ToolParameter("b", "int", "second addend", required=False,
                          default=10),
        ],
        environment=environment,
    )


class TestCodeToolBasics:
    def test_render_injects_repr(self):
        tool = adder_tool()
        assert tool.render({"a": 2, "b": 3}) == "result = 2 + 3"

    def test_invoke_executes_template(self):
        assert adder_tool().invoke({"a": 2, "b": 3}) == 5

    def test_defaults_applied(self):
        assert adder_tool().invoke({"a": 2}) == 12

    def test_invocation_record_keeps_rendered_source(self):
        tool = adder_tool()
        tool.invoke({"a": 1, "b": 1})
        assert len(tool.invocations) == 1
        assert tool.invocations[0].rendered_source == "result = 1 + 1"
        assert tool.invocations[0].result == 2

    def test_template_must_set_result(self):
        with pytest.raises(ToolError, match="result"):
            code_tool(
                name="bad", summary="s", template="x = 1",
                parameters=[],
            )

    def test_execution_error_wrapped(self):
        tool = code_tool(
            name="boom", summary="s",
            template="result = 1 / {{ divisor }}",
            parameters=[ToolParameter("divisor", "int", "d")],
        )
        with pytest.raises(ToolError, match="ZeroDivisionError"):
            tool.invoke({"divisor": 0})

    def test_argument_validation_inherited(self):
        with pytest.raises(ToolError, match="missing required"):
            adder_tool().invoke({})
        with pytest.raises(ToolError, match="unexpected"):
            adder_tool().invoke({"a": 1, "z": 2})

    def test_free_variable_from_environment(self):
        env = {"base": 100}
        tool = code_tool(
            name="offset", summary="s",
            template="result = base + {{ x }}",
            parameters=[ToolParameter("x", "int", "x")],
            environment=env,
        )
        assert tool.invoke({"x": 5}) == 105

    def test_missing_free_variable_reported(self):
        tool = code_tool(
            name="broken", summary="s",
            template="result = unknown_thing + {{ x }}",
            parameters=[ToolParameter("x", "int", "x")],
        )
        with pytest.raises(ToolError, match="unknown_thing"):
            tool.invoke({"x": 1})

    def test_shared_environment_persists_across_calls(self):
        env = {}
        tool = code_tool(
            name="counter", summary="s",
            template=(
                "count = count + 1 if 'count' in dir() else 1\n"
                "result = count"
            ),
            parameters=[],
            environment=env,
        )
        assert tool.invoke({}) == 1
        assert tool.invoke({}) == 2  # the notebook-kernel behaviour


class TestFig2Tool:
    def test_creates_schema_like_fig2(self):
        tool = fig2_create_schema_tool()
        schema = tool.invoke({
            "schema_name": "Author",
            "schema_description": "Author information from a paper.",
            "field_names": ["name", "email", "affiliation"],
            "field_descriptions": [
                "The author's name", "The e-mail", "The affiliation",
            ],
        })
        assert schema.schema_name() == "Author"
        assert schema.field_names() == ["name", "email", "affiliation"]
        assert schema.field_desc("email") == "The e-mail"

    def test_rendered_source_is_runnable_python(self):
        tool = fig2_create_schema_tool()
        tool.invoke({
            "schema_name": "X",
            "schema_description": "d",
            "field_names": ["a"],
            "field_descriptions": ["da"],
        })
        source = tool.invocations[0].rendered_source
        compile(source, "<fig2>", "exec")
        assert "pz.make_schema" in source
        assert "class_name = 'X'" in source

    def test_invalid_field_names_surface_as_tool_errors(self):
        tool = fig2_create_schema_tool()
        with pytest.raises(ToolError, match="SchemaError"):
            tool.invoke({
                "schema_name": "X",
                "schema_description": "d",
                "field_names": ["has space"],
                "field_descriptions": ["d"],
            })


class TestCodeToolsInReActLoop:
    def test_agent_drives_code_tool(self):
        registry = ToolRegistry([adder_tool()])
        brain = ScriptedBrain([
            ToolCall("compute", "add_numbers", {"a": 20, "b": 22}),
            FinalAnswer("done", "computed"),
        ])
        result = ReActAgent(registry, brain).run("add 20 and 22")
        observations = [
            s.content for s in result.trace.steps
            if s.kind == "observation"
        ]
        assert observations == ["42"]
