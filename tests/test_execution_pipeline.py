"""Pipelined executor: equivalence, determinism, batching, thread safety.

The contract under test: the pipelined executor — real worker threads,
bounded queues, optional batching — produces exactly the records the
sequential executor produces, with the same per-operator
``records_in``/``records_out``/``llm_calls`` accounting, for every plan
shape and any thread count, run after run.
"""

from __future__ import annotations

import sys
import threading

import pytest

from repro.core.builtin_schemas import TextFile
from repro.core.dataset import Dataset
from repro.core.schemas import make_schema
from repro.execution.execute import Execute
from repro.execution.executors import ParallelExecutor, SequentialExecutor
from repro.execution.pipeline import PipelinedExecutor
from repro.core.sources import MemorySource
from repro.llm.cache import CallCache
from repro.llm.client import BooleanRequest, SimulatedLLMClient
from repro.llm.clock import VirtualClock
from repro.llm.models import get_model
from repro.llm.oracle import DocumentTruth, global_oracle
from repro.llm.prompts import (
    build_extract_prompt,
    build_filter_prompt,
    extract_prompt_parts,
    filter_prompt_parts,
)
from repro.llm.tokenizer import count_tokens
from repro.llm.usage import LLMUsage, UsageLedger
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.policies import MaxQuality
from repro.physical.context import ExecutionContext

Clinical = make_schema("PipeClinical", "d", {"name": "n", "score": "s"})


def make_source(n=8, dataset_id="pipe-test"):
    docs = []
    for i in range(n):
        text = (
            f"Record {i} about colorectal cancer. "
            f"The Set-{i} dataset is publicly available at "
            f"https://example.org/{i}."
        )
        docs.append(text)
        global_oracle().register(
            text,
            DocumentTruth(
                predicates={"about colorectal cancer": True},
                fields={"name": f"Set-{i}", "score": str(i % 3)},
                difficulty=0.0,
            ),
        )
    return MemorySource(docs, dataset_id=dataset_id, schema=TextFile)


def chosen_plan(dataset, source, **kwargs):
    return (
        Optimizer(MaxQuality(), **kwargs)
        .optimize(dataset.logical_plan(), source)
        .chosen.plan
    )


def run_plan(plan, kind, workers=1, batch=1, cache=None):
    context = ExecutionContext(max_workers=max(workers, 1), cache=cache)
    if kind == "sequential":
        executor = SequentialExecutor(context)
    elif kind == "parallel":
        executor = ParallelExecutor(context, max_workers=workers)
    else:
        executor = PipelinedExecutor(
            context, max_workers=workers, batch_size=batch
        )
    records, stats = executor.execute(plan)
    return records, stats, context


def run_fingerprint(records, stats):
    """Everything that must be interleaving-independent about a run."""
    return (
        [record.to_dict() for record in records],
        [
            (op.records_in, op.records_out, op.llm_calls,
             op.input_tokens, op.output_tokens, round(op.cost_usd, 9))
            for op in stats.operator_stats
        ],
        round(stats.total_cost_usd, 9),
    )


# ----------------------------------------------------------------------
# Plan shapes: streaming, early-stop limit, blocking flush, post-barrier.
# ----------------------------------------------------------------------

def shape_filter_convert(source):
    return (
        Dataset(source).filter("about colorectal cancer").convert(Clinical)
    )


def shape_limit_early(source):
    return (
        Dataset(source)
        .filter("about colorectal cancer")
        .convert(Clinical)
        .limit(3)
    )


def shape_groupby(source):
    return (
        Dataset(source)
        .filter("about colorectal cancer")
        .convert(Clinical)
        .groupby(["score"], [("count", None)])
    )


def shape_sort_limit(source):
    return Dataset(source).convert(Clinical).sort("name").limit(2)


def shape_retrieve(source):
    return (
        Dataset(source)
        .retrieve("colorectal cancer datasets", k=4)
        .convert(Clinical)
    )


SHAPES = [
    shape_filter_convert,
    shape_limit_early,
    shape_groupby,
    shape_sort_limit,
    shape_retrieve,
]


class TestExecutorEquivalence:
    @pytest.mark.parametrize(
        "shape", SHAPES, ids=lambda fn: fn.__name__.replace("shape_", "")
    )
    def test_pipelined_matches_sequential(self, shape):
        source = make_source(dataset_id=f"pipe-eq-{shape.__name__}")
        plan = chosen_plan(shape(source), source)
        baseline = run_fingerprint(*run_plan(plan, "sequential")[:2])
        for workers in (1, 4, 8):
            for batch in (1, 4):
                records, stats, _ = run_plan(
                    plan, "pipelined", workers=workers, batch=batch
                )
                assert run_fingerprint(records, stats) == baseline, (
                    f"workers={workers} batch={batch}"
                )

    def test_repeated_runs_are_deterministic(self):
        source = make_source(dataset_id="pipe-det")
        plan = chosen_plan(shape_filter_convert(source), source)
        outcomes = []
        for _ in range(3):
            records, stats, _ = run_plan(
                plan, "pipelined", workers=4, batch=4
            )
            outcomes.append((
                run_fingerprint(records, stats),
                round(stats.total_time_seconds, 9),
                [round(op.time_seconds, 9)
                 for op in stats.operator_stats],
            ))
        assert outcomes[0] == outcomes[1] == outcomes[2]

    def test_batching_reduces_simulated_time(self):
        source = make_source(dataset_id="pipe-amortize")
        plan = chosen_plan(shape_filter_convert(source), source)
        _, per_record, _ = run_plan(plan, "pipelined", workers=1, batch=1)
        _, batched, _ = run_plan(plan, "pipelined", workers=1, batch=8)
        # Same cost, strictly less simulated wall time: the batch amortizes
        # each model's fixed per-call overhead.
        assert batched.total_cost_usd == pytest.approx(
            per_record.total_cost_usd
        )
        assert batched.total_time_seconds < per_record.total_time_seconds


class TestCallCacheAcrossExecutors:
    def test_caller_cache_hits_every_executor_path(self):
        source = make_source(dataset_id="pipe-cache")
        plan = chosen_plan(shape_filter_convert(source), source)
        cache = CallCache()
        records, stats, _ = run_plan(plan, "sequential", cache=cache)
        assert stats.total_cost_usd > 0
        baseline = [record.to_dict() for record in records]

        for kind, workers, batch in (
            ("sequential", 1, 1),
            ("parallel", 4, 1),
            ("pipelined", 4, 1),
            ("pipelined", 4, 4),
        ):
            warm_records, warm_stats, _ = run_plan(
                plan, kind, workers=workers, batch=batch, cache=cache
            )
            assert [r.to_dict() for r in warm_records] == baseline
            # Cache hits are metered as zero-cost ":cached" ledger entries,
            # so a fully-warm run bills no dollars and no tokens.
            assert warm_stats.total_cost_usd == 0, (kind, batch)
            assert all(
                op.input_tokens == 0 and op.output_tokens == 0
                for op in warm_stats.operator_stats
            ), (kind, batch)


class TestStatsAttribution:
    @pytest.mark.parametrize("kind,workers,batch", [
        ("sequential", 1, 1),
        ("parallel", 4, 1),
        ("pipelined", 4, 1),
        ("pipelined", 4, 4),
    ])
    def test_op_times_sum_to_clock_busy(self, kind, workers, batch):
        source = make_source(dataset_id=f"pipe-attr-{kind}-{batch}")
        plan = chosen_plan(shape_filter_convert(source), source)
        _, stats, context = run_plan(
            plan, kind, workers=workers, batch=batch
        )
        accounted = sum(op.time_seconds for op in stats.operator_stats)
        assert accounted == pytest.approx(
            context.clock.total_busy, rel=1e-9
        )
        # The scan row carries the residual, so it must be non-negative.
        assert stats.operator_stats[0].time_seconds >= 0


class TestDeepChains:
    def test_long_operator_chain_does_not_recurse(self):
        """The record push loop must be iterative: a 150-op chain would
        blow a recursive depth-first walk at this recursion limit."""
        source = make_source(n=4, dataset_id="pipe-deep")
        dataset = Dataset(source)
        for index in range(150):
            dataset = dataset.filter(
                lambda record, _i=index: True
            )
        plan = chosen_plan(dataset, source, lint=False)
        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(220)
        try:
            records, stats, _ = run_plan(plan, "sequential")
        finally:
            sys.setrecursionlimit(limit)
        assert len(records) == 4
        assert stats.operator_stats[-1].records_out == 4


class TestThreadSafetyStress:
    def test_clock_concurrent_advances(self):
        clock = VirtualClock(lanes=8)
        per_thread, advances = 200, 0.01

        def worker(lane):
            clock.use_lane(lane)
            for _ in range(per_thread):
                clock.advance(advances)

        threads = [
            threading.Thread(target=worker, args=(lane,)) for lane in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert clock.total_busy == pytest.approx(8 * per_thread * advances)
        assert clock.elapsed == pytest.approx(per_thread * advances)

    def test_ledger_concurrent_records(self):
        ledger = UsageLedger()
        per_thread = 300

        def worker(index):
            for call in range(per_thread):
                ledger.record(LLMUsage(
                    model=f"m{index}", input_tokens=10, output_tokens=1,
                    cost_usd=0.001, latency_seconds=0.1,
                ))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(ledger) == 8 * per_thread
        totals = ledger.total()
        assert totals.calls == 8 * per_thread
        assert totals.cost_usd == pytest.approx(8 * per_thread * 0.001)

    def test_call_cache_concurrent_access(self):
        cache = CallCache()
        errors = []

        def worker(index):
            try:
                for call in range(500):
                    key = CallCache.make_key(
                        "m", "judge", "stress", f"k{call % 50}"
                    )
                    hit, value = cache.lookup(key)
                    if hit:
                        assert value == call % 50
                    else:
                        cache.store(key, call % 50)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

    def test_pipelined_stress_repeated_high_concurrency(self):
        source = make_source(n=12, dataset_id="pipe-stress")
        plan = chosen_plan(shape_filter_convert(source), source)
        baseline = run_fingerprint(*run_plan(plan, "sequential")[:2])
        for _ in range(5):
            records, stats, _ = run_plan(
                plan, "pipelined", workers=8, batch=3
            )
            assert run_fingerprint(records, stats) == baseline


class TestBatchedClient:
    def _client(self, model="gpt-4o-mini"):
        clock = VirtualClock(lanes=1)
        ledger = UsageLedger()
        return SimulatedLLMClient(
            get_model(model), clock=clock, ledger=ledger,
            oracle=global_oracle(),
        ), clock, ledger

    def _requests(self, n=6):
        requests = []
        for i in range(n):
            text = (
                f"Batch doc {i} about colorectal cancer screening with "
                f"registry follow-up number {i}."
            )
            global_oracle().register(
                text,
                DocumentTruth(
                    predicates={"about cancer": True}, difficulty=0.0
                ),
            )
            requests.append(BooleanRequest(
                predicate="about cancer", document=text, operation="filter",
            ))
        return requests

    def test_batch_matches_per_record_except_overhead(self):
        requests = self._requests()
        client_a, clock_a, ledger_a = self._client()
        singles = [client_a.judge(request) for request in requests]
        client_b, clock_b, ledger_b = self._client()
        batched = client_b.run_batch(requests)

        assert [r.value for r in singles] == [r.value for r in batched]
        assert [r.text for r in singles] == [r.text for r in batched]
        total_a, total_b = ledger_a.total(), ledger_b.total()
        assert total_a.calls == total_b.calls == len(requests)
        assert total_a.input_tokens == total_b.input_tokens
        assert total_a.output_tokens == total_b.output_tokens
        assert total_a.cost_usd == pytest.approx(total_b.cost_usd)
        # Every call after the first saves exactly the model's fixed
        # per-call overhead; nothing else moves.
        overhead = get_model("gpt-4o-mini").overhead_seconds
        saved = (len(requests) - 1) * overhead
        assert clock_a.total_busy - clock_b.total_busy == pytest.approx(saved)

    def test_prompt_parts_tokenize_additively(self):
        document = (
            "A cohort study of colorectal screening outcomes across "
            "twelve registries, with biomarker follow-up analysis."
        )
        prefix, suffix = filter_prompt_parts("about colorectal cancer")
        full = build_filter_prompt("about colorectal cancer", document)
        assert prefix + document + suffix == full
        assert (
            count_tokens(prefix) + count_tokens(document)
            + count_tokens(suffix)
        ) == count_tokens(full)

        fields = {"name": "the dataset name", "url": "the dataset url"}
        prefix, suffix = extract_prompt_parts(
            fields, "clinical datasets", one_to_many=True
        )
        full = build_extract_prompt(
            fields, document, "clinical datasets", one_to_many=True
        )
        assert prefix + document + suffix == full
        assert (
            count_tokens(prefix) + count_tokens(document)
            + count_tokens(suffix)
        ) == count_tokens(full)


class TestExecuteWireThrough:
    def test_execute_pipelined_entry_point(self):
        source = make_source(dataset_id="pipe-entry")
        dataset = shape_filter_convert(source)
        records, sequential = Execute(dataset, policy=MaxQuality())
        piped_records, piped = Execute(
            dataset, policy=MaxQuality(), executor="pipelined",
            max_workers=4, batch_size=4,
        )
        assert [r.to_dict() for r in piped_records] == [
            r.to_dict() for r in records
        ]
        assert sequential.executor == "sequential"
        assert piped.executor == "pipelined"
        assert piped.batch_size == 4
        assert piped.to_dict()["executor"] == "pipelined"
        # Batching + threading shrink the simulated makespan.
        assert (
            piped.plan_stats.total_time_seconds
            < sequential.plan_stats.total_time_seconds
        )

    def test_execute_rejects_unknown_executor(self):
        source = make_source(dataset_id="pipe-entry-bad")
        with pytest.raises(ValueError, match="unknown executor"):
            Execute(Dataset(source), executor="warp-drive")
