"""Ground-truth oracle: registration, lookup, persistence."""

import pytest

from repro.llm.oracle import (
    DocumentTruth,
    GroundTruthRegistry,
    fingerprint_text,
)

DOC = "This paper studies colorectal cancer in a cohort of 500 patients."


@pytest.fixture()
def registry():
    reg = GroundTruthRegistry()
    reg.register(
        DOC,
        DocumentTruth(
            predicates={"about colorectal cancer": True, "about birds": False},
            fields={"cohort_size": 500, "title": "A study"},
            difficulty=0.1,
            label="doc-1",
        ),
    )
    return reg


class TestFingerprint:
    def test_stable(self):
        assert fingerprint_text(DOC) == fingerprint_text(DOC)

    def test_whitespace_insensitive(self):
        assert fingerprint_text("a  b\nc") == fingerprint_text("a b c")

    def test_different_text_different_fingerprint(self):
        assert fingerprint_text("aaa") != fingerprint_text("bbb")


class TestLookup:
    def test_lookup_registered(self, registry):
        truth = registry.lookup(DOC)
        assert truth is not None
        assert truth.label == "doc-1"

    def test_lookup_unknown_returns_none(self, registry):
        assert registry.lookup("never seen") is None

    def test_contains_by_fingerprint(self, registry):
        assert fingerprint_text(DOC) in registry

    def test_predicate_exact_match(self, registry):
        assert registry.predicate_truth(DOC, "about colorectal cancer") is True
        assert registry.predicate_truth(DOC, "about birds") is False

    def test_predicate_case_and_spacing_insensitive(self, registry):
        assert (
            registry.predicate_truth(DOC, "  About   Colorectal CANCER ")
            is True
        )

    def test_predicate_substring_match(self, registry):
        # A longer phrasing containing the registered predicate still hits.
        assert (
            registry.predicate_truth(
                DOC, "The papers are about colorectal cancer"
            )
            is True
        )

    def test_predicate_unknown_returns_none(self, registry):
        assert registry.predicate_truth(DOC, "mentions zebrafish") is None

    def test_field_truth(self, registry):
        known, value = registry.field_truth(DOC, "cohort_size")
        assert known and value == 500

    def test_field_truth_case_insensitive(self, registry):
        known, value = registry.field_truth(DOC, "TITLE")
        assert known and value == "A study"

    def test_field_unknown(self, registry):
        known, value = registry.field_truth(DOC, "nonexistent")
        assert not known and value is None

    def test_difficulty_default_for_unknown(self, registry):
        assert registry.difficulty("unseen text", default=0.7) == 0.7
        assert registry.difficulty(DOC) == pytest.approx(0.1)


class TestPersistence:
    def test_save_and_load_roundtrip(self, registry, tmp_path):
        path = tmp_path / "facts.json"
        registry.save(path)
        fresh = GroundTruthRegistry()
        loaded = fresh.load(path)
        assert loaded == len(registry) == 1
        assert fresh.predicate_truth(DOC, "about colorectal cancer") is True
        known, value = fresh.field_truth(DOC, "cohort_size")
        assert known and value == 500

    def test_clear(self, registry):
        registry.clear()
        assert len(registry) == 0


class TestDocumentTruth:
    def test_dict_roundtrip(self):
        truth = DocumentTruth(
            predicates={"p": True},
            fields={"f": [1, 2]},
            difficulty=0.3,
            label="x",
        )
        restored = DocumentTruth.from_dict(truth.to_dict())
        assert restored.predicates == truth.predicates
        assert restored.fields == truth.fields
        assert restored.difficulty == truth.difficulty
        assert restored.label == truth.label
