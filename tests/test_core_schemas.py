"""Schema system: metaclass collection, make_schema, signatures."""

import pytest

from repro.core.builtin_schemas import File, PDFFile, TextFile
from repro.core.errors import SchemaError
from repro.core.fields import NumericField, StringField
from repro.core.schemas import Schema, make_schema, schema_signature


class Author(Schema):
    """Author information extracted from a paper."""

    name = StringField(desc="The author's full name", required=True)
    email = StringField(desc="The author's e-mail")


class TestDeclarativeSchemas:
    def test_fields_collected_in_order(self):
        assert Author.field_names() == ["name", "email"]

    def test_docstring_is_description(self):
        assert Author.schema_description() == (
            "Author information extracted from a paper."
        )

    def test_field_desc_lookup(self):
        assert Author.field_desc("name") == "The author's full name"

    def test_field_desc_unknown_raises(self):
        with pytest.raises(SchemaError, match="no field"):
            Author.field_desc("nope")

    def test_inheritance_merges_fields(self):
        class ExtendedAuthor(Author):
            """More author info."""

            affiliation = StringField(desc="Affiliation")

        assert ExtendedAuthor.field_names() == [
            "name", "email", "affiliation"
        ]

    def test_schemas_not_instantiable(self):
        with pytest.raises(TypeError):
            Author()

    def test_new_fields_vs(self):
        class Derived(Schema):
            """d"""

            name = StringField(desc="n")
            extra = StringField(desc="e")

        assert Derived.new_fields_vs(Author) == ["extra"]

    def test_json_schema_shape(self):
        js = Author.json_schema()
        assert js["title"] == "Author"
        assert js["required"] == ["name"]
        assert js["properties"]["email"]["type"] == "string"

    def test_field_descriptions_mapping(self):
        assert Author.field_descriptions()["email"] == "The author's e-mail"


class TestBuiltins:
    def test_pdf_inherits_file_fields(self):
        assert "filename" in PDFFile.field_map()
        assert "text_contents" in PDFFile.field_map()
        assert "page_count" in PDFFile.field_map()

    def test_text_field_names(self):
        assert "text_contents" in TextFile.text_field_names()
        assert "contents" not in TextFile.text_field_names()  # bytes


class TestMakeSchema:
    def test_from_dict_of_descriptions(self):
        Made = make_schema("Made", "A made schema", {"a": "field a"})
        assert Made.field_names() == ["a"]
        assert Made.schema_description() == "A made schema"

    def test_from_parallel_lists(self):
        Made = make_schema(
            "Made2", "desc", ["x", "y"], field_descriptions=["dx", "dy"]
        )
        assert Made.field_desc("y") == "dy"

    def test_field_objects_accepted(self):
        Made = make_schema("Made3", "d", {"n": NumericField(desc="num")})
        assert isinstance(Made.field_map()["n"], NumericField)

    def test_description_field_name_allowed(self):
        # The paper's ClinicalData has a field literally named description.
        Made = make_schema("ClinicalData", "d", {"description": "the desc"})
        assert Made.schema_description() == "d"
        assert Made.field_desc("description") == "the desc"

    def test_invalid_schema_name(self):
        with pytest.raises(SchemaError):
            make_schema("Not Valid", "d", {"a": "x"})

    def test_invalid_field_name_with_space(self):
        with pytest.raises(SchemaError, match="identifier"):
            make_schema("S", "d", {"bad name": "x"})

    def test_underscore_field_rejected(self):
        with pytest.raises(SchemaError):
            make_schema("S", "d", {"_private": "x"})

    def test_empty_fields_rejected(self):
        with pytest.raises(SchemaError):
            make_schema("S", "d", {})

    def test_mismatched_lists_rejected(self):
        with pytest.raises(SchemaError):
            make_schema("S", "d", ["a", "b"], field_descriptions=["only one"])

    def test_bad_spec_type_rejected(self):
        with pytest.raises(SchemaError):
            make_schema("S", "d", {"a": 42})

    def test_custom_base(self):
        Made = make_schema("PdfPlus", "d", {"extra": "e"}, base=PDFFile)
        assert "text_contents" in Made.field_map()
        assert "extra" in Made.field_map()


class TestSchemaSignature:
    def test_same_shape_same_signature(self):
        a = make_schema("Same", "d", {"x": "dx"})
        b = make_schema("Same", "d", {"x": "dx"})
        assert schema_signature(a) == schema_signature(b)

    def test_different_fields_different_signature(self):
        a = make_schema("Same", "d", {"x": "dx"})
        b = make_schema("Same", "d", {"y": "dy"})
        assert schema_signature(a) != schema_signature(b)

    def test_name_in_signature(self):
        a = make_schema("A", "d", {"x": "dx"})
        assert schema_signature(a).startswith("A#")
