"""Quality metrics and the perfect-reference executor."""

import pytest

from repro.core.builtin_schemas import TextFile
from repro.core.dataset import Dataset
from repro.core.records import DataRecord
from repro.core.schemas import make_schema
from repro.core.sources import MemorySource
from repro.evaluation.metrics import (
    Scorecard,
    extraction_quality,
    filter_quality,
    value_matches,
)
from repro.evaluation.reference import reference_output
from repro.llm.oracle import DocumentTruth, GroundTruthRegistry

Clinical = make_schema("Clinical", "d", {"name": "n", "url": "u"})


def build_world():
    """Three docs: two relevant (one with a dataset), one distractor."""
    oracle = GroundTruthRegistry()
    docs = {}
    specs = [
        ("rel-with-data", True, [{"name": "SetA", "url": "http://a"}]),
        ("rel-no-data", True, []),
        ("irrelevant", False, []),
    ]
    for label, relevant, instances in specs:
        text = f"Document {label}. " + ("colorectal cancer. " if relevant
                                        else "cooking pasta. ") * 3
        docs[label] = DataRecord.from_dict(
            TextFile, {"text_contents": text, "filename": label}
        )
        oracle.register(
            text,
            DocumentTruth(
                predicates={"about colorectal cancer": relevant},
                fields={"__instances__": instances},
                difficulty=0.0,
                label=label,
            ),
        )
    return oracle, docs


class TestScorecard:
    def test_perfect(self):
        card = Scorecard(5, 0, 0)
        assert card.precision == card.recall == card.f1 == 1.0

    def test_zero_denominators(self):
        card = Scorecard(0, 0, 0)
        assert card.precision == 1.0
        assert card.recall == 1.0

    def test_mixed(self):
        card = Scorecard(3, 1, 2)
        assert card.precision == pytest.approx(0.75)
        assert card.recall == pytest.approx(0.6)
        assert 0 < card.f1 < 1


class TestValueMatches:
    def test_exact(self):
        assert value_matches("TCGA", "TCGA")

    def test_case_whitespace_normalized(self):
        assert value_matches("  tcga coad ", "TCGA COAD")

    def test_prefix_containment(self):
        assert value_matches("TCGA-COAD", "TCGA-COAD dataset release")

    def test_short_strings_no_containment(self):
        assert not value_matches("a", "abc")

    def test_none_matching(self):
        assert value_matches(None, None)
        assert not value_matches(None, "x")


class TestFilterQuality:
    def test_perfect_filter(self):
        oracle, docs = build_world()
        kept = [docs["rel-with-data"], docs["rel-no-data"]]
        card = filter_quality(
            kept, list(docs.values()), "about colorectal cancer",
            oracle=oracle,
        )
        assert card.f1 == 1.0

    def test_false_positive_counted(self):
        oracle, docs = build_world()
        kept = list(docs.values())  # kept the distractor too
        card = filter_quality(
            kept, list(docs.values()), "about colorectal cancer",
            oracle=oracle,
        )
        assert card.false_positives == 1
        assert card.precision < 1.0

    def test_false_negative_counted(self):
        oracle, docs = build_world()
        card = filter_quality(
            [docs["rel-with-data"]], list(docs.values()),
            "about colorectal cancer", oracle=oracle,
        )
        assert card.false_negatives == 1

    def test_unknown_docs_ignored(self):
        oracle, docs = build_world()
        unknown = DataRecord.from_dict(
            TextFile, {"text_contents": "brand new text"}
        )
        card = filter_quality(
            [], [unknown], "about colorectal cancer", oracle=oracle
        )
        assert card.true_positives == card.false_negatives == 0


class TestExtractionQuality:
    def test_perfect_extraction(self):
        oracle, docs = build_world()
        source = docs["rel-with-data"]
        output = source.derive(Clinical, {"name": "SetA", "url": "http://a"})
        card = extraction_quality(
            [output], list(docs.values()), ["name", "url"], oracle=oracle
        )
        assert card.f1 == 1.0

    def test_missed_instance_is_false_negative(self):
        oracle, docs = build_world()
        card = extraction_quality(
            [], list(docs.values()), ["name", "url"], oracle=oracle
        )
        assert card.false_negatives == 1

    def test_wrong_values_are_false_positive_and_negative(self):
        oracle, docs = build_world()
        source = docs["rel-with-data"]
        output = source.derive(
            Clinical, {"name": "Garbage", "url": "http://wrong"}
        )
        card = extraction_quality(
            [output], list(docs.values()), ["name", "url"], oracle=oracle
        )
        assert card.false_positives == 1
        assert card.false_negatives == 1

    def test_hallucinated_instance_from_empty_doc(self):
        oracle, docs = build_world()
        source = docs["rel-no-data"]
        output = source.derive(Clinical, {"name": "Ghost", "url": "http://g"})
        card = extraction_quality(
            [output], list(docs.values()), ["name", "url"], oracle=oracle
        )
        assert card.false_positives == 1


class TestReferenceOutput:
    def test_perfect_pipeline(self):
        oracle, docs = build_world()
        source = MemorySource(
            list(docs.values()), dataset_id="ref-test", schema=TextFile
        )
        dataset = (
            Dataset(source)
            .filter("about colorectal cancer")
            .convert(Clinical, cardinality="one_to_many")
        )
        output = reference_output(
            dataset.logical_plan(), source, oracle=oracle
        )
        assert len(output) == 1
        assert output[0].name == "SetA"

    def test_reference_relational_ops(self):
        oracle, docs = build_world()
        source = MemorySource(
            list(docs.values()), dataset_id="ref-test2", schema=TextFile
        )
        dataset = Dataset(source).count()
        output = reference_output(
            dataset.logical_plan(), source, oracle=oracle
        )
        assert output[0].count == 3

    def test_reference_udf_filter(self):
        oracle, docs = build_world()
        source = MemorySource(
            list(docs.values()), dataset_id="ref-test3", schema=TextFile
        )
        dataset = Dataset(source).filter(
            lambda r: r.filename == "irrelevant"
        )
        output = reference_output(
            dataset.logical_plan(), source, oracle=oracle
        )
        assert len(output) == 1


class TestPolicyReport:
    def _dataset(self):
        oracle, docs = build_world()
        # Use the global oracle so Execute's default context sees truths.
        from repro.llm.oracle import global_oracle

        for record in docs.values():
            truth = oracle.lookup(record.document_text())
            global_oracle().register(record.document_text(), truth)
        source = MemorySource(
            list(docs.values()), dataset_id="report-test", schema=TextFile
        )
        return (
            Dataset(source)
            .filter("about colorectal cancer")
            .convert(Clinical, cardinality="one_to_many")
        )

    def test_evaluate_policies_produces_rows(self):
        import repro as pz
        from repro.evaluation.report import evaluate_policies

        rows = evaluate_policies(
            self._dataset(), [pz.MaxQuality(), pz.MinCost()]
        )
        assert len(rows) == 2
        assert rows[0].policy == "max-quality"
        assert rows[0].filter_f1 is not None
        assert rows[0].extraction_f1 is not None
        assert rows[0].cost_usd > rows[1].cost_usd

    def test_markdown_report_renders_table(self):
        import repro as pz
        from repro.evaluation.report import (
            evaluate_policies,
            markdown_report,
        )

        rows = evaluate_policies(self._dataset(), [pz.MaxQuality()])
        text = markdown_report(rows, title="Test table")
        assert "## Test table" in text
        assert "| max-quality |" in text
        separator_rows = [
            line for line in text.splitlines()
            if line.startswith("|---")
        ]
        assert len(separator_rows) == 1

    def test_report_without_semantic_ops_uses_dashes(self):
        import repro as pz
        from repro.evaluation.report import (
            evaluate_policies,
            markdown_report,
        )

        source = MemorySource(
            ["a", "b"], dataset_id="plain-report", schema=TextFile
        )
        rows = evaluate_policies(
            Dataset(source).limit(1), [pz.MinCost()]
        )
        assert rows[0].filter_f1 is None
        assert "—" in markdown_report(rows)
