"""The provenance determinism contract.

Three promises, pinned across executors, worker counts, and batch sizes
(mirroring ``test_obs_determinism.py`` for traces):

1. **Identical graphs.** All three executors produce byte-identical
   serialized provenance graphs (via ``ProvenanceGraph.signature()``)
   for the same plan, at any worker count and batch size, run after run.
2. **Identical explanations.** ``why`` derivation trees and ``why_not``
   fate reports render character-identically regardless of which
   executor produced the graph.
3. **Zero observer effect.** A provenance-recorded run returns
   byte-identical records and stats to an unrecorded run, and adds zero
   LLM calls.
"""

import sys

import pytest

from repro.obs.provenance import ProvenanceRecorder
from repro.obs import render_why, render_why_not

sys.path.insert(0, "tests")
from test_execution_pipeline import (
    chosen_plan,
    make_source,
    run_fingerprint,
    run_plan,
    shape_filter_convert,
    shape_groupby,
    shape_limit_early,
    shape_retrieve,
)
from repro.physical.context import ExecutionContext
from repro.execution.executors import ParallelExecutor, SequentialExecutor
from repro.execution.pipeline import PipelinedExecutor

# Every executor configuration the contract covers.  Batch sizes only
# apply to the pipelined executor (the others ignore them).
CONFIGS = [
    ("sequential", 1, 1),
    ("parallel", 1, 1),
    ("parallel", 4, 1),
    ("parallel", 8, 1),
    ("pipelined", 1, 1),
    ("pipelined", 4, 1),
    ("pipelined", 8, 1),
    ("pipelined", 4, 4),
    ("pipelined", 8, 4),
]

SHAPES = [
    shape_filter_convert,   # filter_rejected drops, convert fanout
    shape_limit_early,      # limit_cutoff drops
    shape_groupby,          # aggregate_fold drops, N:1 emits
    shape_retrieve,         # retrieve_cutoff drops
]


def run_recorded(plan, kind, workers=1, batch=1):
    recorder = ProvenanceRecorder()
    context = ExecutionContext(
        max_workers=max(workers, 1), provenance=recorder
    )
    if kind == "sequential":
        executor = SequentialExecutor(context)
    elif kind == "parallel":
        executor = ParallelExecutor(context, max_workers=workers)
    else:
        executor = PipelinedExecutor(
            context, max_workers=workers, batch_size=batch
        )
    records, stats = executor.execute(plan)
    return records, stats, recorder.finalize(records)


@pytest.fixture(scope="module")
def plans():
    built = {}
    for shape in SHAPES:
        source = make_source(8, f"prov-det-{shape.__name__}")
        built[shape.__name__] = chosen_plan(shape(source), source)
    return built


@pytest.fixture(scope="module")
def baselines(plans):
    """Sequential-executor graphs: the canonical answer per shape."""
    return {
        name: run_recorded(plan, "sequential")[2]
        for name, plan in plans.items()
    }


def batched(plan, batch):
    return plan.with_batch_size(batch) if batch > 1 else plan


class TestGraphIdentity:
    @pytest.mark.parametrize(
        "shape", SHAPES, ids=lambda fn: fn.__name__.replace("shape_", "")
    )
    @pytest.mark.parametrize("kind,workers,batch", CONFIGS)
    def test_graph_byte_identical_to_sequential(
            self, plans, baselines, shape, kind, workers, batch):
        plan = batched(plans[shape.__name__], batch)
        graph = run_recorded(plan, kind, workers=workers, batch=batch)[2]
        baseline = baselines[shape.__name__]
        assert graph.signature() == baseline.signature()
        assert graph.to_json() == baseline.to_json()

    def test_graph_identical_across_repeated_runs(self, plans):
        plan = plans["shape_filter_convert"]
        signatures = {
            run_recorded(plan, "pipelined", workers=4)[2].signature()
            for _ in range(3)
        }
        assert len(signatures) == 1

    def test_node_ids_consecutive_and_events_ordered_by_op(self, baselines):
        for graph in baselines.values():
            assert [n["id"] for n in graph.nodes] == list(
                range(1, len(graph.nodes) + 1))
            op_indices = [e["op"] for e in graph.events]
            assert op_indices == sorted(op_indices)


class TestExplanationIdentity:
    @pytest.mark.parametrize("kind,workers,batch", CONFIGS)
    def test_why_renders_identically(
            self, plans, baselines, kind, workers, batch):
        name = "shape_filter_convert"
        plan = batched(plans[name], batch)
        graph = run_recorded(plan, kind, workers=workers, batch=batch)[2]
        baseline = baselines[name]
        assert graph.output_ids == baseline.output_ids
        for output_id in graph.output_ids:
            assert render_why(graph.why(output_id)) == render_why(
                baseline.why(output_id))

    @pytest.mark.parametrize("kind,workers,batch", CONFIGS)
    def test_why_not_renders_identically(
            self, plans, baselines, kind, workers, batch):
        # The limit shape both drops (limit_cutoff) and derives, so the
        # fate report exercises every branch of the renderer.
        name = "shape_limit_early"
        plan = batched(plans[name], batch)
        graph = run_recorded(plan, kind, workers=workers, batch=batch)[2]
        baseline = baselines[name]
        source_id = f"prov-det-{name}"
        assert render_why_not(graph.why_not(source_id)) == render_why_not(
            baseline.why_not(source_id))


class TestZeroObserverEffect:
    @pytest.mark.parametrize("kind,workers,batch", [
        ("sequential", 1, 1),
        ("parallel", 4, 1),
        ("pipelined", 4, 1),
        ("pipelined", 4, 4),
    ])
    def test_recorded_run_matches_unrecorded(
            self, plans, kind, workers, batch):
        plan = batched(plans["shape_groupby"], batch)
        records_u, stats_u, _ = run_plan(
            plan, kind, workers=workers, batch=batch)
        records_r, stats_r, graph = run_recorded(
            plan, kind, workers=workers, batch=batch)
        assert run_fingerprint(records_r, stats_r) == run_fingerprint(
            records_u, stats_u)
        assert len(graph.nodes) > 0

    def test_recording_adds_no_llm_calls(self, plans):
        plan = plans["shape_filter_convert"]
        _, stats_u, _ = run_plan(plan, "pipelined", workers=4)
        _, stats_r, _ = run_recorded(plan, "pipelined", workers=4)
        unrecorded = sum(op.llm_calls for op in stats_u.operator_stats)
        recorded = sum(op.llm_calls for op in stats_r.operator_stats)
        assert recorded == unrecorded
