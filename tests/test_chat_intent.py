"""The deterministic NL -> tool-call planner."""

import pytest

from repro.chat.intent import PalimpChatBrain, plan_requests
from repro.chat.workspace import PipelineWorkspace


@pytest.fixture()
def workspace():
    return PipelineWorkspace()


def tool_names(message, workspace):
    return [c.tool_name for c in plan_requests(message, workspace)]


class TestLoadIntent:
    def test_quoted_path(self, workspace):
        calls = plan_requests('load the files from "./papers"', workspace)
        assert calls[0].tool_name == "load_dataset"
        assert calls[0].arguments == {"source": "./papers"}

    def test_path_token(self, workspace):
        calls = plan_requests("upload data/papers please", workspace)
        assert calls[0].arguments["source"] == "data/papers"

    def test_registered_dataset_id(self, workspace):
        from repro.core.sources import MemorySource, register_datasource

        register_datasource(
            MemorySource(["x"], dataset_id="intent-demo"), overwrite=True
        )
        calls = plan_requests(
            "please load the intent-demo dataset", workspace
        )
        assert calls[0].arguments["source"] == "intent-demo"


class TestFilterIntent:
    def test_about_phrasing(self, workspace):
        calls = plan_requests(
            "keep only the papers about colorectal cancer", workspace
        )
        assert calls[0].tool_name == "filter_dataset"
        assert (
            calls[0].arguments["predicate"]
            == "The documents are about colorectal cancer"
        )

    def test_that_are_about_phrasing(self, workspace):
        calls = plan_requests(
            "I am interested in papers that are about colorectal cancer",
            workspace,
        )
        assert (
            calls[0].arguments["predicate"]
            == "The documents are about colorectal cancer"
        )

    def test_trailing_request_trimmed(self, workspace):
        calls = plan_requests(
            "filter for papers about lung cancer, and I would like a report",
            workspace,
        )
        assert calls[0].arguments["predicate"].endswith("lung cancer")


class TestExtractIntent:
    def test_field_list_parsed(self, workspace):
        calls = plan_requests(
            "extract the dataset name, description and url for any public "
            "dataset used by the study",
            workspace,
        )
        assert [c.tool_name for c in calls] == [
            "create_schema", "convert_dataset"
        ]
        schema_args = calls[0].arguments
        assert schema_args["field_names"] == [
            "dataset_name", "description", "url"
        ]
        assert calls[1].arguments["cardinality"] == "one_to_many"

    def test_default_dataset_fields(self, workspace):
        calls = plan_requests(
            "extract whatever public dataset is used by the study",
            workspace,
        )
        assert calls[0].arguments["schema_name"] == "ClinicalData"
        assert calls[0].arguments["field_names"] == [
            "name", "description", "url"
        ]

    def test_singular_extraction_one_to_one(self, workspace):
        calls = plan_requests(
            "extract the title from the paper", workspace
        )
        assert calls[1].arguments["cardinality"] == "one_to_one"

    def test_explicit_schema_name(self, workspace):
        calls = plan_requests(
            "create a schema called Contract and extract the buyer and "
            "seller",
            workspace,
        )
        schema_calls = [c for c in calls if c.tool_name == "create_schema"]
        assert any(
            c.arguments["schema_name"] == "Contract" for c in schema_calls
        )


class TestOtherIntents:
    @pytest.mark.parametrize("message,target", [
        ("maximize quality please", "quality"),
        ("minimize the cost", "cost"),
        ("optimize for runtime", "runtime"),
        ("minimise time", "runtime"),
    ])
    def test_policy(self, workspace, message, target):
        calls = plan_requests(message, workspace)
        assert calls[0].tool_name == "set_optimization_target"
        assert calls[0].arguments["target"] == target

    def test_execute(self, workspace):
        assert tool_names("run the pipeline", workspace) == [
            "execute_pipeline"
        ]

    def test_stats_question(self, workspace):
        assert tool_names(
            "how much did the LLM invocations cost?", workspace
        ) == ["get_execution_stats"]

    def test_runtime_question(self, workspace):
        assert "get_execution_stats" in tool_names(
            "how long did the workload take?", workspace
        )

    def test_show_records(self, workspace):
        assert tool_names("show the extracted records", workspace) == [
            "show_records"
        ]

    def test_export_code(self, workspace):
        assert "generate_code" in tool_names(
            "can I download the notebook?", workspace
        )

    def test_reset(self, workspace):
        assert tool_names("reset and start over", workspace) == [
            "reset_pipeline"
        ]

    def test_unrecognized_returns_empty(self, workspace):
        assert plan_requests("hello there!", workspace) == []


class TestMultiIntent:
    def test_fig4_style_request_decomposes(self, workspace):
        message = (
            "I am interested in papers that are about colorectal cancer, "
            "and I would like to extract the dataset name, description and "
            "url for any public dataset used by the study"
        )
        assert tool_names(message, workspace) == [
            "filter_dataset", "create_schema", "convert_dataset"
        ]

    def test_policy_and_run_in_one_message(self, workspace):
        assert tool_names("maximize quality and run the pipeline",
                          workspace) == [
            "set_optimization_target", "execute_pipeline"
        ]

    def test_order_follows_message(self, workspace):
        names = tool_names(
            "run the pipeline and then show the results", workspace
        )
        assert names == ["execute_pipeline", "show_records"]


class TestBrain:
    def test_brain_replays_plan_then_summarizes(self, workspace):
        from repro.agent.react import BrainContext, AgentTrace, ToolCall as TC

        brain = PalimpChatBrain(workspace)
        state = {}
        trace = AgentTrace()
        context = BrainContext(
            user_message="run the pipeline",
            registry=None, trace=trace, state=state,
        )
        first = brain.decide(context)
        assert isinstance(first, TC)
        assert first.tool_name == "execute_pipeline"
        second = brain.decide(context)
        from repro.agent.react import FinalAnswer

        assert isinstance(second, FinalAnswer)

    def test_brain_helps_on_unrecognized(self, workspace):
        from repro.agent.react import AgentTrace, BrainContext, FinalAnswer

        brain = PalimpChatBrain(workspace)
        decision = brain.decide(BrainContext(
            user_message="what's the weather?",
            registry=None, trace=AgentTrace(), state={},
        ))
        assert isinstance(decision, FinalAnswer)
        assert "pipeline" in decision.answer.lower() or "load" in (
            decision.answer.lower()
        )


class TestExplainIntent:
    def test_explain_plans_recognized(self, workspace):
        assert tool_names("explain the plans you considered", workspace) == [
            "explain_plans"
        ]

    def test_which_plan_phrasing(self, workspace):
        assert "explain_plans" in tool_names(
            "which plan will you use?", workspace
        )


class TestLoadWithoutSource:
    def test_falls_back_to_listing_datasets(self, workspace):
        calls = plan_requests("load my dataset please", workspace)
        assert [c.tool_name for c in calls] == ["list_datasets"]


class TestParallelismIntent:
    def test_explicit_worker_count(self, workspace):
        calls = plan_requests("use 8 workers please", workspace)
        assert calls[0].tool_name == "set_parallelism"
        assert calls[0].arguments == {"workers": 8}

    def test_in_parallel_defaults_to_four(self, workspace):
        calls = plan_requests("run the pipeline in parallel", workspace)
        names = [c.tool_name for c in calls]
        assert "set_parallelism" in names
        assert "execute_pipeline" in names
        parallel_call = next(
            c for c in calls if c.tool_name == "set_parallelism"
        )
        assert parallel_call.arguments["workers"] == 4
