"""Corpus generators: cardinalities, ground truth, persistence."""

import pytest

from repro.core.fakepdf import is_fake_pdf
from repro.core.sources import DirectorySource
from repro.corpora.common import FACTS_FILENAME, load_corpus_facts
from repro.corpora.legal import LEGAL_PREDICATE, generate_legal_corpus
from repro.corpora.papers import PAPERS_PREDICATE, generate_paper_corpus
from repro.corpora.realestate import (
    REALESTATE_PREDICATE,
    generate_realestate_corpus,
)
from repro.llm.oracle import GroundTruthRegistry, global_oracle


class TestPaperCorpus:
    def test_default_cardinalities(self, papers_dir):
        source = DirectorySource(papers_dir)
        assert len(source) == 11
        records = list(source)
        relevant = [
            r for r in records
            if global_oracle().predicate_truth(
                r.document_text(), PAPERS_PREDICATE
            )
        ]
        assert len(relevant) == 8
        with_datasets = [
            r for r in records
            if global_oracle().field_truth(
                r.document_text(), "__instances__"
            )[1]
        ]
        assert len(with_datasets) == 6

    def test_files_are_fake_pdfs(self, papers_dir):
        pdfs = sorted(papers_dir.glob("*.pdf"))
        assert len(pdfs) == 11
        assert all(is_fake_pdf(p.read_bytes()) for p in pdfs)

    def test_sidecar_written(self, papers_dir):
        assert (papers_dir / FACTS_FILENAME).exists()

    def test_deterministic_regeneration(self, tmp_path):
        a = generate_paper_corpus(tmp_path / "a")
        b = generate_paper_corpus(tmp_path / "b")
        for file_a, file_b in zip(
            sorted(a.glob("*.pdf")), sorted(b.glob("*.pdf"))
        ):
            assert file_a.read_bytes() == file_b.read_bytes()

    def test_custom_sizes(self, tmp_path):
        directory = generate_paper_corpus(
            tmp_path / "big", n_papers=30, n_relevant=20, n_with_datasets=15
        )
        assert len(list(directory.glob("*.pdf"))) == 30

    def test_invalid_sizes_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            generate_paper_corpus(tmp_path / "bad", n_papers=5, n_relevant=8)

    def test_recycled_dataset_names_unique(self, tmp_path):
        directory = generate_paper_corpus(
            tmp_path / "huge", n_papers=20, n_relevant=20, n_with_datasets=20
        )
        oracle = global_oracle()
        names = []
        for record in DirectorySource(directory):
            known, instances = oracle.field_truth(
                record.document_text(), "__instances__"
            )
            names.extend(i["name"] for i in instances)
        assert len(names) == len(set(names)) == 20

    def test_sidecar_reload_into_fresh_oracle(self, papers_dir):
        fresh = GroundTruthRegistry()
        loaded = load_corpus_facts(papers_dir, oracle=fresh)
        assert loaded == 11
        record = next(iter(DirectorySource(papers_dir)))
        assert fresh.predicate_truth(
            record.document_text(), PAPERS_PREDICATE
        ) is not None

    def test_load_facts_missing_dir_returns_zero(self, tmp_path):
        assert load_corpus_facts(tmp_path) == 0


class TestLegalCorpus:
    def test_cardinalities(self, legal_dir):
        source = DirectorySource(legal_dir)
        assert len(source) == 20
        responsive = [
            r for r in source
            if global_oracle().predicate_truth(
                r.document_text(), LEGAL_PREDICATE
            )
        ]
        assert len(responsive) == 6

    def test_responsive_docs_have_deal_fields(self, legal_dir):
        for record in DirectorySource(legal_dir):
            text = record.document_text()
            truth = global_oracle().predicate_truth(text, LEGAL_PREDICATE)
            known, buyer = global_oracle().field_truth(text, "buyer")
            if truth:
                assert buyer == "Harbor Holdings LLC"
            else:
                assert buyer is None

    def test_higher_difficulty_than_papers(self, legal_dir, papers_dir):
        legal_doc = next(iter(DirectorySource(legal_dir))).document_text()
        paper_doc = next(iter(DirectorySource(papers_dir))).document_text()
        assert global_oracle().difficulty(legal_doc) > global_oracle(
        ).difficulty(paper_doc)


class TestRealEstateCorpus:
    def test_cardinalities(self, realestate_dir):
        source = DirectorySource(realestate_dir)
        assert len(source) == 24
        waterfront = [
            r for r in source
            if global_oracle().predicate_truth(
                r.document_text(), REALESTATE_PREDICATE
            )
        ]
        assert len(waterfront) == 9

    def test_waterfront_priced_higher(self, realestate_dir):
        prices = {"waterfront": [], "inland": []}
        for record in DirectorySource(realestate_dir):
            text = record.document_text()
            is_wf = global_oracle().predicate_truth(
                text, REALESTATE_PREDICATE
            )
            _, price = global_oracle().field_truth(text, "price")
            prices["waterfront" if is_wf else "inland"].append(price)
        avg = lambda xs: sum(xs) / len(xs)
        assert avg(prices["waterfront"]) > avg(prices["inland"])

    def test_labelled_fields_extractable_heuristically(self, realestate_dir):
        from repro.llm.semantics import extract_field

        record = next(iter(DirectorySource(realestate_dir)))
        text = record.document_text()
        assert extract_field("price", "asking price", text).startswith("$")
        assert extract_field("city", "the city", text)
