"""Hash embeddings: geometry and metering."""

import numpy as np
import pytest

from repro.llm.clock import VirtualClock
from repro.llm.embeddings import (
    EmbeddingModel,
    cosine_similarity,
    embed_text,
)
from repro.llm.usage import UsageLedger


class TestEmbedText:
    def test_unit_norm(self):
        vector = embed_text("the quick brown fox")
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_empty_text_zero_vector(self):
        assert np.linalg.norm(embed_text("")) == 0.0

    def test_deterministic(self):
        a = embed_text("declarative analytics")
        b = embed_text("declarative analytics")
        assert np.allclose(a, b)

    def test_dimension_respected(self):
        assert embed_text("hello world", dim=32).shape == (32,)

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            embed_text("x", dim=0)

    def test_shared_vocabulary_is_closer(self):
        cancer1 = embed_text("colorectal cancer tumor mutation study")
        cancer2 = embed_text("a study of colorectal cancer tumors")
        cooking = embed_text("pasta recipe with garlic and olive oil")
        assert cosine_similarity(cancer1, cancer2) > cosine_similarity(
            cancer1, cooking
        )


class TestCosineSimilarity:
    def test_identical_is_one(self):
        v = embed_text("same text here")
        assert cosine_similarity(v, v) == pytest.approx(1.0)

    def test_zero_vector_gives_zero(self):
        v = embed_text("hello world")
        assert cosine_similarity(v, np.zeros_like(v)) == 0.0

    def test_bounded(self):
        a = embed_text("alpha beta gamma")
        b = embed_text("delta epsilon zeta")
        assert -1.0 <= cosine_similarity(a, b) <= 1.0


class TestEmbeddingModel:
    def test_metering(self):
        ledger = UsageLedger()
        clock = VirtualClock()
        model = EmbeddingModel(clock=clock, ledger=ledger)
        model.embed("some document text to embed")
        assert len(ledger) == 1
        assert ledger.total().cost_usd > 0
        assert clock.elapsed > 0

    def test_embed_batch(self):
        ledger = UsageLedger()
        model = EmbeddingModel(ledger=ledger)
        vectors = model.embed_batch(["one", "two", "three"])
        assert len(vectors) == 3
        assert len(ledger) == 3

    def test_similarity_helper(self):
        model = EmbeddingModel()
        sim = model.similarity(
            "colorectal cancer", "a colorectal cancer study"
        )
        assert sim > 0.3

    def test_default_model_is_embedding_card(self):
        model = EmbeddingModel()
        assert model.model.is_embedding_model
