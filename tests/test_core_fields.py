"""Field types: coercion, validation, equality."""

import pytest

from repro.core.fields import (
    BooleanField,
    BytesField,
    Field,
    ListField,
    NumericField,
    StringField,
    UrlField,
)


class TestBaseField:
    def test_set_name_binding(self):
        class Holder:
            x = Field(desc="a value")

        assert Holder.x.name == "x"

    def test_required_validation(self):
        field = Field(desc="d", required=True)
        assert not field.validate(None)
        assert Field(desc="d").validate(None)

    def test_spec_dict(self):
        field = StringField(desc="hello", required=True)
        field.name = "greeting"
        spec = field.spec()
        assert spec == {
            "name": "greeting",
            "type": "string",
            "desc": "hello",
            "required": True,
        }

    def test_equality_by_shape(self):
        a, b = StringField(desc="x"), StringField(desc="x")
        a.name = b.name = "f"
        assert a == b
        c = StringField(desc="y")
        c.name = "f"
        assert a != c

    def test_different_types_not_equal(self):
        a, b = StringField(desc="x"), NumericField(desc="x")
        a.name = b.name = "f"
        assert a != b


class TestStringField:
    def test_coerce_passthrough(self):
        assert StringField().coerce("abc") == "abc"
        assert StringField().coerce(None) is None

    def test_coerce_converts_numbers(self):
        assert StringField().coerce(42) == "42"


class TestNumericField:
    def test_coerce_string_int(self):
        assert NumericField().coerce("42") == 42

    def test_coerce_string_float(self):
        assert NumericField().coerce("3.14") == pytest.approx(3.14)

    def test_coerce_strips_currency_and_commas(self):
        assert NumericField().coerce("$1,234") == 1234

    def test_uncoercible_string_passes_through(self):
        assert NumericField().coerce("not a number") == "not a number"

    def test_validate_rejects_bool(self):
        assert not NumericField().validate(True)
        assert NumericField().validate(3)


class TestBooleanField:
    @pytest.mark.parametrize("raw,expected", [
        ("true", True), ("Yes", True), ("1", True),
        ("false", False), ("NO", False), ("0", False),
    ])
    def test_coerce_strings(self, raw, expected):
        assert BooleanField().coerce(raw) is expected

    def test_coerce_unknown_string_passes_through(self):
        assert BooleanField().coerce("maybe") == "maybe"


class TestListField:
    def test_wraps_scalars(self):
        assert ListField().coerce("one") == ["one"]

    def test_element_coercion(self):
        field = ListField(element_type=NumericField)
        assert field.coerce(["1", "2.5"]) == [1, 2.5]

    def test_none_passthrough(self):
        assert ListField().coerce(None) is None

    def test_equality_includes_element_type(self):
        a = ListField(element_type=NumericField, desc="d")
        b = ListField(element_type=StringField, desc="d")
        a.name = b.name = "f"
        assert a != b


class TestUrlField:
    def test_validates_scheme(self):
        field = UrlField()
        assert field.validate("https://example.org")
        assert not field.validate("ftp://example.org")
        assert field.validate(None)
