"""Chat-driven versions of the legal and real-estate scenarios."""

import pytest

from repro.chat.session import PalimpChatSession
from repro.core.sources import DirectorySource, register_datasource


@pytest.fixture()
def legal_registered(legal_dir):
    source = DirectorySource(legal_dir, dataset_id="legal-demo")
    register_datasource(source, overwrite=True)
    return source


@pytest.fixture()
def realestate_registered(realestate_dir):
    source = DirectorySource(realestate_dir, dataset_id="realestate-demo")
    register_datasource(source, overwrite=True)
    return source


class TestLegalChat:
    def test_responsive_review_conversation(self, legal_registered):
        session = PalimpChatSession()
        load = session.chat("Load the legal-demo dataset")
        assert load.tool_sequence == ["load_dataset"]
        assert "20 records" in load.text

        build = session.chat(
            "Keep only documents about the Project Harbor merger and "
            "extract the buyer, seller, deal value and effective date"
        )
        assert build.tool_sequence == [
            "filter_dataset", "create_schema", "convert_dataset"
        ]
        schema_call = build.result.trace.tool_calls()[1]
        assert schema_call.arguments["field_names"] == [
            "buyer", "seller", "deal_value", "effective_date"
        ]

        run = session.chat("run the pipeline")
        assert "execute_pipeline" in run.tool_sequence
        assert 4 <= len(session.last_records) <= 8
        buyers = {r.get("buyer") for r in session.last_records}
        assert "Harbor Holdings LLC" in buyers

    def test_policy_switch_mid_conversation(self, legal_registered):
        session = PalimpChatSession()
        session.chat("Load the legal-demo dataset")
        session.chat(
            "Keep only documents about the Project Harbor merger"
        )
        session.chat("Minimize the cost and run the pipeline")
        first_cost = session.last_stats.total_cost_usd
        session.chat("Maximize quality and run the pipeline")
        second_cost = session.last_stats.total_cost_usd
        assert second_cost > first_cost * 10


class TestRealEstateChat:
    def test_waterfront_search_conversation(self, realestate_registered):
        session = PalimpChatSession()
        session.chat("Load the realestate-demo dataset")
        build = session.chat(
            "Keep only the listings about waterfront properties and "
            "extract the address, city and price"
        )
        assert build.tool_sequence == [
            "filter_dataset", "create_schema", "convert_dataset"
        ]
        session.chat("run the pipeline and show the results")
        assert session.last_records is not None
        assert 7 <= len(session.last_records) <= 11

    def test_code_export_for_realestate(self, realestate_registered):
        session = PalimpChatSession()
        session.chat("Load the realestate-demo dataset")
        session.chat("Keep only the listings about waterfront properties")
        session.chat("run the pipeline")
        code = session.generated_code()
        assert "pz.Dataset(source='realestate-demo')" in code
        from repro.chat.codegen import exec_program

        namespace = exec_program(code)
        assert len(namespace["records"]) == len(session.last_records)
