"""The {{variable}} template engine."""

import pytest

from repro.agent.templating import (
    TemplateError,
    render_template,
    template_variables,
)


class TestRender:
    def test_simple_substitution(self):
        assert render_template("hi {{ name }}", {"name": "Ada"}) == "hi Ada"

    def test_no_spaces_inside_braces(self):
        assert render_template("{{x}}", {"x": 1}) == "1"

    def test_multiple_placeholders(self):
        result = render_template(
            "{{ a }} and {{ b }} and {{ a }}", {"a": 1, "b": 2}
        )
        assert result == "1 and 2 and 1"

    def test_dotted_attribute_access(self):
        class Obj:
            value = 42

        assert render_template("{{ o.value }}", {"o": Obj()}) == "42"

    def test_dotted_dict_access(self):
        assert render_template(
            "{{ d.key }}", {"d": {"key": "v"}}
        ) == "v"

    def test_missing_variable_raises(self):
        with pytest.raises(TemplateError, match="not defined"):
            render_template("{{ missing }}", {})

    def test_missing_attribute_raises(self):
        with pytest.raises(TemplateError, match="cannot resolve"):
            render_template("{{ d.nope }}", {"d": {}})

    def test_no_placeholders_passthrough(self):
        assert render_template("plain text", {}) == "plain text"

    def test_fig2_style_code_template(self):
        # The paper's Fig. 2 injects lists into generated code.
        template = (
            'class_name = "{{ schema_name }}"\n'
            "for idx, field in enumerate({{ field_names | repr }}):\n"
            "    desc = {{ field_descriptions | repr }}[idx]"
        )
        rendered = render_template(template, {
            "schema_name": "Author",
            "field_names": ["name", "email"],
            "field_descriptions": ["the name", "the email"],
        })
        assert 'class_name = "Author"' in rendered
        assert "['name', 'email']" in rendered


class TestFilters:
    def test_repr_filter(self):
        assert render_template("{{ x | repr }}", {"x": "a"}) == "'a'"

    def test_json_filter(self):
        assert render_template(
            "{{ x | json }}", {"x": {"k": 1}}
        ) == '{"k": 1}'

    def test_upper_lower(self):
        assert render_template("{{ x | upper }}", {"x": "ab"}) == "AB"
        assert render_template("{{ x | lower }}", {"x": "AB"}) == "ab"

    def test_unknown_filter_raises(self):
        with pytest.raises(TemplateError, match="unknown template filter"):
            render_template("{{ x | nope }}", {"x": 1})

    def test_unknown_filter_error_lists_available_filters(self):
        # Same "available: [...]" formatting as the missing-variable error.
        with pytest.raises(TemplateError) as excinfo:
            render_template("{{ x | nope }}", {"x": 1})
        message = str(excinfo.value)
        assert "available:" in message
        for name in ("json", "lower", "repr", "str", "upper"):
            assert name in message

    def test_chained_filters_apply_left_to_right(self):
        assert render_template(
            "{{ x | lower | repr }}", {"x": "AB"}
        ) == "'ab'"

    def test_chained_filter_unknown_link_raises(self):
        with pytest.raises(TemplateError, match="unknown template filter"):
            render_template("{{ x | upper | nope }}", {"x": "a"})


class TestTemplateVariables:
    def test_roots_listed_in_order(self):
        assert template_variables(
            "{{ b }} {{ a.x }} {{ b | repr }}"
        ) == ["b", "a"]

    def test_empty_template(self):
        assert template_variables("no vars") == []
