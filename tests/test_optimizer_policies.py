"""Optimization policies: ranking and constraints."""

import pytest

from repro.optimizer.cost_model import PlanEstimate
from repro.optimizer.policies import (
    MaxQuality,
    MaxQualityAtFixedCost,
    MaxQualityAtFixedTime,
    MinCost,
    MinCostAtFixedQuality,
    MinTime,
    WeightedBlend,
    parse_policy,
)


def estimate(cost, time, quality):
    return PlanEstimate(
        plan=None, cost_usd=cost, time_seconds=time, quality=quality,
        output_cardinality=1.0,
    )


CHEAP = estimate(0.01, 100.0, 0.6)
FAST = estimate(0.50, 5.0, 0.7)
GOOD = estimate(1.00, 200.0, 0.95)
POOL = [CHEAP, FAST, GOOD]


class TestBasicPolicies:
    def test_max_quality(self):
        assert MaxQuality().choose(POOL) is GOOD

    def test_min_cost(self):
        assert MinCost().choose(POOL) is CHEAP

    def test_min_time(self):
        assert MinTime().choose(POOL) is FAST

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            MaxQuality().choose([])

    def test_max_quality_tiebreak_by_cost(self):
        a = estimate(2.0, 10.0, 0.9)
        b = estimate(1.0, 10.0, 0.9)
        assert MaxQuality().choose([a, b]) is b

    def test_min_cost_tiebreak_by_quality(self):
        a = estimate(1.0, 10.0, 0.5)
        b = estimate(1.0, 10.0, 0.9)
        assert MinCost().choose([a, b]) is b


class TestConstrainedPolicies:
    def test_quality_under_cost_budget(self):
        policy = MaxQualityAtFixedCost(0.60)
        assert policy.choose(POOL) is FAST  # GOOD is over budget

    def test_budget_infeasible_falls_back_to_best(self):
        policy = MaxQualityAtFixedCost(0.001)
        # Nothing feasible: still returns the quality-best plan.
        assert policy.choose(POOL) is GOOD

    def test_quality_under_time_budget(self):
        policy = MaxQualityAtFixedTime(150.0)
        # GOOD is too slow; FAST beats CHEAP on quality among the feasible.
        assert policy.choose(POOL) is FAST

    def test_cost_above_quality_floor(self):
        policy = MinCostAtFixedQuality(0.65)
        assert policy.choose(POOL) is FAST

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MaxQualityAtFixedCost(0)
        with pytest.raises(ValueError):
            MaxQualityAtFixedTime(-1)
        with pytest.raises(ValueError):
            MinCostAtFixedQuality(0.0)
        with pytest.raises(ValueError):
            MinCostAtFixedQuality(1.5)

    def test_describe_includes_constraint(self):
        assert "$0.60" in MaxQualityAtFixedCost(0.60).describe()


class TestWeightedBlend:
    def test_pure_quality_weight_matches_max_quality(self):
        policy = WeightedBlend(cost_weight=0, time_weight=0, quality_weight=1)
        assert policy.choose(POOL) is GOOD

    def test_pure_cost_weight_matches_min_cost(self):
        policy = WeightedBlend(cost_weight=1, time_weight=0, quality_weight=0)
        assert policy.choose(POOL) is CHEAP

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            WeightedBlend(0, 0, 0)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            WeightedBlend(cost_weight=-1)


class TestParsePolicy:
    @pytest.mark.parametrize("name,cls", [
        ("quality", MaxQuality), ("max-quality", MaxQuality),
        ("cost", MinCost), ("MinCost", MinCost),
        ("runtime", MinTime), ("min_time", MinTime),
    ])
    def test_known_names(self, name, cls):
        assert isinstance(parse_policy(name), cls)

    def test_instance_passthrough(self):
        policy = MinCost()
        assert parse_policy(policy) is policy

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            parse_policy("fastest-cheapest-best")
