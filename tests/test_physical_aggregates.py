"""Aggregates, group-by, projection, limit, retrieve."""

import pytest

from repro.core.builtin_schemas import TextFile
from repro.core.logical import (
    AggFunc,
    Aggregate,
    GroupByAggregate,
    LimitScan,
    Project,
    RetrieveScan,
)
from repro.core.records import DataRecord
from repro.core.schemas import make_schema
from repro.physical.aggregates import AggregateOp, GroupByOp
from repro.physical.base import StreamEstimate
from repro.physical.context import ExecutionContext
from repro.physical.retrieve import RetrieveOp
from repro.physical.structural import LimitOp, ProjectOp

Listing = make_schema(
    "Listing", "A property listing",
    {"city": "The city", "price": "The price"},
)


def listings():
    rows = [
        {"city": "Rome", "price": 100},
        {"city": "Rome", "price": 300},
        {"city": "Oslo", "price": 200},
    ]
    return [DataRecord.from_dict(Listing, row) for row in rows]


@pytest.fixture()
def context():
    return ExecutionContext()


def run_blocking(op, records, context):
    op.open(context)
    for record in records:
        assert op.process(record) == []
    return op.close()


class TestAggregateOp:
    def test_count(self, context):
        out = run_blocking(
            AggregateOp(Aggregate(Listing, AggFunc.COUNT)),
            listings(), context,
        )
        assert len(out) == 1
        assert out[0].count == 3

    def test_average(self, context):
        out = run_blocking(
            AggregateOp(Aggregate(Listing, AggFunc.AVERAGE, "price")),
            listings(), context,
        )
        assert out[0].average_price == pytest.approx(200.0)

    def test_sum_min_max(self, context):
        for func, expected in [
            (AggFunc.SUM, 600), (AggFunc.MIN, 100), (AggFunc.MAX, 300)
        ]:
            out = run_blocking(
                AggregateOp(Aggregate(Listing, func, "price")),
                listings(), context,
            )
            alias = f"{func.value}_price"
            assert getattr(out[0], alias) == expected

    def test_average_of_empty_is_none(self, context):
        out = run_blocking(
            AggregateOp(Aggregate(Listing, AggFunc.AVERAGE, "price")),
            [], context,
        )
        assert out[0].average_price is None

    def test_non_numeric_values_skipped(self, context):
        records = listings() + [
            DataRecord.from_dict(Listing, {"city": "X", "price": "n/a"})
        ]
        out = run_blocking(
            AggregateOp(Aggregate(Listing, AggFunc.AVERAGE, "price")),
            records, context,
        )
        assert out[0].average_price == pytest.approx(200.0)

    def test_numeric_strings_coerced(self, context):
        records = [
            DataRecord.from_dict(Listing, {"city": "X", "price": "1,000"})
        ]
        out = run_blocking(
            AggregateOp(Aggregate(Listing, AggFunc.SUM, "price")),
            records, context,
        )
        assert out[0].sum_price == 1000

    def test_estimates_single_output(self, context):
        op = AggregateOp(Aggregate(Listing, AggFunc.COUNT))
        assert op.naive_estimates(StreamEstimate(50, 100)).cardinality == 1.0


class TestGroupByOp:
    def test_groups_and_aggregates(self, context):
        logical = GroupByAggregate(
            Listing, ["city"],
            [(AggFunc.COUNT, None), (AggFunc.AVERAGE, "price")],
        )
        out = run_blocking(GroupByOp(logical), listings(), context)
        by_city = {r.city: r for r in out}
        assert by_city["Rome"].count == 2
        assert by_city["Rome"].average_price == pytest.approx(200.0)
        assert by_city["Oslo"].count == 1

    def test_output_sorted_by_group_key(self, context):
        logical = GroupByAggregate(Listing, ["city"], [(AggFunc.COUNT, None)])
        out = run_blocking(GroupByOp(logical), listings(), context)
        assert [r.city for r in out] == ["Oslo", "Rome"]

    def test_empty_input_no_groups(self, context):
        logical = GroupByAggregate(Listing, ["city"], [(AggFunc.COUNT, None)])
        assert run_blocking(GroupByOp(logical), [], context) == []


class TestProjectOp:
    def test_drops_other_fields(self, context):
        op = ProjectOp(Project(Listing, ["city"]))
        op.open(context)
        out = op.process(listings()[0])
        assert out[0].to_dict() == {"city": "Rome"}

    def test_streaming(self, context):
        op = ProjectOp(Project(Listing, ["city"]))
        assert not op.is_blocking


class TestLimitOp:
    def test_stops_after_n(self, context):
        op = LimitOp(LimitScan(Listing, 2))
        op.open(context)
        outputs = [op.process(r) for r in listings()]
        assert [len(o) for o in outputs] == [1, 1, 0]
        assert op.exhausted

    def test_limit_zero(self, context):
        op = LimitOp(LimitScan(Listing, 0))
        op.open(context)
        assert op.exhausted
        assert op.process(listings()[0]) == []

    def test_open_resets(self, context):
        op = LimitOp(LimitScan(Listing, 1))
        op.open(context)
        op.process(listings()[0])
        assert op.exhausted
        op.open(context)
        assert not op.exhausted


class TestRetrieveOp:
    def _texts(self):
        rows = [
            "waterfront home with private dock on the lake",
            "downtown condo near transit and restaurants",
            "lakefront cottage with waterfront views and a dock",
        ]
        return [
            DataRecord.from_dict(TextFile, {"text_contents": t})
            for t in rows
        ]

    def test_top_k_by_similarity(self, context):
        logical = RetrieveScan(TextFile, "waterfront dock lake", k=2)
        model = context.models.embedding_models()[0]
        out = run_blocking(RetrieveOp(logical, model), self._texts(), context)
        assert len(out) == 2
        texts = {r.text_contents for r in out}
        assert all("dock" in t for t in texts)

    def test_k_larger_than_input(self, context):
        logical = RetrieveScan(TextFile, "anything", k=10)
        model = context.models.embedding_models()[0]
        out = run_blocking(RetrieveOp(logical, model), self._texts(), context)
        assert len(out) == 3

    def test_embedding_calls_metered(self, context):
        logical = RetrieveScan(TextFile, "query", k=1)
        model = context.models.embedding_models()[0]
        run_blocking(RetrieveOp(logical, model), self._texts(), context)
        assert len(context.ledger) == 4  # 1 query + 3 documents
