"""Trace exporters: Chrome trace_event structure and plain JSON."""

import importlib.util
import json
import sys
from pathlib import Path

from repro.execution.execute import Execute
from repro.obs.export import (
    to_chrome_trace,
    to_plain_json,
    write_chrome_trace,
    write_plain_json,
)
from repro.obs.trace import SpanKind, Tracer

sys.path.insert(0, "tests")
from test_execution_pipeline import make_source, shape_filter_convert


def _load_validator():
    path = (Path(__file__).resolve().parents[1]
            / "scripts" / "validate_trace.py")
    spec = importlib.util.spec_from_file_location("validate_trace", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


validate_trace = _load_validator()


def small_trace():
    tracer = Tracer()
    with tracer.span("plan.run", SpanKind.PLAN,
                     executor="sequential") as root:
        tracer.record("llm.call", SpanKind.LLM, 0.5, 2.0, 1,
                      model="gpt-4o", operation="filter")
        root.finish_at(2.0)
    return tracer.finish()


class TestChromeTrace:
    def test_structure(self):
        payload = to_chrome_trace(small_trace())
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["tid"] for e in metadata} == {0, 1}
        assert "orchestrator" in metadata[0]["args"]["name"]
        assert payload["otherData"]["span_count"] == len(complete) == 2

    def test_microsecond_times_and_lane_tid(self):
        payload = to_chrome_trace(small_trace())
        call = next(e for e in payload["traceEvents"]
                    if e["name"] == "llm.call")
        assert call["ts"] == 500000.0
        assert call["dur"] == 1500000.0
        assert call["tid"] == 1
        assert call["args"]["model"] == "gpt-4o"
        assert call["args"]["parent_id"] == 1

    def test_metrics_land_in_other_data(self):
        payload = to_chrome_trace(small_trace(), metrics={"llm.calls": 1})
        assert payload["otherData"]["metrics"] == {"llm.calls": 1}

    def test_validator_accepts_export(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(small_trace(), str(path))
        payload = json.loads(path.read_text())
        assert validate_trace.validate_chrome_trace(payload) == []
        assert path.read_text().endswith("\n")

    def test_validator_rejects_corruption(self):
        payload = to_chrome_trace(small_trace())
        payload["otherData"]["span_count"] = 99
        del payload["traceEvents"][-1]["args"]
        errors = validate_trace.validate_chrome_trace(payload)
        assert any("span_count" in e for e in errors)
        assert any("args.span_id" in e for e in errors)
        assert validate_trace.validate_chrome_trace([]) != []

    def test_validator_cli(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        write_chrome_trace(small_trace(), str(path))
        assert validate_trace.main([str(path)]) == 0
        assert "valid Chrome trace" in capsys.readouterr().out
        bad = tmp_path / "bad.json"
        bad.write_text("[]")
        assert validate_trace.main([str(bad)]) == 1


class TestPlainJson:
    def test_structure(self):
        payload = to_plain_json(small_trace(), metrics={"a.b": 1})
        assert payload["format"] == "repro.obs/v1"
        assert payload["span_count"] == 2
        assert payload["makespan_seconds"] == 2.0
        assert payload["metrics"] == {"a.b": 1}
        names = [span["name"] for span in payload["spans"]]
        assert names == ["plan.run", "llm.call"]

    def test_write_round_trips(self, tmp_path):
        path = tmp_path / "trace.json"
        write_plain_json(small_trace(), str(path))
        payload = json.loads(path.read_text())
        assert payload == to_plain_json(small_trace())


class TestRealRunExport:
    def test_traced_execute_exports_validly(self, tmp_path):
        source = make_source(6, "export-real")
        _, stats = Execute(shape_filter_convert(source), lint=False,
                           executor="pipelined", max_workers=2, trace=True)
        path = tmp_path / "run.json"
        write_chrome_trace(stats.trace, str(path), metrics=stats.metrics)
        payload = json.loads(path.read_text())
        assert validate_trace.validate_chrome_trace(payload) == []
        assert payload["otherData"]["metrics"] == stats.metrics
