"""Physical convert operators: strategies and their trade-offs."""

import pytest

from repro.core.builtin_schemas import TextFile
from repro.core.cardinality import Cardinality
from repro.core.logical import ConvertScan
from repro.core.records import DataRecord
from repro.core.schemas import make_schema
from repro.llm.models import get_model
from repro.llm.oracle import DocumentTruth, GroundTruthRegistry
from repro.physical.base import StreamEstimate
from repro.physical.context import ExecutionContext
from repro.physical.converts import (
    CodeSynthesisConvert,
    LLMConvertBonded,
    LLMConvertConventional,
    NonLLMConvert,
    TokenReducedConvert,
    synthesized_code_model,
)

Clinical = make_schema(
    "Clinical", "Clinical dataset info",
    {"name": "The dataset name", "url": "The dataset URL"},
)

DOC = (
    "We study tumors. The CRC-Atlas dataset is publicly available at "
    "https://data.example.org/crc."
)


def record(text=DOC):
    return DataRecord.from_dict(TextFile, {"text_contents": text})


@pytest.fixture()
def context():
    oracle = GroundTruthRegistry()
    oracle.register(
        DOC,
        DocumentTruth(
            fields={
                "name": "CRC-Atlas",
                "url": "https://data.example.org/crc",
                "__instances__": [
                    {"name": "CRC-Atlas",
                     "url": "https://data.example.org/crc"},
                    {"name": "CRC-Extra",
                     "url": "https://data.example.org/extra"},
                ],
            },
            difficulty=0.0,
        ),
    )
    return ExecutionContext(oracle=oracle)


def convert_op(cardinality=Cardinality.ONE_TO_ONE, udf=None):
    return ConvertScan(TextFile, Clinical, cardinality=cardinality, udf=udf)


class TestNonLLMConvert:
    def test_udf_dict_output(self, context):
        op = NonLLMConvert(convert_op(udf=lambda r: {"name": "X"}))
        op.open(context)
        outputs = op.process(record())
        assert outputs[0].name == "X"

    def test_udf_list_output_one_to_many(self, context):
        op = NonLLMConvert(
            convert_op(
                cardinality=Cardinality.ONE_TO_MANY,
                udf=lambda r: [{"name": "A"}, {"name": "B"}],
            )
        )
        op.open(context)
        outputs = op.process(record())
        assert [o.name for o in outputs] == ["A", "B"]

    def test_requires_udf(self):
        with pytest.raises(ValueError):
            NonLLMConvert(convert_op())


class TestLLMConvertBonded:
    def test_extracts_new_fields(self, context):
        op = LLMConvertBonded(convert_op(), get_model("gpt-4o"))
        op.open(context)
        outputs = op.process(record())
        assert len(outputs) == 1
        assert outputs[0].name == "CRC-Atlas"
        assert outputs[0].url == "https://data.example.org/crc"

    def test_one_call_per_record(self, context):
        op = LLMConvertBonded(convert_op(), get_model("gpt-4o"))
        op.open(context)
        op.process(record())
        assert len(context.ledger) == 1

    def test_one_to_many_produces_instances(self, context):
        op = LLMConvertBonded(
            convert_op(Cardinality.ONE_TO_MANY), get_model("gpt-4o")
        )
        op.open(context)
        outputs = op.process(record())
        assert len(outputs) == 2
        assert {o.name for o in outputs} == {"CRC-Atlas", "CRC-Extra"}

    def test_lineage_preserved(self, context):
        op = LLMConvertBonded(convert_op(), get_model("gpt-4o"))
        op.open(context)
        source = record()
        outputs = op.process(source)
        assert outputs[0].parent is source

    def test_requires_semantic_convert(self):
        with pytest.raises(ValueError):
            LLMConvertBonded(
                convert_op(udf=lambda r: {}), get_model("gpt-4o")
            )


class TestLLMConvertConventional:
    def test_one_call_per_field(self, context):
        op = LLMConvertConventional(convert_op(), get_model("gpt-4o"))
        op.open(context)
        op.process(record())
        assert len(context.ledger) == 2  # two new fields

    def test_one_to_many_extra_call(self, context):
        op = LLMConvertConventional(
            convert_op(Cardinality.ONE_TO_MANY), get_model("gpt-4o")
        )
        op.open(context)
        outputs = op.process(record())
        assert len(outputs) == 2
        assert len(context.ledger) == 3  # 1 instance call + 2 field passes

    def test_costlier_but_better_estimates_than_bonded(self, context):
        stream = StreamEstimate(10, 2000)
        conventional = LLMConvertConventional(
            convert_op(), get_model("gpt-4o")
        )
        bonded = LLMConvertBonded(convert_op(), get_model("gpt-4o"))
        c_est = conventional.naive_estimates(stream)
        b_est = bonded.naive_estimates(stream)
        assert c_est.cost_per_record > b_est.cost_per_record
        assert c_est.quality > b_est.quality


class TestTokenReducedConvert:
    def test_cheaper_than_bonded(self, context):
        stream = StreamEstimate(10, 2000)
        reduced = TokenReducedConvert(
            convert_op(), get_model("gpt-4o"), fraction=0.3
        )
        bonded = LLMConvertBonded(convert_op(), get_model("gpt-4o"))
        r_est = reduced.naive_estimates(stream)
        b_est = bonded.naive_estimates(stream)
        assert r_est.cost_per_record < b_est.cost_per_record
        assert r_est.quality < b_est.quality

    def test_runtime_tokens_actually_reduced(self, context):
        long_doc = DOC + " padding" * 400
        context.oracle.register(
            long_doc, DocumentTruth(fields={"name": "CRC-Atlas"})
        )
        reduced = TokenReducedConvert(
            convert_op(), get_model("gpt-4o"), fraction=0.2
        )
        reduced.open(context)
        reduced.process(record(long_doc))
        bonded_context = ExecutionContext(oracle=context.oracle)
        bonded = LLMConvertBonded(convert_op(), get_model("gpt-4o"))
        bonded.open(bonded_context)
        bonded.process(record(long_doc))
        assert (
            context.ledger.total().input_tokens
            < bonded_context.ledger.total().input_tokens
        )

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            TokenReducedConvert(convert_op(), get_model("gpt-4o"), fraction=0)

    def test_label_shows_fraction(self):
        op = TokenReducedConvert(
            convert_op(), get_model("gpt-4o"), fraction=0.35
        )
        assert "@0.35" in op.op_label


class TestCodeSynthesisConvert:
    def test_exemplars_then_free(self, context):
        op = CodeSynthesisConvert(convert_op(), get_model("gpt-4o"))
        op.open(context)
        docs = []
        for i in range(6):
            doc = DOC + f" copy {i}"
            context.oracle.register(
                doc, DocumentTruth(fields={"name": "CRC-Atlas",
                                           "url": "u"}, difficulty=0.0)
            )
            docs.append(doc)
        for doc in docs:
            op.process(record(doc))
        by_model = context.ledger.by_model()
        assert by_model["gpt-4o"].calls == CodeSynthesisConvert.EXEMPLARS
        synth_name = synthesized_code_model(get_model("gpt-4o")).name
        assert by_model[synth_name].calls == 3
        assert by_model[synth_name].cost_usd == 0.0

    def test_synthesized_model_quality_below_base(self):
        base = get_model("gpt-4o")
        assert synthesized_code_model(base).quality < base.quality

    def test_estimates_cheaper_for_large_streams(self):
        op = CodeSynthesisConvert(convert_op(), get_model("gpt-4o"))
        bonded = LLMConvertBonded(convert_op(), get_model("gpt-4o"))
        big_stream = StreamEstimate(1000, 2000)
        assert (
            op.naive_estimates(big_stream).cost_per_record
            < bonded.naive_estimates(big_stream).cost_per_record
        )

    def test_open_resets_exemplar_counter(self, context):
        op = CodeSynthesisConvert(convert_op(), get_model("gpt-4o"))
        op.open(context)
        op.process(record())
        op.open(context)
        assert op._seen == 0
