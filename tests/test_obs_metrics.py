"""Metrics registry + the cache counters surfaced on ExecutionStats."""

import sys
import threading

import pytest

from repro.execution.execute import Execute
from repro.llm.cache import CallCache
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

sys.path.insert(0, "tests")
from test_execution_pipeline import make_source, shape_filter_convert


class TestPrimitives:
    def test_counter_increments(self):
        counter = Counter("llm.calls")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert counter.snapshot_value() == 5

    def test_gauge_set_and_set_max(self):
        gauge = Gauge("queue.depth")
        gauge.set(3.0)
        gauge.set_max(2.0)
        assert gauge.value == 3.0
        gauge.set_max(7.0)
        assert gauge.value == 7.0

    def test_histogram_summary(self):
        hist = Histogram("wait.seconds")
        for value in (2.0, 5.0, 1.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.mean == pytest.approx(8.0 / 3)
        assert hist.snapshot_value() == {
            "count": 3, "sum": 8.0, "min": 1.0, "max": 5.0,
            "p50": 2.0, "p95": 5.0, "p99": 5.0,
        }

    def test_empty_histogram_snapshot(self):
        assert Histogram("h.h").snapshot_value() == {
            "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
            "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }

    def test_histogram_quantiles_nearest_rank(self):
        hist = Histogram("lat.seconds")
        # Observe 1..100 out of order: quantiles are order-insensitive.
        for value in range(100, 0, -1):
            hist.observe(float(value))
        assert hist.quantile(0.50) == 50.0
        assert hist.quantile(0.95) == 95.0
        assert hist.quantile(0.99) == 99.0
        assert hist.quantile(1.0) == 100.0
        snap = hist.snapshot_value()
        assert (snap["p50"], snap["p95"], snap["p99"]) == (50.0, 95.0, 99.0)
        with pytest.raises(ValueError):
            hist.quantile(0.0)

    def test_histogram_quantiles_single_sample(self):
        hist = Histogram("one.sample")
        hist.observe(3.5)
        snap = hist.snapshot_value()
        assert (snap["p50"], snap["p95"], snap["p99"]) == (3.5, 3.5, 3.5)

    def test_counter_thread_safe(self):
        counter = Counter("c.c")

        def bump():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestRegistry:
    def test_get_or_create_returns_same_metric(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")
        assert len(registry) == 1

    def test_type_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("a.b")
        with pytest.raises(TypeError):
            registry.gauge("a.b")

    def test_snapshot_sorted_and_excludes_best_effort(self):
        registry = MetricsRegistry()
        registry.counter("z.last").inc(1)
        registry.gauge("a.first").set(2.5)
        registry.counter("q.racy", best_effort=True).inc(9)
        snap = registry.snapshot()
        assert list(snap) == ["a.first", "z.last"]
        assert snap == {"a.first": 2.5, "z.last": 1}
        full = registry.snapshot(include_best_effort=True)
        assert full["q.racy"] == 9

    def test_clear(self):
        registry = MetricsRegistry()
        registry.counter("a.b")
        registry.clear()
        assert len(registry) == 0


class TestExecutionMetrics:
    def test_stats_metrics_snapshot(self):
        source = make_source(6, "metrics-snap")
        records, stats = Execute(shape_filter_convert(source), lint=False)
        metrics = stats.metrics
        op_stats = stats.plan_stats.operator_stats
        assert metrics["llm.calls"] == sum(op.llm_calls for op in op_stats)
        assert metrics["run.records_out"] == len(records)
        assert metrics["run.elapsed_seconds"] == pytest.approx(
            stats.plan_stats.total_time_seconds)
        # Per-operator counters mirror operator_stats exactly.
        for index, op in enumerate(op_stats):
            prefix = f"op.{index}.{op.op_label}"
            assert metrics[f"{prefix}.records_in"] == op.records_in
            assert metrics[f"{prefix}.records_out"] == op.records_out
            assert metrics[f"{prefix}.llm_calls"] == op.llm_calls
            assert metrics[f"{prefix}.busy_seconds"] == pytest.approx(
                op.time_seconds)

    def test_best_effort_queue_metrics_not_in_stats(self):
        source = make_source(6, "metrics-queue")
        _, stats = Execute(shape_filter_convert(source), lint=False,
                           executor="pipelined", max_workers=2)
        assert not any("queue_depth" in name for name in stats.metrics)
        assert not any("poll_retries" in name for name in stats.metrics)


class TestCacheCountersOnStats:
    def test_cold_then_warm_run(self):
        source = make_source(6, "metrics-cache")
        cache = CallCache()
        dataset = shape_filter_convert(source)
        _, cold = Execute(dataset, cache=cache, lint=False)
        assert cold.cache_misses > 0
        assert cold.cache_hits == 0
        assert cold.metrics["llm.cache_misses"] == cold.cache_misses

        _, warm = Execute(dataset, cache=cache, lint=False)
        assert warm.cache_hits == cold.cache_misses
        assert warm.cache_misses == 0
        assert warm.metrics["llm.cache_hits"] == warm.cache_hits

    def test_evictions_counted(self):
        source = make_source(6, "metrics-evict")
        cache = CallCache(max_entries=2)
        _, stats = Execute(shape_filter_convert(source), cache=cache,
                           lint=False)
        assert stats.cache_evictions > 0

    def test_no_cache_leaves_counters_zero(self):
        source = make_source(4, "metrics-nocache")
        _, stats = Execute(shape_filter_convert(source), lint=False)
        assert (stats.cache_hits, stats.cache_misses,
                stats.cache_evictions) == (0, 0, 0)

    def test_summary_mentions_cache_when_used(self):
        source = make_source(4, "metrics-summary")
        cache = CallCache()
        _, stats = Execute(shape_filter_convert(source), cache=cache,
                           lint=False)
        assert "call cache" in stats.summary()
