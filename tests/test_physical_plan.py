"""PhysicalPlan structure, ids, and explain output."""

import pytest

from repro.core.builtin_schemas import TextFile
from repro.core.dataset import Dataset
from repro.core.errors import PlanError
from repro.core.schemas import make_schema
from repro.core.sources import MemorySource
from repro.llm.models import default_registry
from repro.optimizer.cost_model import CostModel
from repro.optimizer.planner import enumerate_plans
from repro.physical.plan import PhysicalPlan

Clinical = make_schema("C", "d", {"name": "n"})


@pytest.fixture()
def plans():
    source = MemorySource(
        ["doc one", "doc two"], dataset_id="plan-test", schema=TextFile
    )
    dataset = Dataset(source).filter("about one").convert(Clinical)
    cost_model = CostModel(source.profile())
    return enumerate_plans(
        dataset.logical_plan(), source, default_registry(), cost_model
    )


class TestPhysicalPlan:
    def test_empty_plan_rejected(self):
        with pytest.raises(PlanError):
            PhysicalPlan([])

    def test_must_start_with_scan(self, plans):
        downstream_only = plans[0].plan.downstream
        with pytest.raises(PlanError):
            PhysicalPlan(downstream_only)

    def test_plan_id_reflects_operators(self, plans):
        a, b = plans[0].plan, plans[1].plan
        assert a.plan_id != b.plan_id
        # Rebuilding the same operator chain yields the same id.
        assert a.plan_id == PhysicalPlan(a.operators).plan_id

    def test_models_used(self, plans):
        for candidate in plans:
            models = candidate.plan.models_used()
            llm_ops = [
                op for op in candidate.plan if op.model is not None
            ]
            assert len(models) == len({op.model.name for op in llm_ops})

    def test_explain_lists_every_operator(self, plans):
        text = plans[0].plan.explain()
        assert text.startswith("PhysicalPlan")
        # One line per operator plus the header.
        assert len(text.splitlines()) == len(plans[0].plan) + 1

    def test_describe_uses_labels(self, plans):
        assert "MarshalAndScan" in plans[0].plan.describe()

    def test_iteration_and_len(self, plans):
        plan = plans[0].plan
        assert len(list(plan)) == len(plan) == 3
