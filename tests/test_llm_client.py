"""The simulated LLM client: judgments, extraction, metering."""

import pytest

from repro.llm.client import (
    BooleanRequest,
    CompletionRequest,
    ExtractionRequest,
    SimulatedLLMClient,
)
from repro.llm.clock import VirtualClock
from repro.llm.exceptions import ContextWindowExceeded, InvalidRequestError
from repro.llm.models import ModelCard, get_model
from repro.llm.oracle import DocumentTruth, GroundTruthRegistry
from repro.llm.usage import UsageLedger

DOC = (
    "This report analyzes colorectal cancer outcomes. "
    "The CRC-Atlas dataset is publicly available at "
    "https://data.example.org/crc."
)


@pytest.fixture()
def oracle():
    reg = GroundTruthRegistry()
    reg.register(
        DOC,
        DocumentTruth(
            predicates={"about colorectal cancer": True},
            fields={
                "name": "CRC-Atlas",
                "url": "https://data.example.org/crc",
                "__instances__": [
                    {"name": "CRC-Atlas",
                     "url": "https://data.example.org/crc"},
                ],
            },
            difficulty=0.0,
        ),
    )
    return reg


@pytest.fixture()
def client(oracle):
    return SimulatedLLMClient(
        "gpt-4o",
        clock=VirtualClock(),
        ledger=UsageLedger(),
        oracle=oracle,
    )


class TestJudge:
    def test_oracle_truth_respected(self, client):
        response = client.judge(
            BooleanRequest(predicate="about colorectal cancer", document=DOC)
        )
        assert response.value is True

    def test_heuristic_fallback_for_unknown_docs(self, client):
        response = client.judge(
            BooleanRequest(
                predicate="about pasta recipes",
                document="A guide to carbonara and cacio e pepe.",
            )
        )
        assert response.value is False

    def test_empty_predicate_rejected(self, client):
        with pytest.raises(InvalidRequestError):
            client.judge(BooleanRequest(predicate="  ", document=DOC))

    def test_usage_metered(self, client):
        client.judge(
            BooleanRequest(predicate="about colorectal cancer", document=DOC)
        )
        assert len(client.ledger) == 1
        usage = client.ledger.records[0]
        assert usage.input_tokens > 0
        assert usage.cost_usd > 0
        assert client.clock.elapsed == pytest.approx(usage.latency_seconds)

    def test_deterministic_across_calls(self, client):
        req = BooleanRequest(predicate="about colorectal cancer", document=DOC)
        assert client.judge(req).value == client.judge(req).value


class TestExtract:
    def test_single_extraction_from_oracle(self, client):
        response = client.extract(
            ExtractionRequest(
                fields={"name": "dataset name", "url": "dataset URL"},
                document=DOC,
            )
        )
        assert response.value["name"] == "CRC-Atlas"
        assert response.value["url"] == "https://data.example.org/crc"

    def test_one_to_many_returns_instances(self, client):
        response = client.extract(
            ExtractionRequest(
                fields={"name": "dataset name", "url": "dataset URL"},
                document=DOC,
                one_to_many=True,
            )
        )
        assert isinstance(response.value, list)
        assert response.value[0]["name"] == "CRC-Atlas"

    def test_heuristic_fallback_extraction(self, client):
        response = client.extract(
            ExtractionRequest(
                fields={"url": "The public URL"},
                document="See https://example.com/page for details.",
            )
        )
        assert response.value["url"] == "https://example.com/page"

    def test_empty_fields_rejected(self, client):
        with pytest.raises(InvalidRequestError):
            client.extract(ExtractionRequest(fields={}, document=DOC))

    def test_context_fraction_reduces_cost(self, oracle):
        full = SimulatedLLMClient("gpt-4o", ledger=UsageLedger(), oracle=oracle)
        reduced = SimulatedLLMClient(
            "gpt-4o", ledger=UsageLedger(), oracle=oracle
        )
        long_doc = DOC + " filler" * 500
        full.extract(
            ExtractionRequest(fields={"name": "n"}, document=long_doc)
        )
        reduced.extract(
            ExtractionRequest(
                fields={"name": "n"}, document=long_doc, context_fraction=0.2
            )
        )
        assert (
            reduced.ledger.total().input_tokens
            < full.ledger.total().input_tokens
        )

    def test_weak_model_corrupts_some_answers(self, oracle):
        weak_card = ModelCard(
            name="weak", provider="t", usd_per_1m_input=0.1,
            usd_per_1m_output=0.1, quality=0.05,
        )
        client = SimulatedLLMClient(weak_card, oracle=oracle)
        wrong = 0
        for i in range(30):
            doc = DOC + f" variant {i}"
            oracle.register(
                doc,
                DocumentTruth(fields={"name": "CRC-Atlas"}, difficulty=0.9),
            )
            response = client.extract(
                ExtractionRequest(fields={"name": "dataset name"}, document=doc)
            )
            if response.value["name"] != "CRC-Atlas":
                wrong += 1
        assert wrong > 5


class TestComplete:
    def test_completion_meters_tokens(self, client):
        response = client.complete(
            CompletionRequest(prompt="Summarize: the cat sat on the mat.")
        )
        assert response.usage.input_tokens > 0

    def test_empty_prompt_rejected(self, client):
        with pytest.raises(InvalidRequestError):
            client.complete(CompletionRequest(prompt=""))


class TestLimits:
    def test_context_window_enforced(self, oracle):
        tiny = ModelCard(
            name="tiny", provider="t", usd_per_1m_input=1.0,
            usd_per_1m_output=1.0, quality=0.5, context_window=16,
        )
        client = SimulatedLLMClient(tiny, oracle=oracle)
        with pytest.raises(ContextWindowExceeded):
            client.judge(
                BooleanRequest(predicate="long", document="word " * 100)
            )

    def test_model_resolution_by_name(self):
        client = SimulatedLLMClient("gpt-4o-mini")
        assert client.model.name == "gpt-4o-mini"

    def test_unknown_model_name_raises(self):
        with pytest.raises(KeyError):
            SimulatedLLMClient("no-such-model")
