"""The ``repro trace`` subcommand and ``--version``."""

import importlib.util
import json
from pathlib import Path

import pytest

from repro import __version__
from repro.cli import build_parser, main, package_metadata


def _load_validator():
    path = (Path(__file__).resolve().parents[1]
            / "scripts" / "validate_trace.py")
    spec = importlib.util.spec_from_file_location("validate_trace", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


validate_trace = _load_validator()


@pytest.fixture(scope="module")
def trace_data_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("trace-corpora"))


class TestVersion:
    def test_version_flag_prints_package_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.strip() == f"repro {__version__}"

    def test_metadata_matches_pyproject(self):
        version, description = package_metadata()
        assert version == __version__
        assert "PalimpChat" in description

    def test_parser_prog_and_description(self):
        parser = build_parser()
        assert parser.prog == "repro"
        assert "PalimpChat" in parser.description


class TestTraceCommand:
    def test_summary_view(self, trace_data_dir, capsys):
        code = main(["trace", "--workers", "2", "--batch-size", "1",
                     "--data-dir", trace_data_dir])
        assert code == 0
        out = capsys.readouterr().out
        assert "recorded" in out and "spans" in out
        assert "Critical path (pipelined run)" in out
        assert "bounding stage:" in out

    def test_critical_path_view_sequential(self, trace_data_dir, capsys):
        code = main(["trace", "--executor", "sequential",
                     "--view", "critical-path",
                     "--data-dir", trace_data_dir])
        assert code == 0
        assert "Hotspots (non-pipelined run)" in capsys.readouterr().out

    def test_tree_and_flame_views(self, trace_data_dir, capsys):
        assert main(["trace", "--view", "tree", "--workers", "2",
                     "--data-dir", trace_data_dir]) == 0
        assert "plan.run" in capsys.readouterr().out
        assert main(["trace", "--view", "flame", "--workers", "2",
                     "--data-dir", trace_data_dir]) == 0
        assert "llm.call" in capsys.readouterr().out

    def test_chrome_output_validates(self, trace_data_dir, tmp_path,
                                     capsys):
        out_path = tmp_path / "trace.json"
        code = main(["trace", "--workers", "2",
                     "--data-dir", trace_data_dir,
                     "--output", str(out_path)])
        assert code == 0
        assert "trace written to" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        assert validate_trace.validate_chrome_trace(payload) == []
        assert "metrics" in payload["otherData"]

    def test_plain_json_output(self, trace_data_dir, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        code = main(["trace", "--workers", "2",
                     "--data-dir", trace_data_dir,
                     "--output", str(out_path), "--format", "json"])
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["format"] == "repro.obs/v1"
        assert payload["span_count"] == len(payload["spans"])
