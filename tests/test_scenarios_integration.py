"""End-to-end integration tests for the three demo scenarios."""

import pytest

import repro as pz
from repro.core.sources import DirectorySource
from repro.corpora.legal import CONTRACT_FIELDS, LEGAL_PREDICATE
from repro.corpora.papers import CLINICAL_FIELDS, PAPERS_PREDICATE
from repro.corpora.realestate import LISTING_FIELDS, REALESTATE_PREDICATE
from repro.evaluation.metrics import extraction_quality, filter_quality


class TestScientificDiscovery:
    """E1: 11 papers -> filter -> one-to-many extraction -> 6 datasets."""

    @pytest.fixture()
    def pipeline(self, papers_source):
        Clinical = pz.make_schema(
            "ClinicalData",
            "A schema for extracting clinical data datasets from papers.",
            CLINICAL_FIELDS,
        )
        return (
            pz.Dataset(papers_source)
            .filter(PAPERS_PREDICATE)
            .convert(Clinical, cardinality=pz.Cardinality.ONE_TO_MANY)
        )

    def test_max_quality_reproduces_fig5(self, pipeline):
        records, stats = pz.Execute(pipeline, policy=pz.MaxQuality())
        assert len(records) == 6
        assert all(r.url and r.url.startswith("http") for r in records)
        # Same order of magnitude as the paper's 240 s / $0.35.
        assert 100 < stats.total_time_seconds < 400
        assert 0.15 < stats.total_cost_usd < 0.7

    def test_extraction_is_perfect_under_max_quality(
        self, pipeline, papers_source
    ):
        records, _ = pz.Execute(pipeline, policy=pz.MaxQuality())
        card = extraction_quality(
            records, list(papers_source), ["name", "description", "url"]
        )
        assert card.f1 == 1.0

    def test_min_cost_is_much_cheaper(self, pipeline):
        _, quality_stats = pz.Execute(pipeline, policy=pz.MaxQuality())
        _, cost_stats = pz.Execute(pipeline, policy=pz.MinCost())
        assert cost_stats.total_cost_usd < quality_stats.total_cost_usd / 10

    def test_parallelism_preserves_output(self, pipeline):
        seq_records, seq_stats = pz.Execute(pipeline, policy=pz.MaxQuality())
        par_records, par_stats = pz.Execute(
            pipeline, policy=pz.MaxQuality(), max_workers=4
        )
        assert {r.name for r in par_records} == {r.name for r in seq_records}
        assert par_stats.total_time_seconds < seq_stats.total_time_seconds


class TestLegalDiscovery:
    """E7: responsive-document review + deal-term extraction."""

    @pytest.fixture()
    def source(self, legal_dir):
        return DirectorySource(legal_dir, dataset_id="legal-int")

    def test_filter_and_extract(self, source):
        Contract = pz.make_schema(
            "Contract", "Deal terms from responsive documents.",
            CONTRACT_FIELDS,
        )
        pipeline = (
            pz.Dataset(source)
            .filter(LEGAL_PREDICATE)
            .convert(Contract)
        )
        records, stats = pz.Execute(pipeline, policy=pz.MaxQuality())
        assert 4 <= len(records) <= 8  # 6 responsive, difficulty 0.25
        buyers = {r.buyer for r in records if r.buyer}
        assert "Harbor Holdings LLC" in buyers

    def test_quality_gap_between_models_is_visible(self, source):
        card = {}
        for policy in (pz.MaxQuality(), pz.MinCost()):
            pipeline = pz.Dataset(source).filter(LEGAL_PREDICATE)
            records, _ = pz.Execute(pipeline, policy=policy)
            card[policy.name] = filter_quality(
                records, list(source), LEGAL_PREDICATE
            )
        assert card["max-quality"].f1 >= card["min-cost"].f1


class TestRealEstateSearch:
    """E8: semantic filter + structured extraction + aggregation."""

    @pytest.fixture()
    def source(self, realestate_dir):
        return DirectorySource(realestate_dir, dataset_id="realestate-int")

    def test_waterfront_filter(self, source):
        pipeline = pz.Dataset(source).filter(REALESTATE_PREDICATE)
        records, _ = pz.Execute(pipeline, policy=pz.MaxQuality())
        assert 7 <= len(records) <= 11  # 9 true waterfront

    def test_extract_and_average_price(self, source):
        Listing = pz.make_schema(
            "Listing", "A structured listing.", LISTING_FIELDS
        )
        pipeline = (
            pz.Dataset(source)
            .filter(REALESTATE_PREDICATE)
            .convert(Listing)
            .average("price")
        )
        records, _ = pz.Execute(pipeline, policy=pz.MaxQuality())
        assert len(records) == 1
        # Waterfront listings average ~$680k in the corpus.
        assert records[0].average_price > 400_000

    def test_groupby_city(self, source):
        Listing = pz.make_schema(
            "Listing2", "A structured listing.", LISTING_FIELDS
        )
        pipeline = (
            pz.Dataset(source)
            .convert(Listing)
            .groupby(["city"], [("count", None), ("avg", "price")])
        )
        records, _ = pz.Execute(pipeline, policy=pz.MaxQuality())
        cities = {r.city for r in records}
        assert len(cities) >= 3

    def test_retrieve_top_k(self, source):
        pipeline = pz.Dataset(source).retrieve(
            "waterfront home with a dock", k=5
        )
        records, _ = pz.Execute(pipeline)
        assert len(records) == 5


class TestCustomDataUpload:
    """Attendees 'can apply PalimpChat to their own datasets' — no oracle."""

    def test_pipeline_on_unregistered_text(self, tmp_path):
        (tmp_path / "note1.txt").write_text(
            "Meeting notes about colorectal cancer grant. "
            "Budget portal at https://grants.example.org/apply."
        )
        (tmp_path / "note2.txt").write_text(
            "Shopping list: apples, pasta, coffee."
        )
        Info = pz.make_schema("Info", "Links", {"url": "The URL mentioned"})
        pipeline = (
            pz.Dataset(source=str(tmp_path))
            .filter("about colorectal cancer")
            .convert(Info)
        )
        records, stats = pz.Execute(pipeline, policy=pz.MaxQuality())
        assert len(records) == 1
        assert records[0].url == "https://grants.example.org/apply"
