"""The fluent Dataset API."""

import pytest

from repro.core.builtin_schemas import PDFFile, TextFile
from repro.core.cardinality import Cardinality
from repro.core.dataset import Dataset
from repro.core.errors import DatasetError
from repro.core.logical import (
    Aggregate,
    BaseScan,
    ConvertScan,
    FilteredScan,
    GroupByAggregate,
    LimitScan,
    Project,
    RetrieveScan,
)
from repro.core.schemas import make_schema
from repro.core.sources import MemorySource, register_datasource

Clinical = make_schema("Clinical", "d", {"name": "n", "url": "u"})


@pytest.fixture()
def memory_dataset():
    return Dataset(["alpha doc", "beta doc"], schema=TextFile)


class TestConstruction:
    def test_from_list(self, memory_dataset):
        assert memory_dataset.schema is TextFile
        assert len(memory_dataset.source) == 2

    def test_from_registered_id(self):
        register_datasource(
            MemorySource(["x"], dataset_id="reg-test"), overwrite=True
        )
        dataset = Dataset(source="reg-test")
        assert dataset.source.dataset_id == "reg-test"

    def test_from_directory_path_string(self, tmp_path):
        (tmp_path / "a.txt").write_text("hello")
        dataset = Dataset(source=str(tmp_path))
        assert dataset.schema is TextFile

    def test_from_file_path(self, tmp_path):
        path = tmp_path / "one.txt"
        path.write_text("x")
        dataset = Dataset(source=path)
        assert len(dataset.source) == 1

    def test_unknown_id_raises_with_listing(self):
        with pytest.raises(DatasetError):
            Dataset(source="definitely-not-registered")

    def test_missing_path_raises(self, tmp_path):
        from pathlib import Path

        with pytest.raises(DatasetError):
            Dataset(source=Path(tmp_path / "missing"))

    def test_no_source_rejected(self):
        with pytest.raises(DatasetError):
            Dataset()


class TestChaining:
    def test_filter_string_builds_semantic_op(self, memory_dataset):
        plan = memory_dataset.filter("about alpha").logical_plan()
        assert isinstance(plan.operators[1], FilteredScan)
        assert plan.operators[1].spec.is_semantic

    def test_filter_callable_builds_udf_op(self, memory_dataset):
        plan = memory_dataset.filter(lambda r: True).logical_plan()
        assert not plan.operators[1].spec.is_semantic

    def test_convert(self, memory_dataset):
        ds = memory_dataset.convert(Clinical, cardinality="one_to_many")
        op = ds.logical_plan().operators[1]
        assert isinstance(op, ConvertScan)
        assert op.cardinality is Cardinality.ONE_TO_MANY
        assert ds.schema is Clinical

    def test_chaining_is_immutable(self, memory_dataset):
        filtered = memory_dataset.filter("x")
        assert len(memory_dataset.logical_plan()) == 1
        assert len(filtered.logical_plan()) == 2

    def test_branching(self, memory_dataset):
        base = memory_dataset.filter("x")
        a = base.limit(1)
        b = base.convert(Clinical)
        assert len(a.logical_plan()) == 3
        assert len(b.logical_plan()) == 3

    def test_project(self, memory_dataset):
        ds = memory_dataset.project(["filename"])
        assert isinstance(ds.logical_plan().operators[1], Project)
        assert ds.schema.field_names() == ["filename"]

    def test_limit(self, memory_dataset):
        op = memory_dataset.limit(5).logical_plan().operators[1]
        assert isinstance(op, LimitScan)
        assert op.limit == 5

    def test_retrieve(self, memory_dataset):
        op = memory_dataset.retrieve("alpha things", k=1)
        assert isinstance(op.logical_plan().operators[1], RetrieveScan)

    def test_aggregates(self, memory_dataset):
        assert isinstance(
            memory_dataset.count().logical_plan().operators[1], Aggregate
        )
        converted = memory_dataset.convert(
            make_schema("N", "d", {"price": "p"})
        )
        for method in ("average", "sum", "min", "max"):
            op = getattr(converted, method)("price").logical_plan().operators[-1]
            assert isinstance(op, Aggregate)

    def test_groupby(self, memory_dataset):
        converted = memory_dataset.convert(
            make_schema("C", "d", {"city": "c", "price": "p"})
        )
        ds = converted.groupby(["city"], [("count", None), ("avg", "price")])
        assert isinstance(ds.logical_plan().operators[-1], GroupByAggregate)

    def test_source_traverses_chain(self, memory_dataset):
        deep = memory_dataset.filter("x").limit(2).convert(Clinical)
        assert deep.source is memory_dataset.source

    def test_logical_plan_order(self, memory_dataset):
        plan = memory_dataset.filter("x").limit(1).logical_plan()
        kinds = [type(op).__name__ for op in plan]
        assert kinds == ["BaseScan", "FilteredScan", "LimitScan"]

    def test_repr_shows_plan(self, memory_dataset):
        assert "scan" in repr(memory_dataset.filter("x"))


class TestRun:
    def test_run_executes(self, memory_dataset):
        records, stats = memory_dataset.limit(1).run()
        assert len(records) == 1
        assert stats.total_time_seconds >= 0
