"""Plan lint surfaces through the chat loop instead of crashing mid-run."""

from repro.chat.session import PalimpChatSession
from repro.core.dataset import Dataset
from repro.core.sources import MemorySource


def broken_dataset():
    source = MemorySource(["alpha", "beta"], "chat-lint-test")
    return Dataset(source).filter("about science", depends_on=["titel"])


class TestExecuteSurfacesLint:
    def test_run_reports_diagnostics_as_chat_reply(self):
        session = PalimpChatSession()
        session.workspace.current = broken_dataset()
        reply = session.chat("run the pipeline")
        assert "PZ101" in reply.text
        assert "titel" in reply.text
        assert "execute_pipeline" in reply.tool_sequence

    def test_nothing_is_executed_on_lint_errors(self):
        session = PalimpChatSession()
        session.workspace.current = broken_dataset()
        session.chat("run the pipeline")
        assert session.workspace.last_records is None
        assert session.workspace.last_stats is None


class TestLintTool:
    def test_lint_intent_invokes_lint_tool(self):
        session = PalimpChatSession()
        session.workspace.current = broken_dataset()
        reply = session.chat("lint the pipeline")
        assert "lint_pipeline" in reply.tool_sequence
        assert "PZ101" in reply.text

    def test_check_pipeline_phrasing(self):
        session = PalimpChatSession()
        session.workspace.current = broken_dataset()
        reply = session.chat("can you check the pipeline for mistakes?")
        assert "lint_pipeline" in reply.tool_sequence

    def test_clean_pipeline_reports_no_findings(self):
        session = PalimpChatSession()
        source = MemorySource(["alpha", "beta"], "chat-lint-clean")
        session.workspace.current = Dataset(source).filter("about science")
        reply = session.chat("lint the pipeline")
        assert "no findings" in reply.text


class TestSessionLintMethod:
    def test_lint_method_returns_result(self):
        session = PalimpChatSession()
        session.workspace.current = broken_dataset()
        result = session.lint()
        assert not result.ok
        assert "PZ101" in result.codes()

    def test_lint_with_no_pipeline_is_empty(self):
        session = PalimpChatSession()
        assert len(session.lint()) == 0
