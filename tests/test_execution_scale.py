"""Scale-out execution: sharding, the sharded/async executors, the
optimizer-chosen parallelism degree.

The contract under test: at any shard count, the sharded executor — and the
asyncio executor at any fanout — produce exactly the records, per-operator
stats, provenance graphs, and (run-to-run) traces the sequential executor
produces; the only thing allowed to change is the simulated makespan, which
must *shrink* as the shardable prefix fans out.
"""

from __future__ import annotations

import asyncio
import sys

import pytest

import repro as pz
from repro.core.builtin_schemas import TextFile
from repro.core.dataset import Dataset
from repro.core.records import DataRecord
from repro.core.sources import (
    SHARD_BALANCED,
    SHARD_ROUND_ROBIN,
    CallbackSource,
    DatasetError,
    MemorySource,
    SourceShard,
    shard_assignment,
    shard_source,
)
from repro.execution.asyncexec import AsyncExecutor
from repro.execution.execute import Execute
from repro.execution.executors import SequentialExecutor
from repro.execution.sharded import ShardedExecutor
from repro.llm.client import BooleanRequest, SimulatedLLMClient
from repro.llm.clock import VirtualClock
from repro.llm.models import get_model
from repro.llm.oracle import DocumentTruth, global_oracle
from repro.llm.usage import UsageLedger
from repro.obs.provenance import ProvenanceRecorder
from repro.obs.trace import Tracer
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.policies import MaxQuality, MinTime
from repro.physical.context import ExecutionContext

sys.path.insert(0, "tests")
from test_execution_pipeline import (  # noqa: E402
    chosen_plan,
    make_source,
    run_fingerprint,
    shape_filter_convert,
    shape_groupby,
    shape_limit_early,
    shape_retrieve,
    shape_sort_limit,
)


def shape_join(source):
    docs = ["Team alpha studies colorectal cancer.",
            "Team beta studies gardening."]
    for doc in docs:
        global_oracle().register(
            doc,
            DocumentTruth(
                predicates={"about colorectal cancer": True},
                difficulty=0.0,
            ),
        )
    right = Dataset(
        MemorySource(docs, dataset_id="scale-join-right", schema=TextFile)
    )
    return (
        Dataset(source)
        .filter("about colorectal cancer")
        .join(right, udf=lambda left, r: "alpha" in r.text_contents)
    )


SHAPES = [
    shape_filter_convert,   # pure shardable prefix + convert fan-out
    shape_limit_early,      # early-stop inline path (limit defeats sharding)
    shape_groupby,          # decomposable blocking suffix
    shape_sort_limit,       # non-decomposable blocking suffix
    shape_retrieve,         # blocking head: empty shardable prefix
    shape_join,             # join suffix with its own right-hand pipeline
]

SHARD_COUNTS = (1, 2, 4, 8)


def run_scaled(plan, kind, degree, strategy=SHARD_ROUND_ROBIN, batch=1,
               tracer=None, recorder=None):
    context = ExecutionContext(max_workers=max(1, degree))
    if tracer is not None:
        context.tracer = tracer
    if recorder is not None:
        context.provenance = recorder
    if kind == "sequential":
        executor = SequentialExecutor(context)
    elif kind == "async":
        executor = AsyncExecutor(context, fanout=degree, batch_size=batch)
    else:
        executor = ShardedExecutor(
            context, shards=degree, strategy=strategy, batch_size=batch
        )
    records, stats = executor.execute(plan)
    return records, stats, context


# ----------------------------------------------------------------------
# The sharding layer itself.
# ----------------------------------------------------------------------

class TestShardAssignment:
    def test_round_robin_assignment(self):
        assert shard_assignment(3, count=7) == [0, 1, 2, 0, 1, 2, 0]
        assert shard_assignment(1, count=4) == [0, 0, 0, 0]

    def test_balanced_assignment_greedy_min_load(self):
        # Weights 10, 1, 1, 1: the big record pins shard 0, the rest
        # accumulate on the lighter shard.
        assignment = shard_assignment(
            2, weights=[10, 1, 1, 1], strategy=SHARD_BALANCED
        )
        assert assignment == [0, 1, 1, 1]

    def test_balanced_ties_break_to_lowest_shard(self):
        assignment = shard_assignment(
            3, weights=[1, 1, 1], strategy=SHARD_BALANCED
        )
        assert assignment == [0, 1, 2]

    def test_invalid_arguments(self):
        with pytest.raises(DatasetError):
            shard_assignment(0, count=3)
        with pytest.raises(DatasetError):
            shard_assignment(2, count=3, strategy="zigzag")
        with pytest.raises(DatasetError):
            shard_assignment(2, strategy=SHARD_BALANCED)  # needs weights


class TestSourceShard:
    def test_shards_partition_the_source(self):
        source = make_source(n=10, dataset_id="scale-partition")
        shards = shard_source(source, 4)
        assert [s.dataset_id for s in shards] == [
            f"{source.dataset_id}#shard{k}" for k in range(4)
        ]
        seen = []
        for shard in shards:
            seen.extend(shard.global_indices)
        assert sorted(seen) == list(range(10))
        assert sum(len(s) for s in shards) == len(source)

    def test_shard_iteration_preserves_record_identity(self):
        source = make_source(n=6, dataset_id="scale-identity")
        originals = [r.to_dict() for r in source]
        shards = shard_source(source, 2)
        merged = {}
        for shard in shards:
            for index, record in zip(shard.global_indices, shard):
                merged[index] = record.to_dict()
        assert [merged[i] for i in range(6)] == originals

    def test_balanced_strategy_covers_all_records(self):
        source = make_source(n=9, dataset_id="scale-balanced")
        shards = shard_source(source, 3, strategy=SHARD_BALANCED)
        seen = sorted(
            index for shard in shards for index in shard.global_indices
        )
        assert seen == list(range(9))

    def test_assignment_cached_per_configuration(self):
        source = make_source(n=8, dataset_id="scale-cache")
        first = shard_source(source, 2)
        second = shard_source(source, 2)
        assert [s.global_indices for s in first] == [
            s.global_indices for s in second
        ]
        assert isinstance(first[0], SourceShard)

    def test_negative_shard_index_rejected(self):
        source = make_source(n=4, dataset_id="scale-neg")
        with pytest.raises(DatasetError):
            SourceShard(source, -1, [0, 0, 0, 0], SHARD_ROUND_ROBIN)


class TestProfileSinglePass:
    def test_iterator_only_source_profiles_in_one_pass(self):
        passes = []

        def factory():
            passes.append(1)
            for index in range(12):
                yield DataRecord(
                    TextFile,
                    {"filename": f"f{index}", "contents": f"doc {index}"},
                )

        source = CallbackSource(
            factory, dataset_id="scale-onepass", schema=TextFile
        )
        profile = source.profile(sample_size=5)
        assert profile.cardinality == 12
        # The old implementation sampled (pass 1) then called __len__
        # (pass 2); the fix counts cardinality during the sampling pass.
        assert len(passes) == 1

    def test_known_length_source_stops_after_sample(self):
        yielded = []

        def factory():
            for index in range(100):
                yielded.append(index)
                yield DataRecord(
                    TextFile,
                    {"filename": f"f{index}", "contents": f"doc {index}"},
                )

        source = CallbackSource(
            factory, dataset_id="scale-cheaplen", schema=TextFile,
            length=100,
        )
        profile = source.profile(sample_size=5)
        assert profile.cardinality == 100
        # With a cheap length there is no reason to drain the iterator.
        assert len(yielded) == 5


# ----------------------------------------------------------------------
# Executor equivalence: records, stats, provenance, traces.
# ----------------------------------------------------------------------

class TestScaleOutEquivalence:
    @pytest.mark.parametrize(
        "shape", SHAPES, ids=lambda fn: fn.__name__.replace("shape_", "")
    )
    def test_sharded_matches_sequential_at_every_degree(self, shape):
        source = make_source(n=10, dataset_id=f"scale-eq-{shape.__name__}")
        plan = chosen_plan(shape(source), source)
        baseline = run_fingerprint(*run_scaled(plan, "sequential", 1)[:2])
        for degree in SHARD_COUNTS:
            records, stats, _ = run_scaled(plan, "sharded", degree)
            assert run_fingerprint(records, stats) == baseline, (
                f"shards={degree}"
            )

    @pytest.mark.parametrize(
        "shape", SHAPES, ids=lambda fn: fn.__name__.replace("shape_", "")
    )
    def test_async_matches_sequential(self, shape):
        source = make_source(n=10, dataset_id=f"scale-aeq-{shape.__name__}")
        plan = chosen_plan(shape(source), source)
        baseline = run_fingerprint(*run_scaled(plan, "sequential", 1)[:2])
        for fanout in (1, 4):
            records, stats, _ = run_scaled(plan, "async", fanout)
            assert run_fingerprint(records, stats) == baseline, (
                f"fanout={fanout}"
            )

    def test_balanced_strategy_matches_round_robin_output(self):
        source = make_source(n=12, dataset_id="scale-eq-balanced")
        plan = chosen_plan(shape_filter_convert(source), source)
        baseline = run_fingerprint(*run_scaled(plan, "sequential", 1)[:2])
        for degree in (2, 4):
            records, stats, _ = run_scaled(
                plan, "sharded", degree, strategy=SHARD_BALANCED
            )
            assert run_fingerprint(records, stats) == baseline

    def test_shard_batching_matches_per_record(self):
        source = make_source(n=12, dataset_id="scale-eq-batch")
        plan = chosen_plan(shape_filter_convert(source), source)
        baseline = run_fingerprint(*run_scaled(plan, "sequential", 1)[:2])
        for degree, batch in ((2, 4), (4, 3)):
            records, stats, _ = run_scaled(
                plan, "sharded", degree, batch=batch
            )
            assert run_fingerprint(records, stats) == baseline

    def test_sharding_shrinks_simulated_time(self):
        source = make_source(n=12, dataset_id="scale-speedup")
        plan = chosen_plan(shape_filter_convert(source), source)
        _, sequential, _ = run_scaled(plan, "sequential", 1)
        _, sharded, _ = run_scaled(plan, "sharded", 4)
        _, fanned, _ = run_scaled(plan, "async", 4)
        assert (
            sharded.total_time_seconds
            < sequential.total_time_seconds / 2
        )
        assert fanned.total_time_seconds < sequential.total_time_seconds / 2

    def test_provenance_identical_across_executors(self):
        source = make_source(n=8, dataset_id="scale-prov")
        plan = chosen_plan(shape_filter_convert(source), source)

        def signature(kind, degree):
            recorder = ProvenanceRecorder()
            records, _, _ = run_scaled(
                plan, kind, degree, recorder=recorder
            )
            return recorder.finalize(records).signature()

        baseline = signature("sequential", 1)
        assert signature("sharded", 4) == baseline
        assert signature("sharded", 8) == baseline
        assert signature("async", 4) == baseline

    def test_sharded_trace_identical_across_runs(self):
        source = make_source(n=8, dataset_id="scale-trace")
        plan = chosen_plan(shape_filter_convert(source), source)

        def traced(kind, degree):
            context = ExecutionContext(max_workers=degree)
            context.tracer = Tracer(clock=context.clock)
            if kind == "async":
                executor = AsyncExecutor(context, fanout=degree)
            else:
                executor = ShardedExecutor(context, shards=degree)
            executor.execute(plan)
            return context.tracer.finish().signature()

        for kind in ("sharded", "async"):
            signatures = {traced(kind, 4) for _ in range(3)}
            assert len(signatures) == 1, kind

    def test_stress_eight_shards_repeated(self):
        source = make_source(n=16, dataset_id="scale-stress")
        plan = chosen_plan(shape_filter_convert(source), source)
        baseline = run_fingerprint(*run_scaled(plan, "sequential", 1)[:2])
        for _ in range(5):
            records, stats, _ = run_scaled(plan, "sharded", 8, batch=2)
            assert run_fingerprint(records, stats) == baseline


# ----------------------------------------------------------------------
# The coroutine client API.
# ----------------------------------------------------------------------

class TestAsyncClient:
    def test_ajudge_matches_judge(self):
        text = "An async note about colorectal cancer screening."
        global_oracle().register(
            text,
            DocumentTruth(
                predicates={"about cancer": True}, difficulty=0.0
            ),
        )
        request = BooleanRequest(
            predicate="about cancer", document=text, operation="filter"
        )

        def client():
            return SimulatedLLMClient(
                get_model("gpt-4o-mini"), clock=VirtualClock(lanes=1),
                ledger=UsageLedger(), oracle=global_oracle(),
            )

        sync_client = client()
        sync_response = sync_client.judge(request)
        async_client = client()
        async_response = asyncio.run(async_client.ajudge(request))
        assert async_response.value == sync_response.value
        assert async_response.text == sync_response.text
        assert (
            async_client.ledger.total().cost_usd
            == sync_client.ledger.total().cost_usd
        )

    def test_coroutines_never_suspend(self):
        """The no-suspend invariant the async executor's attribution
        rests on: a client coroutine must complete on its first step."""
        text = "A note about colorectal cancer for the suspend check."
        global_oracle().register(
            text,
            DocumentTruth(
                predicates={"about cancer": True}, difficulty=0.0
            ),
        )
        client = SimulatedLLMClient(
            get_model("gpt-4o-mini"), clock=VirtualClock(lanes=1),
            ledger=UsageLedger(), oracle=global_oracle(),
        )
        coroutine = client.ajudge(BooleanRequest(
            predicate="about cancer", document=text, operation="filter"
        ))
        with pytest.raises(StopIteration) as stop:
            coroutine.send(None)
        assert stop.value.value.value is True


# ----------------------------------------------------------------------
# Optimizer integration: pricing and the chosen degree.
# ----------------------------------------------------------------------

class TestOptimizerChoosesDegree:
    def test_min_time_picks_a_parallel_degree_on_a_large_source(self):
        source = make_source(n=24, dataset_id="scale-opt-large")
        dataset = Dataset(source).filter(
            "about colorectal cancer"
        )
        report = Optimizer(
            MinTime(), executor="sharded",
            include_embedding_filter=False,
        ).optimize(dataset.logical_plan(), source)
        assert report.chosen.plan.shards > 1
        # Candidates cover every degree, so the report shows the tradeoff.
        assert {c.plan.shards for c in report.candidates} == {1, 2, 4, 8}

    def test_degrees_capped_by_source_cardinality(self):
        source = make_source(n=3, dataset_id="scale-opt-tiny")
        dataset = Dataset(source).filter("about colorectal cancer")
        report = Optimizer(
            MinTime(), executor="sharded",
            include_embedding_filter=False,
        ).optimize(dataset.logical_plan(), source)
        assert {c.plan.shards for c in report.candidates} == {1, 2}
        assert report.chosen.plan.shards <= 3

    def test_explicit_shards_stamped_on_chosen_plan(self):
        source = make_source(n=8, dataset_id="scale-opt-pinned")
        dataset = Dataset(source).filter("about colorectal cancer")
        report = Optimizer(
            MaxQuality(), executor="async", shards=4
        ).optimize(dataset.logical_plan(), source)
        assert report.chosen.plan.shards == 4

    def test_sequential_estimates_unchanged_by_scale_out_params(self):
        source = make_source(n=8, dataset_id="scale-opt-noop")
        dataset = Dataset(source).filter("about colorectal cancer")
        base = Optimizer(MaxQuality()).optimize(
            dataset.logical_plan(), source
        )
        scaled = Optimizer(
            MaxQuality(), executor="sharded", shards=1
        ).optimize(dataset.logical_plan(), source)
        assert (
            base.chosen.estimate.cost_usd
            == scaled.chosen.estimate.cost_usd
        )
        assert (
            base.chosen.estimate.time_seconds
            == scaled.chosen.estimate.time_seconds
        )


# ----------------------------------------------------------------------
# The Execute entry point and stats surface.
# ----------------------------------------------------------------------

class TestExecuteScaleOut:
    def test_execute_sharded_entry_point(self):
        source = make_source(dataset_id="scale-entry")
        dataset = shape_filter_convert(source)
        records, sequential = Execute(dataset, policy=MaxQuality())
        sharded_records, sharded = Execute(
            dataset, policy=MaxQuality(), executor="sharded", shards=4,
        )
        assert [r.to_dict() for r in sharded_records] == [
            r.to_dict() for r in records
        ]
        assert sequential.shards == 1
        assert sharded.executor == "sharded"
        assert sharded.shards == 4
        assert sharded.to_dict()["shards"] == 4
        assert "shards=4" in sharded.summary()
        assert (
            sharded.plan_stats.total_time_seconds
            < sequential.plan_stats.total_time_seconds
        )

    def test_execute_async_optimizer_chooses_degree(self):
        source = make_source(n=12, dataset_id="scale-entry-async")
        dataset = shape_filter_convert(source)
        records, stats = Execute(
            dataset, policy=MinTime(), executor="async",
            include_embedding_filter=False,
        )
        assert stats.executor == "async"
        assert stats.shards > 1
        # The sharded executor prices identically, so the optimizer picks
        # the same plan and degree — and the outputs must agree.
        twin_records, twin = Execute(
            dataset, policy=MinTime(), executor="sharded",
            include_embedding_filter=False,
        )
        assert twin.shards == stats.shards
        assert [r.to_dict() for r in records] == [
            r.to_dict() for r in twin_records
        ]

    def test_execute_rejects_shards_for_single_chain_executors(self):
        source = make_source(dataset_id="scale-entry-reject")
        with pytest.raises(ValueError, match="shards only applies"):
            Execute(Dataset(source), executor="pipelined", shards=4)


# ----------------------------------------------------------------------
# PZ109: sharding that cannot help.
# ----------------------------------------------------------------------

class TestShardingLint:
    def test_shards_beyond_cardinality_warns(self):
        from repro.analysis import lint_plan

        source = make_source(n=2, dataset_id="scale-lint-tiny")
        dataset = Dataset(source).filter("about colorectal cancer")
        result = lint_plan(dataset, shards=8)
        codes = [f.code for f in result.diagnostics]
        assert "PZ109" in codes

    def test_leading_limit_warns(self):
        from repro.analysis import lint_plan

        source = make_source(n=8, dataset_id="scale-lint-limit")
        dataset = (
            Dataset(source).limit(2).filter("about colorectal cancer")
        )
        result = lint_plan(dataset, shards=4)
        assert any(
            f.code == "PZ109" and "limit" in f.message
            for f in result.diagnostics
        )

    def test_reasonable_sharding_is_clean(self):
        from repro.analysis import lint_plan

        source = make_source(n=8, dataset_id="scale-lint-ok")
        dataset = Dataset(source).filter("about colorectal cancer")
        result = lint_plan(dataset, shards=4)
        assert not any(f.code == "PZ109" for f in result.diagnostics)

    def test_degree_one_never_warns(self):
        from repro.analysis import lint_plan

        source = make_source(n=2, dataset_id="scale-lint-one")
        dataset = Dataset(source).limit(1)
        result = lint_plan(dataset, shards=1)
        assert not any(f.code == "PZ109" for f in result.diagnostics)


# ----------------------------------------------------------------------
# The chat surface: NL phrasings reach the scale-out executors.
# ----------------------------------------------------------------------

class TestChatExecutionModeIntent:
    @staticmethod
    def _plan(message):
        from repro.chat.intent import plan_requests
        from repro.chat.workspace import PipelineWorkspace

        return plan_requests(message, PipelineWorkspace())

    def test_sharded_with_explicit_count(self):
        calls = self._plan("set execution mode to sharded with 4 shards")
        assert calls[0].tool_name == "set_execution_mode"
        assert calls[0].arguments["executor"] == "sharded"
        assert calls[0].arguments["shards"] == 4

    def test_async_optimizer_chooses(self):
        calls = self._plan("use the async executor")
        assert calls[0].tool_name == "set_execution_mode"
        assert calls[0].arguments["executor"] == "async"
        assert "shards" not in calls[0].arguments

    def test_shard_the_pipeline_phrasing(self):
        calls = self._plan("shard the pipeline across 8 shards")
        assert calls[0].tool_name == "set_execution_mode"
        assert calls[0].arguments == {
            "executor": "sharded", "batch_size": 1, "shards": 8,
        }

    def test_legacy_phrasings_unchanged(self):
        calls = self._plan("use the pipelined executor with batch size 8")
        assert calls[0].tool_name == "set_execution_mode"
        assert calls[0].arguments == {
            "executor": "pipelined", "batch_size": 8,
        }


# ----------------------------------------------------------------------
# The synthetic scale corpus.
# ----------------------------------------------------------------------

class TestScaleCorpus:
    def test_generator_is_deterministic(self):
        from repro.corpora.scale import generate_scale_source

        first = generate_scale_source(50, dataset_id="scale-gen-a")
        second = generate_scale_source(50, dataset_id="scale-gen-b")
        assert [r.text_contents for r in first] == [
            r.text_contents for r in second
        ]
        assert len(first) == 50

    def test_scale_pipeline_speeds_up_sharded(self):
        from repro.corpora.scale import (
            SCALE_PREDICATE,
            generate_scale_source,
        )

        source = generate_scale_source(200, dataset_id="scale-gen-run")
        plan = chosen_plan(
            Dataset(source).filter(SCALE_PREDICATE), source,
            include_embedding_filter=False,
        )
        base_records, base_stats, _ = run_scaled(plan, "sequential", 1)
        records, stats, _ = run_scaled(plan, "sharded", 4)
        assert run_fingerprint(records, stats) == run_fingerprint(
            base_records, base_stats
        )
        # Half the notes are relevant; the simulated model's base error
        # rate may flip a handful of judgments (deterministically).
        assert abs(len(base_records) - 100) <= 5
        assert (
            stats.total_time_seconds
            < base_stats.total_time_seconds / 2
        )
