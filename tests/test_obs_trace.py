"""Tracing core: span nesting, canonical finalization, null tracer."""

import threading

from repro.llm.clock import VirtualClock
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanKind,
    Trace,
    Tracer,
    TraceStore,
)


class TestSpan:
    def test_duration_and_finish_at(self):
        span = Span("x.y", start=2.0)
        assert span.duration == 0.0  # unfinished
        span.finish_at(5.5)
        assert span.duration == 3.5

    def test_finish_at_wins_over_context_exit(self):
        clock = VirtualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("op.process", SpanKind.OPERATOR) as span:
            clock.advance(10.0)
            span.finish_at(span.start + 3.0)
        assert span.duration == 3.0

    def test_self_time_excludes_children(self):
        parent = Span("a.b", start=0.0, end=10.0)
        child = Span("c.d", start=0.0, end=4.0)
        parent.children.append(child)
        assert parent.self_time() == 6.0

    def test_negative_duration_clamped(self):
        span = Span("x.y", start=5.0, end=3.0)
        assert span.duration == 0.0


class TestTracerNesting:
    def test_with_block_nests_and_times(self):
        clock = VirtualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer.a", SpanKind.INTERNAL):
            clock.advance(1.0)
            with tracer.span("inner.b", SpanKind.INTERNAL):
                clock.advance(2.0)
            clock.advance(1.0)
        trace = tracer.finish()
        outer = trace.first("outer.a")
        inner = trace.first("inner.b")
        assert outer.duration == 4.0
        assert inner.duration == 2.0
        assert inner.parent_id == outer.span_id
        assert outer.parent_id == 0

    def test_event_is_zero_duration(self):
        clock = VirtualClock()
        tracer = Tracer(clock=clock)
        clock.advance(3.0)
        with tracer.span("outer.a"):
            tracer.event("agent.thought", SpanKind.AGENT, chars=42)
        trace = tracer.finish()
        event = trace.first("agent.thought")
        assert event.duration == 0.0
        assert event.start == 3.0
        assert event.attributes["chars"] == 42

    def test_record_uses_explicit_times(self):
        tracer = Tracer()
        tracer.record("llm.call", SpanKind.LLM, 1.5, 4.0, 2, model="m")
        trace = tracer.finish()
        span = trace.first("llm.call")
        assert (span.start, span.end, span.lane) == (1.5, 4.0, 2)

    def test_start_span_does_not_push(self):
        tracer = Tracer()
        owned = tracer.start_span("pipeline.stage", SpanKind.STAGE)
        # A subsequent span must NOT nest under the started span.
        with tracer.span("other.a"):
            pass
        assert tracer.current_span() is None
        trace = tracer.finish()
        assert trace.first("other.a").parent_id == 0
        assert owned in trace.roots

    def test_attach_parents_across_threads(self):
        tracer = Tracer()
        stage = tracer.start_span("pipeline.stage", SpanKind.STAGE)

        def worker(seq):
            with tracer.attach(stage):
                with tracer.span("pipeline.bundle", SpanKind.BUNDLE,
                                 seq=seq):
                    pass

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        trace = tracer.finish()
        stage_span = trace.first("pipeline.stage")
        assert len(stage_span.children) == 4
        for child in stage_span.children:
            assert child.parent_id == stage_span.span_id

    def test_attach_none_is_noop(self):
        tracer = Tracer()
        with tracer.attach(None):
            with tracer.span("a.b"):
                pass
        assert tracer.finish().first("a.b").parent_id == 0


class TestTraceFinalization:
    def test_ids_depth_first_from_one(self):
        tracer = Tracer()
        with tracer.span("r.one"):
            with tracer.span("c.one"):
                pass
            with tracer.span("c.two"):
                pass
        trace = tracer.finish()
        assert [s.span_id for s in trace.spans] == [1, 2, 3]
        assert [s.name for s in trace.spans] == ["r.one", "c.one", "c.two"]

    def test_seq_attribute_orders_siblings(self):
        store = TraceStore()
        root = Span("pipeline.stage", SpanKind.STAGE, 0.0, 1.0)
        for seq in (2, 0, 1):
            root.children.append(
                Span("pipeline.bundle", SpanKind.BUNDLE,
                     attributes={"seq": seq}))
        store.add_root(root)
        trace = store.build()
        seqs = [c.attributes["seq"]
                for c in trace.first("pipeline.stage").children]
        assert seqs == [0, 1, 2]

    def test_missing_seq_keeps_append_order_after_seq_spans(self):
        root = Span("r.oot", start=0.0, end=1.0)
        root.children.append(Span("late.a"))
        root.children.append(
            Span("b.undle", attributes={"seq": 0}))
        trace = Trace([root])
        names = [c.name for c in trace.roots[0].children]
        assert names == ["b.undle", "late.a"]

    def test_signature_is_stable(self):
        def build():
            clock = VirtualClock()
            tracer = Tracer(clock=clock)
            with tracer.span("plan.run", SpanKind.PLAN, executor="seq"):
                clock.advance(1.25)
                tracer.record("llm.call", SpanKind.LLM, 0.0, 1.25, 0,
                              model="gpt-4o", operation="filter")
            return tracer.finish().signature()

        assert build() == build()
        assert "plan.run" in build() and "llm.call" in build()

    def test_makespan_and_find(self):
        tracer = Tracer()
        tracer.record("a.b", SpanKind.INTERNAL, 0.0, 2.0, 0)
        tracer.record("a.b", SpanKind.INTERNAL, 1.0, 5.0, 1)
        trace = tracer.finish()
        assert trace.makespan == 5.0
        assert len(trace.find("a.b")) == 2
        assert trace.first("missing.name") is None
        assert len(trace) == 2


class TestNullTracer:
    def test_disabled_and_shared_span(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)
        span = NULL_TRACER.span("a.b", SpanKind.CHAT, anything=1)
        with span as inner:
            inner.set_attribute("k", "v")
            inner.finish_at(99.0)
        assert NULL_TRACER.event("x.y") is span
        assert NULL_TRACER.record("x.y", SpanKind.LLM, 0, 1, 0) is span
        assert NULL_TRACER.start_span("x.y") is span
        assert NULL_TRACER.attach(None) is span

    def test_finish_returns_empty_trace(self):
        trace = NULL_TRACER.finish()
        assert len(trace) == 0
        assert trace.makespan == 0.0

    def test_real_tracer_enabled(self):
        assert Tracer().enabled is True
