"""The ``repro lint`` CLI: broken fixtures fail, shipped artifacts pass."""

import json
from pathlib import Path

import pytest

from repro.cli import main

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"


@pytest.fixture()
def demo_data_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("lint-corpora"))


def write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(source)
    return str(path)


class TestBrokenFixturesExitNonZero:
    def test_bad_field_reference(self, tmp_path, capsys):
        fixture = write(tmp_path, "broken_pipeline.py", (
            "from repro.core.dataset import Dataset\n"
            "from repro.core.sources import MemorySource\n"
            "source = MemorySource(['a', 'b'], 'cli-lint-1')\n"
            "pipeline = Dataset(source).filter('x', depends_on=['ghost'])\n"
        ))
        code = main(["lint", "--no-demos", "--no-tools", "--load", fixture])
        assert code == 1
        assert "PZ101" in capsys.readouterr().out

    def test_docstring_signature_mismatch(self, tmp_path, capsys):
        fixture = write(tmp_path, "broken_tool.py", (
            "from repro.agent.tools import tool\n"
            "@tool()\n"
            "def summarize(text: str) -> str:\n"
            "    '''Summarize.\n\n"
            "    Args:\n"
            "        document: the text.\n"
            "    '''\n"
            "    return text\n"
        ))
        code = main(["lint", "--no-demos", "--no-tools", "--load", fixture])
        assert code == 1
        assert "AG201" in capsys.readouterr().out

    def test_dangling_template_variable(self, tmp_path, capsys):
        fixture = write(tmp_path, "broken_template.py", (
            "from repro.agent.code_tools import CodeTool\n"
            "from repro.agent.tools import ToolParameter\n"
            "shout = CodeTool(\n"
            "    name='shout', summary='Shout.',\n"
            "    template='result = {{ message }} + {{ ghost }}',\n"
            "    parameters=[ToolParameter(name='message',"
            " type_name='string')],\n"
            ")\n"
        ))
        code = main(["lint", "--no-demos", "--no-tools", "--load", fixture])
        assert code == 1
        assert "AG205" in capsys.readouterr().out

    def test_invalid_generated_program(self, tmp_path, capsys):
        fixture = write(tmp_path, "broken_program.py", (
            "import repro as pz\n"
            "dataset = pz.Datasets(source='demo')\n"
            "print(undefined_name)\n"
        ))
        code = main(["lint", "--no-demos", "--no-tools", fixture])
        assert code == 1
        out = capsys.readouterr().out
        assert "CG302" in out
        assert "CG304" in out

    def test_unloadable_fixture_reports_cg306(self, tmp_path, capsys):
        fixture = write(tmp_path, "crashes.py", "raise RuntimeError('no')\n")
        code = main(["lint", "--no-demos", "--no-tools", "--load", fixture])
        assert code == 1
        assert "CG306" in capsys.readouterr().out


class TestShippedArtifactsExitZero:
    def test_examples_lint_clean(self, capsys):
        code = main([
            "lint", "--no-demos", "--no-tools", str(EXAMPLES_DIR),
        ])
        assert code == 0, capsys.readouterr().out

    def test_demos_and_tools_lint_clean(self, demo_data_dir, capsys):
        code = main(["lint", "--data-dir", demo_data_dir])
        assert code == 0, capsys.readouterr().out


class TestFlags:
    def test_disable_suppresses_rule(self, tmp_path, capsys):
        fixture = write(tmp_path, "broken.py", (
            "import repro as pz\nprint(undefined_name)\n"
        ))
        code = main([
            "lint", "--no-demos", "--no-tools", "--disable", "CG304",
            fixture,
        ])
        assert code == 0

    def test_json_format(self, tmp_path, capsys):
        fixture = write(tmp_path, "broken.py", (
            "import repro as pz\nprint(undefined_name)\n"
        ))
        code = main([
            "lint", "--no-demos", "--no-tools", "--format", "json", fixture,
        ])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 1
        assert payload["diagnostics"][0]["code"] == "CG304"

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("PZ101", "AG201", "CG301"):
            assert code in out

    def test_strict_fails_on_warnings(self, tmp_path):
        fixture = write(tmp_path, "warn_pipeline.py", (
            "from repro.core.dataset import Dataset\n"
            "from repro.core.sources import MemorySource\n"
            "source = MemorySource(['a', 'b'], 'cli-lint-2')\n"
            "pipeline = Dataset(source).limit(1).filter('x')\n"
        ))
        args = ["lint", "--no-demos", "--no-tools", "--load", fixture]
        assert main(args) == 0
        assert main(args + ["--strict"]) == 1


class TestFamilyFilter:
    CC_FIXTURE = (
        "import time\n"
        "def stamp(record):\n"
        "    record.at = time.time()\n"
    )

    def test_family_runs_only_that_family(self, tmp_path, capsys):
        # The fixture breaks a CG rule (undefined name) AND a CC rule
        # (wall clock); --family CC must surface only the CC finding.
        fixture = write(tmp_path, "mixed.py", (
            "import time\n"
            "print(undefined_name)\n"
            "stamp = time.time()\n"
        ))
        code = main([
            "lint", "--no-demos", "--no-tools", "--family", "CC", fixture,
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "CC504" in out
        assert "CG304" not in out

    def test_family_accepts_multiple(self, tmp_path, capsys):
        fixture = write(tmp_path, "mixed2.py", (
            "import time\n"
            "print(undefined_name)\n"
            "stamp = time.time()\n"
        ))
        code = main([
            "lint", "--no-demos", "--no-tools", "--family", "CC,CG",
            fixture,
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "CC504" in out and "CG304" in out

    def test_unknown_family_exits_2(self, capsys):
        assert main(["lint", "--family", "ZZ"]) == 2
        assert "unknown rule families" in capsys.readouterr().out

    def test_family_cc_clean_on_engine_source(self, capsys):
        src = str(Path(__file__).resolve().parents[1] / "src" / "repro")
        code = main(["lint", "--no-demos", "--no-tools",
                     "--family", "CC", "--strict", src])
        assert code == 0, capsys.readouterr().out

    def test_list_rules_grouped_with_counts(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for family in ("PZ", "AG", "CG", "OB", "CC", "SV"):
            assert f"{family} — " in out
        assert "CC501" in out and "CC507" in out
        assert "SV601" in out
        assert "rules in 6 families" in out

    def test_json_families_block(self, tmp_path, capsys):
        fixture = write(tmp_path, "cc_broken.py", self.CC_FIXTURE)
        code = main([
            "lint", "--no-demos", "--no-tools", "--format", "json",
            fixture,
        ])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["families"]["CC"]["findings"] == 1
        assert payload["families"]["CC"]["errors"] == 1
