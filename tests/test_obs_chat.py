"""Chat-layer observability: session traces and "what took so long"."""

import pytest

from repro.chat.intent import plan_requests
from repro.chat.session import PalimpChatSession
from repro.chat.workspace import PipelineWorkspace
from repro.obs.trace import SpanKind


@pytest.fixture()
def session(sigmod_demo):
    return PalimpChatSession()


def run_pipeline(session):
    session.chat("Load the papers from the sigmod-demo dataset")
    session.chat("Keep only the papers about colorectal cancer")
    session.chat("Maximize quality and run the pipeline")


class TestExplainIntent:
    @pytest.mark.parametrize("message", [
        "What took so long?",
        "Explain the last run",
        "Why was it so slow?",
        "Profile the previous execution",
        "What was the bottleneck?",
        "Where did the time go?",
    ])
    def test_phrasings_route_to_explain(self, message):
        calls = plan_requests(message, PipelineWorkspace())
        assert [c.tool_name for c in calls] == ["explain_execution"]

    def test_run_phrasings_still_execute(self):
        workspace = PipelineWorkspace()
        calls = plan_requests("run the pipeline", workspace)
        assert [c.tool_name for c in calls] == ["execute_pipeline"]
        # "explain the plans" keeps meaning plan-space explanation.
        calls = plan_requests("explain the plans", workspace)
        assert "explain_execution" not in [c.tool_name for c in calls]


class TestExplainExecutionTool:
    def test_answers_after_a_run(self, session):
        run_pipeline(session)
        reply = session.chat("What took so long?")
        assert reply.tool_sequence == ["explain_execution"]
        assert "Hotspots" in reply.text or "Critical path" in reply.text
        assert "LLM calls:" in reply.text

    def test_errors_before_any_run(self, session):
        session.chat("Load the papers from the sigmod-demo dataset")
        reply = session.chat("What took so long?")
        assert "explain_execution" in reply.tool_sequence
        assert "no pipeline has been executed" in reply.text.lower() \
            or "error" in reply.text.lower()

    def test_last_trace_stored_on_workspace(self, session):
        run_pipeline(session)
        assert session.last_trace is not None
        assert session.last_trace.first("plan.run") is not None


class TestProvenanceIntents:
    @pytest.mark.parametrize("message,tool,arguments", [
        ("Why is record 3 in the output?",
         "explain_record", {"record_id": 3}),
        ("Explain record #2", "explain_record", {"record_id": 2}),
        ("What is the provenance of the first result?",
         "explain_record", {"record_id": 0}),
        ("Why isn't paper-003.pdf in the output?",
         "explain_record", {"source": "paper-003.pdf"}),
        ("What happened to paper-007.pdf?",
         "explain_record", {"source": "paper-007.pdf"}),
        ("Why was record 4 filtered out?",
         "explain_record", {"source": "record 4 filtered out"}),
        ("What changed since the last run?", "compare_runs", {}),
        ("How do the two runs differ?", "compare_runs", {}),
    ])
    def test_phrasings_route_with_arguments(self, message, tool, arguments):
        calls = plan_requests(message, PipelineWorkspace())
        assert [c.tool_name for c in calls] == [tool]
        assert calls[0].arguments == arguments

    def test_compare_does_not_trigger_execute(self):
        # "...last run" contains "run"; the longer compare_runs span must
        # suppress the contained execute hit.
        calls = plan_requests(
            "what changed since the last run?", PipelineWorkspace())
        assert "execute_pipeline" not in [c.tool_name for c in calls]

    def test_run_phrasings_still_execute(self):
        calls = plan_requests("run the pipeline", PipelineWorkspace())
        assert [c.tool_name for c in calls] == ["execute_pipeline"]


class TestProvenanceTools:
    def test_why_after_a_run(self, session):
        run_pipeline(session)
        assert session.last_provenance is not None
        reply = session.chat("Why is record 1 in the output?")
        assert reply.tool_sequence == ["explain_record"]
        assert "record #1" in reply.text
        assert "produced by" in reply.text or "source" in reply.text

    def test_why_without_id_lists_outputs(self, session):
        run_pipeline(session)
        reply = session.chat("Give me the derivation tree")
        assert reply.tool_sequence == ["explain_record"]
        assert "#" in reply.text

    def test_why_not_names_the_eliminating_op(self, session):
        run_pipeline(session)
        reply = session.chat("Why isn't paper-002.pdf in the output?")
        assert reply.tool_sequence == ["explain_record"]
        assert "paper-002.pdf" in reply.text

    def test_errors_before_any_run(self, session):
        session.chat("Load the papers from the sigmod-demo dataset")
        reply = session.chat("Why is record 1 in the output?")
        assert "explain_record" in reply.tool_sequence
        assert "error" in reply.text.lower() \
            or "no provenance" in reply.text.lower()

    def test_compare_needs_two_runs(self, session):
        run_pipeline(session)
        reply = session.chat("What changed since the last run?")
        assert "compare_runs" in reply.tool_sequence
        assert "error" in reply.text.lower() or "two" in reply.text.lower()

    def test_compare_after_two_runs(self, session):
        run_pipeline(session)
        session.chat("Run the pipeline again")
        assert len(session.run_history) == 2
        reply = session.chat("What changed since the last run?")
        assert "compare_runs" in reply.tool_sequence
        assert "Run diff" in reply.text
        assert "plan:" in reply.text

    def test_run_history_survives_reset(self, session):
        run_pipeline(session)
        session.chat("Start over")
        assert session.last_provenance is None
        assert len(session.run_history) == 1


class TestSessionTrace:
    def test_chat_turn_spans_per_message(self, session):
        session.chat("Load the papers from the sigmod-demo dataset")
        session.chat("Keep only the papers about colorectal cancer")
        trace = session.session_trace()
        turns = trace.find("chat.turn")
        assert len(turns) == 2
        assert [t.attributes["turn"] for t in turns] == [0, 1]

    def test_nesting_chat_agent_tool_llm(self, session):
        session.chat("Load the papers from the sigmod-demo dataset")
        trace = session.session_trace()
        turn = trace.first("chat.turn")
        run = trace.first("agent.run")
        step = trace.first("agent.step")
        invoke = trace.first("tool.invoke")
        assert run.parent_id == turn.span_id
        assert step.parent_id == run.span_id
        assert invoke.attributes["tool"] == "load_dataset"
        # The intent decomposition is traced under the agent's run.
        assert trace.first("chat.intent") is not None

    def test_agent_events_recorded(self, session):
        session.chat("Load the papers from the sigmod-demo dataset")
        trace = session.session_trace()
        thoughts = trace.find("agent.thought")
        observations = trace.find("agent.observation")
        assert thoughts and observations
        assert all(t.duration == 0.0 for t in thoughts)
        assert all(t.kind == SpanKind.AGENT for t in thoughts)

    def test_untraced_session_records_nothing(self, sigmod_demo):
        session = PalimpChatSession(trace=False)
        session.chat("Load the papers from the sigmod-demo dataset")
        assert len(session.session_trace()) == 0

    def test_tracing_does_not_change_replies(self, sigmod_demo):
        traced = PalimpChatSession()
        untraced = PalimpChatSession(trace=False)
        prompts = [
            "Load the papers from the sigmod-demo dataset",
            "Keep only the papers about colorectal cancer",
            "Maximize quality and run the pipeline",
        ]
        for prompt in prompts:
            reply_t = traced.chat(prompt)
            reply_u = untraced.chat(prompt)
            assert reply_t.text == reply_u.text
            assert reply_t.tool_sequence == reply_u.tool_sequence
