"""Chat-layer observability: session traces and "what took so long"."""

import pytest

from repro.chat.intent import plan_requests
from repro.chat.session import PalimpChatSession
from repro.chat.workspace import PipelineWorkspace
from repro.obs.trace import SpanKind


@pytest.fixture()
def session(sigmod_demo):
    return PalimpChatSession()


def run_pipeline(session):
    session.chat("Load the papers from the sigmod-demo dataset")
    session.chat("Keep only the papers about colorectal cancer")
    session.chat("Maximize quality and run the pipeline")


class TestExplainIntent:
    @pytest.mark.parametrize("message", [
        "What took so long?",
        "Explain the last run",
        "Why was it so slow?",
        "Profile the previous execution",
        "What was the bottleneck?",
        "Where did the time go?",
    ])
    def test_phrasings_route_to_explain(self, message):
        calls = plan_requests(message, PipelineWorkspace())
        assert [c.tool_name for c in calls] == ["explain_execution"]

    def test_run_phrasings_still_execute(self):
        workspace = PipelineWorkspace()
        calls = plan_requests("run the pipeline", workspace)
        assert [c.tool_name for c in calls] == ["execute_pipeline"]
        # "explain the plans" keeps meaning plan-space explanation.
        calls = plan_requests("explain the plans", workspace)
        assert "explain_execution" not in [c.tool_name for c in calls]


class TestExplainExecutionTool:
    def test_answers_after_a_run(self, session):
        run_pipeline(session)
        reply = session.chat("What took so long?")
        assert reply.tool_sequence == ["explain_execution"]
        assert "Hotspots" in reply.text or "Critical path" in reply.text
        assert "LLM calls:" in reply.text

    def test_errors_before_any_run(self, session):
        session.chat("Load the papers from the sigmod-demo dataset")
        reply = session.chat("What took so long?")
        assert "explain_execution" in reply.tool_sequence
        assert "no pipeline has been executed" in reply.text.lower() \
            or "error" in reply.text.lower()

    def test_last_trace_stored_on_workspace(self, session):
        run_pipeline(session)
        assert session.last_trace is not None
        assert session.last_trace.first("plan.run") is not None


class TestSessionTrace:
    def test_chat_turn_spans_per_message(self, session):
        session.chat("Load the papers from the sigmod-demo dataset")
        session.chat("Keep only the papers about colorectal cancer")
        trace = session.session_trace()
        turns = trace.find("chat.turn")
        assert len(turns) == 2
        assert [t.attributes["turn"] for t in turns] == [0, 1]

    def test_nesting_chat_agent_tool_llm(self, session):
        session.chat("Load the papers from the sigmod-demo dataset")
        trace = session.session_trace()
        turn = trace.first("chat.turn")
        run = trace.first("agent.run")
        step = trace.first("agent.step")
        invoke = trace.first("tool.invoke")
        assert run.parent_id == turn.span_id
        assert step.parent_id == run.span_id
        assert invoke.attributes["tool"] == "load_dataset"
        # The intent decomposition is traced under the agent's run.
        assert trace.first("chat.intent") is not None

    def test_agent_events_recorded(self, session):
        session.chat("Load the papers from the sigmod-demo dataset")
        trace = session.session_trace()
        thoughts = trace.find("agent.thought")
        observations = trace.find("agent.observation")
        assert thoughts and observations
        assert all(t.duration == 0.0 for t in thoughts)
        assert all(t.kind == SpanKind.AGENT for t in thoughts)

    def test_untraced_session_records_nothing(self, sigmod_demo):
        session = PalimpChatSession(trace=False)
        session.chat("Load the papers from the sigmod-demo dataset")
        assert len(session.session_trace()) == 0

    def test_tracing_does_not_change_replies(self, sigmod_demo):
        traced = PalimpChatSession()
        untraced = PalimpChatSession(trace=False)
        prompts = [
            "Load the papers from the sigmod-demo dataset",
            "Keep only the papers about colorectal cancer",
            "Maximize quality and run the pipeline",
        ]
        for prompt in prompts:
            reply_t = traced.chat(prompt)
            reply_u = untraced.chat(prompt)
            assert reply_t.text == reply_u.text
            assert reply_t.tool_sequence == reply_u.tool_sequence
