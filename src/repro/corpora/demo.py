"""Convenience registration of the three demo datasets.

Calling :func:`register_demo_datasets` generates (or reuses) the corpora
under a base directory and registers them as named data sources —
``"sigmod-demo"`` (the id used in Fig. 6), ``"legal-demo"``, and
``"realestate-demo"`` — so chat sessions and examples can load them by name.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Dict, Optional

from repro.core.sources import DirectorySource, register_datasource
from repro.corpora.common import FACTS_FILENAME, load_corpus_facts
from repro.corpora.legal import generate_legal_corpus
from repro.corpora.papers import generate_paper_corpus
from repro.corpora.realestate import generate_realestate_corpus

DEMO_IDS = ("sigmod-demo", "legal-demo", "realestate-demo")


def register_demo_datasets(
    base_directory: Optional[str] = None,
    force: bool = False,
) -> Dict[str, Path]:
    """Generate + register the three demo corpora; return their directories.

    Idempotent: existing corpus directories are reused (their ground-truth
    sidecars are re-registered) unless ``force`` is set.
    """
    if base_directory is None:
        base_directory = Path(tempfile.gettempdir()) / "palimpchat-demo-data"
    base = Path(base_directory)
    base.mkdir(parents=True, exist_ok=True)

    plans = {
        "sigmod-demo": (base / "papers", generate_paper_corpus),
        "legal-demo": (base / "legal", generate_legal_corpus),
        "realestate-demo": (base / "realestate", generate_realestate_corpus),
    }
    directories: Dict[str, Path] = {}
    for dataset_id, (directory, generator) in plans.items():
        sidecar = directory / FACTS_FILENAME
        if force or not sidecar.exists():
            generator(directory)
        else:
            load_corpus_facts(directory)
        register_datasource(
            DirectorySource(directory, dataset_id=dataset_id), overwrite=True
        )
        directories[dataset_id] = directory
    return directories
