"""Large synthetic corpora for scale-out benchmarks.

The demo corpora (papers/legal/realestate) are sized like the paper's
scenarios — a dozen documents.  Measuring the sharded and async executors'
scaling curves needs sources three to four orders of magnitude larger, so
this module generates a deterministic in-memory corpus of 10k–100k short
"clinical notes": no disk writes, oracle truth registered per note, every
note distinct.  ``scripts/perf_snapshot.py`` runs its ``scale_*`` workloads
over it and records the curves into ``BENCH_perf.json``.

Determinism: note text is a pure function of ``(index, seed)``, so a given
``(n_docs, seed)`` pair always produces byte-identical documents,
fingerprints, and oracle answers — run after run, process after process.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.core.builtin_schemas import TextFile
from repro.core.sources import MemorySource
from repro.llm.oracle import DocumentTruth, global_oracle

#: The canonical filter predicate of the scale workload.
SCALE_PREDICATE = "The note is about colorectal cancer"

#: Extraction fields of the scale workload's schema.
SCALE_FIELDS: Dict[str, str] = {
    "cohort": "The name of the study cohort",
    "stage": "The reported disease stage",
}

#: Every ``RELEVANT_EVERY``-th note matches :data:`SCALE_PREDICATE`.
RELEVANT_EVERY = 2

_CONDITIONS = (
    "pediatric asthma",
    "type 2 diabetes",
    "chronic kidney disease",
    "seasonal influenza",
)

_STAGES = ("I", "II", "III", "IV")


def _note_text(index: int, seed: int, relevant: bool) -> str:
    cohort = f"SC-{seed}-{index:06d}"
    if relevant:
        condition = "colorectal cancer"
        detail = (
            "colonoscopy screening with adenoma follow-up and "
            "KRAS mutation profiling"
        )
    else:
        condition = _CONDITIONS[index % len(_CONDITIONS)]
        detail = "routine outpatient monitoring with standard labs"
    stage = _STAGES[index % len(_STAGES)]
    return (
        f"Clinical note {index} (cohort {cohort}). "
        f"The patient presents with {condition}, stage {stage}. "
        f"Management plan: {detail}. "
        f"Recorded by registry node {index % 7} for longitudinal study."
    )


def generate_scale_source(
    n_docs: int = 10_000,
    seed: int = 11,
    difficulty: float = 0.0,
    dataset_id: str = "",
) -> MemorySource:
    """An in-memory corpus of ``n_docs`` short notes with oracle truth.

    Half the notes (every :data:`RELEVANT_EVERY`-th, starting at 0) are
    about colorectal cancer; each note carries a unique ``cohort`` name and
    a cycling ``stage``, so filters, converts, and group-bys all have
    non-trivial work.  Notes are deliberately short (~40 words) — at 100k
    documents the simulated tokenizer, not the prose, should dominate.
    """
    if n_docs < 1:
        raise ValueError(f"n_docs must be >= 1, got {n_docs}")
    oracle = global_oracle()
    docs = []
    for index in range(n_docs):
        relevant = index % RELEVANT_EVERY == 0
        text = _note_text(index, seed, relevant)
        docs.append(text)
        oracle.register(
            text,
            DocumentTruth(
                predicates={
                    SCALE_PREDICATE: relevant,
                    "about colorectal cancer": relevant,
                },
                fields={
                    "cohort": f"SC-{seed}-{index:06d}",
                    "stage": _STAGES[index % len(_STAGES)],
                },
                difficulty=difficulty,
                label=f"scale-note-{index:06d}",
            ),
        )
    return MemorySource(
        docs,
        dataset_id=dataset_id or f"scale-{n_docs}-s{seed}",
        schema=TextFile,
    )


def _scale_truth(index: int, seed: int, relevant: bool,
                 difficulty: float) -> DocumentTruth:
    return DocumentTruth(
        predicates={
            SCALE_PREDICATE: relevant,
            "about colorectal cancer": relevant,
        },
        fields={
            "cohort": f"SC-{seed}-{index:06d}",
            "stage": _STAGES[index % len(_STAGES)],
        },
        difficulty=difficulty,
        label=f"scale-note-{index:06d}",
    )


def mutate_scale_source(
    n_docs: int = 10_000,
    seed: int = 11,
    adds: int = 0,
    edits: int = 0,
    drops: int = 0,
    difficulty: float = 0.0,
    dataset_id: str = "",
) -> MemorySource:
    """A deterministically drifted copy of the ``(n_docs, seed)`` corpus.

    The delta is a pure function of ``(n_docs, seed, adds, edits, drops)``:
    a dedicated ``random.Random`` seeded from exactly those values picks
    disjoint edit/drop victims, edited notes gain a fixed addendum
    sentence, and added notes continue the index sequence at ``n_docs``.
    Surviving documents keep their original manifest key
    (``<dataset_id>-<index>``), so diffing a mutated corpus against a
    :func:`generate_scale_source` base run yields precisely the requested
    added/changed/dropped sets — the reproducible workload behind the
    incremental-execution benchmarks and ``repro runs rerun``.

    Oracle truth is (re-)registered for every live document, edited ones
    included — an edit changes the fingerprint, not the answers.
    """
    if n_docs < 1:
        raise ValueError(f"n_docs must be >= 1, got {n_docs}")
    if min(adds, edits, drops) < 0:
        raise ValueError("adds/edits/drops must all be >= 0")
    if edits + drops > n_docs:
        raise ValueError(
            f"cannot edit {edits} + drop {drops} of {n_docs} documents"
        )
    rng = random.Random(f"scale-mutate:{n_docs}:{seed}:{adds}:{edits}:{drops}")
    victims = rng.sample(range(n_docs), edits + drops)
    edited = set(victims[:edits])
    dropped = set(victims[edits:])
    base_id = dataset_id or f"scale-{n_docs}-s{seed}"
    oracle = global_oracle()
    items = []
    for index in range(n_docs + adds):
        if index in dropped:
            continue
        relevant = index % RELEVANT_EVERY == 0
        text = _note_text(index, seed, relevant)
        if index in edited:
            text += (
                " Addendum: note revised after the follow-up visit; "
                "assessment unchanged, vitals stable."
            )
        oracle.register(text, _scale_truth(index, seed, relevant, difficulty))
        items.append({
            "filename": f"{base_id}-{index}",
            "text_contents": text,
        })
    return MemorySource(items, dataset_id=base_id, schema=TextFile)
