"""The scientific-discovery corpus: synthetic biomedical papers.

Reproduces the demo's workload (§3): a digital library of scientific papers,
"potentially large, containing unrelated papers, and ... not annotated with
metadata about the data sources".  The default configuration matches the
paper's numbers exactly: 11 papers, of which 8 are about colorectal cancer,
6 of those referencing one publicly available dataset each — so a perfect
filter + one-to-many extraction produces **6 dataset records**.
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.corpora.common import CorpusWriter, pad_to_words
from repro.llm.oracle import DocumentTruth

#: The canonical filter predicate of the scenario.
PAPERS_PREDICATE = "The papers are about colorectal cancer"

#: The extraction fields of the scenario's ClinicalData schema.
CLINICAL_FIELDS = {
    "name": "The name of the clinical data dataset",
    "description": "A short description of the content of the dataset",
    "url": "The public URL where the dataset can be accessed",
}

#: Named public datasets referenced by the relevant papers (synthetic but
#: shaped like the real resources the demo surfaced).
_DATASET_POOL: List[Tuple[str, str, str]] = [
    ("TCGA-COAD", "Genomic profiles of colon adenocarcinoma tumor samples",
     "https://portal.gdc-mirror.org/projects/TCGA-COAD"),
    ("CRC-Atlas", "Single-cell expression atlas of colorectal tumors",
     "https://data.crc-atlas.example.org/v2"),
    ("GEO-GSE4107x", "Microarray series of early-onset colorectal cancer",
     "https://ncbi-mirror.example.org/geo/GSE4107x"),
    ("COSMIC-CRC", "Catalogue of somatic mutations observed in colorectal cancer",
     "https://cosmic-mirror.example.org/crc"),
    ("MSK-IMPACT-CRC", "Targeted sequencing cohort of metastatic colorectal cancer",
     "https://mskcc-mirror.example.org/impact/crc"),
    ("ColoGenome-2023", "Whole-genome sequences of 512 colorectal tumors",
     "https://cologenome.example.org/releases/2023"),
    ("CRC-Proteome", "Mass-spectrometry proteomics of colorectal tissue",
     "https://proteome-hub.example.org/crc"),
    ("PolypScreen", "Colonoscopy screening outcomes with polyp annotations",
     "https://polypscreen.example.org/data"),
]

_CRC_TOPICS = [
    ("KRAS mutation burden and tumor progression",
     "gene mutation frequencies correlate with tumor cell proliferation"),
    ("APC loss in early tumorigenesis",
     "loss of APC function accelerates adenoma formation"),
    ("microsatellite instability and immunotherapy response",
     "MSI-high tumors respond differently to checkpoint inhibitors"),
    ("BRAF V600E signalling in serrated lesions",
     "BRAF-mutant serrated polyps follow a distinct progression route"),
    ("TP53 co-mutation landscapes",
     "TP53 co-mutations reshape the transcriptional program of tumor cells"),
    ("consensus molecular subtypes revisited",
     "subtype assignments shift under updated expression signatures"),
    ("tumor microenvironment remodelling",
     "stromal signatures predict relapse in stage II disease"),
    ("liquid biopsy for minimal residual disease",
     "circulating tumor DNA anticipates radiographic recurrence"),
]

_DISTRACTOR_TOPICS = [
    ("pediatric asthma", "inhaled corticosteroid dosing in school-age children"),
    ("type 2 diabetes", "continuous glucose monitoring adherence patterns"),
    ("alzheimer disease", "tau imaging in preclinical cohorts"),
    ("influenza vaccination", "seasonal vaccine effectiveness estimation"),
    ("chronic kidney disease", "eGFR trajectory modelling in older adults"),
]

_AUTHOR_POOL = [
    "A. Moreno", "J. Okafor", "L. Chen", "R. Gupta", "S. Novak",
    "T. Alvarez", "M. Fontaine", "K. Yamada", "P. Lindgren", "D. Haile",
]


def _paper_text(
    index: int,
    title: str,
    about_crc: bool,
    finding: str,
    dataset: Optional[Tuple[str, str, str]],
    target_words: int,
    rng: random.Random,
) -> str:
    authors = ", ".join(rng.sample(_AUTHOR_POOL, k=3))
    condition = "colorectal cancer" if about_crc else title.split(":")[0]
    sections = [
        f"Title: {title}",
        f"Authors: {authors}",
        "",
        "Abstract",
        (
            f"We study {condition} and report that {finding}. "
            "Our cohort analysis combines clinical annotations with "
            "molecular profiling to quantify the association."
        ),
        "",
        "1. Introduction",
        (
            f"Understanding {condition} remains a central challenge. "
            f"This work examines how {finding}, extending a line of studies "
            "on patient outcomes and molecular drivers."
        ),
        "",
        "2. Methods",
    ]
    if dataset is not None:
        name, description, url = dataset
        sections.append(
            f"Our analysis uses the {name} dataset. {description}. "
            f"The {name} dataset is publicly available at {url} and was "
            "accessed under its open data license."
        )
    else:
        sections.append(
            "All measurements were collected in-house and are available "
            "from the authors upon reasonable request; no public dataset "
            "was used."
        )
    sections += [
        "",
        "3. Results",
        (
            f"Across the study population we observe that {finding}. "
            "Effect sizes remain stable across sensitivity analyses."
        ),
        "",
        "4. Conclusion",
        (
            f"We presented evidence on {condition}. "
            "Future work will replicate these findings in larger cohorts."
        ),
    ]
    text = "\n".join(sections)
    return pad_to_words(text, target_words, rng)


def generate_paper_corpus(
    directory,
    n_papers: int = 11,
    n_relevant: int = 8,
    n_with_datasets: int = 6,
    target_words: int = 1500,
    seed: int = 3,
    difficulty: float = 0.05,
) -> Path:
    """Write the scientific-paper corpus to ``directory``.

    Defaults reproduce the demo scenario: 11 papers -> 8 relevant -> 6 with
    one public dataset each.  Larger configurations (for scaling benches)
    cycle through the topic and dataset pools deterministically.

    Returns the corpus directory path.
    """
    if not 0 <= n_with_datasets <= n_relevant <= n_papers:
        raise ValueError(
            "need n_with_datasets <= n_relevant <= n_papers, got "
            f"{n_with_datasets}/{n_relevant}/{n_papers}"
        )
    rng = random.Random(seed)
    writer = CorpusWriter(directory)

    for index in range(n_papers):
        relevant = index < n_relevant
        has_dataset = index < n_with_datasets
        if relevant:
            topic, finding = _CRC_TOPICS[index % len(_CRC_TOPICS)]
            title = f"Colorectal cancer study {index + 1}: {topic}"
        else:
            topic, finding = _DISTRACTOR_TOPICS[
                (index - n_relevant) % len(_DISTRACTOR_TOPICS)
            ]
            title = f"{topic.title()} cohort report {index + 1}"
        dataset = (
            _DATASET_POOL[index % len(_DATASET_POOL)] if has_dataset else None
        )
        if dataset is not None and n_papers > len(_DATASET_POOL):
            # Make recycled pool entries unique for large corpora.
            name, description, url = dataset
            suffix = index // len(_DATASET_POOL)
            if suffix:
                dataset = (
                    f"{name}-r{suffix}", description, f"{url}?rev={suffix}"
                )

        text = _paper_text(
            index, title, relevant, finding, dataset, target_words, rng
        )
        instances = []
        if dataset is not None:
            name, description, url = dataset
            instances.append(
                {"name": name, "description": description, "url": url}
            )
        truth = DocumentTruth(
            predicates={
                PAPERS_PREDICATE: relevant,
                "about colorectal cancer": relevant,
                "The paper reports on gene mutation and tumor cells": relevant,
                "The paper uses a publicly available dataset": bool(dataset),
            },
            fields={
                "title": title,
                "__instances__": instances,
                "name": instances[0]["name"] if instances else None,
                "description": (
                    instances[0]["description"] if instances else None
                ),
                "url": instances[0]["url"] if instances else None,
            },
            difficulty=difficulty,
            label=f"paper-{index + 1:03d}",
        )
        writer.add_pdf(
            f"paper-{index + 1:03d}.pdf",
            text,
            truth,
            metadata={"title": title, "index": str(index + 1)},
        )

    writer.finish()
    return writer.directory
