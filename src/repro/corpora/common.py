"""Shared corpus-generation machinery."""

from __future__ import annotations

import random
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.fakepdf import write_fake_pdf
from repro.llm.oracle import (
    DocumentTruth,
    GroundTruthRegistry,
    global_oracle,
)

FACTS_FILENAME = "corpus.facts.json"

# A bank of innocuous filler sentences used to pad documents to a target
# length; deterministic given the seed.
_FILLER_SENTENCES = [
    "The methodology follows established protocols in the field.",
    "Additional details are provided in the supplementary material.",
    "Statistical significance was assessed with standard tests.",
    "The results were validated across multiple independent runs.",
    "Prior work has explored related questions from different angles.",
    "Limitations of the present approach are discussed below.",
    "Further analysis confirmed the robustness of these observations.",
    "The experimental setup was kept constant across conditions.",
    "These findings align with previously reported evidence.",
    "Careful preprocessing was applied before the main analysis.",
    "Reproducibility artifacts accompany this work.",
    "The discussion section elaborates on broader implications.",
    "Data quality checks were performed at every stage.",
    "An ablation study isolates the contribution of each component.",
    "The appendix lists all hyperparameters used.",
]


def filler_paragraph(rng: random.Random, sentences: int) -> str:
    """A deterministic filler paragraph of ``sentences`` sentences."""
    return " ".join(
        rng.choice(_FILLER_SENTENCES) for _ in range(max(0, sentences))
    )


def pad_to_words(text: str, target_words: int, rng: random.Random) -> str:
    """Append filler paragraphs until ``text`` reaches ``target_words``."""
    words = len(text.split())
    chunks = [text]
    while words < target_words:
        paragraph = filler_paragraph(rng, sentences=6)
        chunks.append(paragraph)
        words += len(paragraph.split())
    return "\n\n".join(chunks)


class CorpusWriter:
    """Writes corpus documents, registers oracle truth, emits the sidecar.

    Usage::

        writer = CorpusWriter(directory)
        writer.add_pdf("paper-01.pdf", text, truth)
        writer.finish()           # writes corpus.facts.json
    """

    def __init__(self, directory, oracle: Optional[GroundTruthRegistry] = None):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.oracle = oracle if oracle is not None else global_oracle()
        self._sidecar = GroundTruthRegistry()
        self.files: List[Path] = []

    def _register(self, text: str, truth: DocumentTruth) -> None:
        self.oracle.register(text, truth)
        self._sidecar.register(text, truth)

    def add_pdf(self, filename: str, text: str, truth: DocumentTruth,
                metadata: Optional[Dict[str, str]] = None) -> Path:
        path = self.directory / filename
        path.write_bytes(write_fake_pdf(text, metadata or {}))
        self._register(text, truth)
        self.files.append(path)
        return path

    def add_text(self, filename: str, text: str,
                 truth: DocumentTruth) -> Path:
        path = self.directory / filename
        path.write_text(text)
        self._register(text, truth)
        self.files.append(path)
        return path

    def finish(self) -> Path:
        """Write the ground-truth sidecar and return its path."""
        sidecar_path = self.directory / FACTS_FILENAME
        self._sidecar.save(sidecar_path)
        return sidecar_path


def load_corpus_facts(directory,
                      oracle: Optional[GroundTruthRegistry] = None) -> int:
    """Re-register a generated corpus's ground truth from its sidecar.

    Returns the number of documents registered; 0 if no sidecar exists.
    """
    sidecar_path = Path(directory) / FACTS_FILENAME
    if not sidecar_path.exists():
        return 0
    oracle = oracle if oracle is not None else global_oracle()
    return oracle.load(sidecar_path)
