"""The real-estate-search corpus: property listings.

The third demonstration scenario: a buyer searching free-text listings with
semantic criteria ("waterfront homes"), extracting structured attributes
(price, bedrooms, city), and aggregating (average price per city).
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import List, Tuple

from repro.corpora.common import CorpusWriter, pad_to_words
from repro.llm.oracle import DocumentTruth

#: The canonical filter predicate of the scenario.
REALESTATE_PREDICATE = "The listings describe waterfront properties"

#: The extraction fields of the scenario's Listing schema.
LISTING_FIELDS = {
    "address": "The street address of the property",
    "city": "The city the property is located in",
    "price": "The asking price in dollars",
    "bedrooms": "The number of bedrooms",
    "listing_url": "The URL of the online listing",
}

_CITIES = ["Harborview", "Lakemont", "Cedar Falls", "Brookside"]
_STREETS = [
    "Bayshore Drive", "Mill Pond Road", "Granite Street", "Orchard Lane",
    "Seagrass Way", "Summit Avenue", "Willow Court", "Ferry Landing",
]

_WATERFRONT_BLURBS = [
    "Wake up to open water views from the primary suite in this waterfront "
    "retreat, complete with a private dock and western exposure.",
    "This lakefront home sits directly on the shoreline; the waterfront "
    "deck and boathouse make summer effortless.",
    "A rare waterfront opportunity: floor-to-ceiling windows over the bay, "
    "steps from your own beach.",
]

_INLAND_BLURBS = [
    "A classic craftsman on a quiet tree-lined street, walking distance to "
    "the elementary school and the farmers market.",
    "Updated townhouse with a chef's kitchen, attached garage, and a sunny "
    "fenced yard ideal for gardening.",
    "Move-in-ready ranch with fresh paint, new mechanicals, and easy "
    "highway access for commuters.",
]


def generate_realestate_corpus(
    directory,
    n_listings: int = 24,
    n_waterfront: int = 9,
    target_words: int = 120,
    seed: int = 23,
    difficulty: float = 0.15,
) -> Path:
    """Write the real-estate corpus to ``directory``.

    Prices, bedroom counts, and cities are deterministic functions of the
    seed; waterfront listings are priced higher on average so aggregate
    queries have signal.
    """
    if not 0 <= n_waterfront <= n_listings:
        raise ValueError(
            f"need n_waterfront <= n_listings, got "
            f"{n_waterfront}/{n_listings}"
        )
    rng = random.Random(seed)
    writer = CorpusWriter(directory)

    for index in range(n_listings):
        waterfront = index < n_waterfront
        city = _CITIES[index % len(_CITIES)]
        street = _STREETS[index % len(_STREETS)]
        number = 100 + 7 * index
        address = f"{number} {street}"
        bedrooms = 2 + (index % 4)
        base_price = 350_000 + 40_000 * (index % 5)
        price = base_price + (250_000 if waterfront else 0)
        url = (
            f"https://listings.example.org/{city.lower().replace(' ', '-')}"
            f"/{number}-{street.lower().replace(' ', '-')}"
        )
        blurb = (
            _WATERFRONT_BLURBS[index % len(_WATERFRONT_BLURBS)]
            if waterfront
            else _INLAND_BLURBS[index % len(_INLAND_BLURBS)]
        )
        text = (
            f"Listing: {address}, {city}\n"
            f"Address: {address}\n"
            f"City: {city}\n"
            f"Price: ${price:,}\n"
            f"Bedrooms: {bedrooms}\n"
            f"Listing URL: {url}\n"
            "\n"
            f"{blurb}\n"
        )
        text = pad_to_words(text, target_words, rng)
        truth = DocumentTruth(
            predicates={
                REALESTATE_PREDICATE: waterfront,
                "waterfront properties": waterfront,
                "the house is waterfront": waterfront,
                "has at least three bedrooms": bedrooms >= 3,
            },
            fields={
                "address": address,
                "city": city,
                "price": price,
                "bedrooms": bedrooms,
                "listing_url": url,
                "__instances__": [
                    {
                        "address": address,
                        "city": city,
                        "price": price,
                        "bedrooms": bedrooms,
                        "listing_url": url,
                    }
                ],
            },
            difficulty=difficulty,
            label=f"listing-{index + 1:03d}",
        )
        writer.add_text(f"listing-{index + 1:03d}.txt", text, truth)

    writer.finish()
    return writer.directory
