"""The legal-discovery corpus: e-mails and contract memos.

The second demonstration scenario: a litigation team sifting a document
production for materials responsive to a merger investigation, then
extracting the parties and deal terms.  Responsive documents discuss the
"Project Harbor" acquisition; distractors are routine corporate traffic.
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import List, Optional, Tuple

from repro.corpora.common import CorpusWriter, pad_to_words
from repro.llm.oracle import DocumentTruth

#: The canonical filter predicate of the scenario.
LEGAL_PREDICATE = "The documents discuss the Project Harbor merger"

#: The extraction fields of the scenario's Contract schema.
CONTRACT_FIELDS = {
    "buyer": "The acquiring party of the deal",
    "seller": "The party being acquired",
    "deal_value": "The monetary value of the transaction",
    "effective_date": "The date the agreement takes effect",
}

_RESPONSIVE_DEALS: List[Tuple[str, str, str, str]] = [
    ("Harbor Holdings LLC", "Coastal Logistics Inc", "$420 million",
     "March 14, 2024"),
    ("Harbor Holdings LLC", "Meridian Freight Corp", "$185 million",
     "April 2, 2024"),
    ("Harbor Holdings LLC", "BlueWater Terminals SA", "$310 million",
     "May 21, 2024"),
    ("Harbor Holdings LLC", "Quayside Storage Partners", "$95 million",
     "June 9, 2024"),
    ("Harbor Holdings LLC", "Northgate Rail Services", "$240 million",
     "July 1, 2024"),
    ("Harbor Holdings LLC", "Pacific Stevedoring Group", "$150 million",
     "July 30, 2024"),
]

_DISTRACTOR_SUBJECTS = [
    "Quarterly parking-lot maintenance schedule",
    "Cafeteria vendor renewal",
    "IT helpdesk ticket escalation policy",
    "Annual wellness fair logistics",
    "Printer fleet replacement quotes",
    "Holiday party venue options",
    "New badge reader rollout",
    "Office plant watering rotation",
]

_SENDERS = [
    "m.ellison@harborholdings.example.com",
    "counsel@harborholdings.example.com",
    "d.reyes@coastallogistics.example.com",
    "legal@meridianfreight.example.com",
    "ops@bluewater-terminals.example.com",
]

_RECIPIENTS = [
    "board@harborholdings.example.com",
    "dealteam@harborholdings.example.com",
    "outside.counsel@lawfirm.example.com",
]


def _responsive_email(index: int, deal, rng: random.Random,
                      target_words: int) -> str:
    buyer, seller, value, date = deal
    body = (
        f"Privileged and confidential — Project Harbor merger.\n\n"
        f"Team,\n\n"
        f"Attached is the revised term sheet for the acquisition of "
        f"{seller} by {buyer}. The deal value is {value} and the agreement "
        f"becomes effective on {date}. Please review the indemnification "
        "clauses before the diligence call.\n\n"
        f"Buyer: {buyer}\n"
        f"Seller: {seller}\n"
        f"Deal value: {value}\n"
        f"Effective date: {date}\n\n"
        "Regards,\nDeal Team"
    )
    body = pad_to_words(body, target_words, rng)
    return (
        f"From: {rng.choice(_SENDERS)}\n"
        f"To: {rng.choice(_RECIPIENTS)}\n"
        f"Subject: Project Harbor — {seller} term sheet v{index + 2}\n"
        f"Date: {date}\n"
        "\n"
        f"{body}\n"
    )


def _distractor_email(index: int, rng: random.Random,
                      target_words: int) -> str:
    subject = _DISTRACTOR_SUBJECTS[index % len(_DISTRACTOR_SUBJECTS)]
    body = (
        f"Hi all,\n\nA quick update on the {subject.lower()}. No action "
        "needed from most of you; details are below for those involved.\n\n"
        "Thanks,\nFacilities"
    )
    body = pad_to_words(body, target_words, rng)
    return (
        f"From: facilities@harborholdings.example.com\n"
        f"To: staff@harborholdings.example.com\n"
        f"Subject: {subject}\n"
        f"Date: January {index + 3}, 2024\n"
        "\n"
        f"{body}\n"
    )


def generate_legal_corpus(
    directory,
    n_documents: int = 20,
    n_responsive: int = 6,
    target_words: int = 700,
    seed: int = 11,
    difficulty: float = 0.25,
) -> Path:
    """Write the legal-discovery corpus to ``directory``.

    ``difficulty`` is higher than the papers corpus: legal prose is
    ambiguous, so cheap models visibly underperform here (which is what
    makes the policy trade-off benchmark interesting on this workload).
    """
    if not 0 <= n_responsive <= n_documents:
        raise ValueError(
            f"need n_responsive <= n_documents, got "
            f"{n_responsive}/{n_documents}"
        )
    rng = random.Random(seed)
    writer = CorpusWriter(directory)

    for index in range(n_documents):
        responsive = index < n_responsive
        if responsive:
            deal = _RESPONSIVE_DEALS[index % len(_RESPONSIVE_DEALS)]
            text = _responsive_email(index, deal, rng, target_words)
            buyer, seller, value, date = deal
            fields = {
                "buyer": buyer,
                "seller": seller,
                "deal_value": value,
                "effective_date": date,
                "__instances__": [
                    {
                        "buyer": buyer,
                        "seller": seller,
                        "deal_value": value,
                        "effective_date": date,
                    }
                ],
            }
        else:
            text = _distractor_email(index, rng, target_words)
            fields = {
                "buyer": None,
                "seller": None,
                "deal_value": None,
                "effective_date": None,
                "__instances__": [],
            }
        truth = DocumentTruth(
            predicates={
                LEGAL_PREDICATE: responsive,
                "discuss the Project Harbor merger": responsive,
                "responsive to the merger investigation": responsive,
            },
            fields=fields,
            difficulty=difficulty,
            label=f"legal-{index + 1:03d}",
        )
        writer.add_text(f"doc-{index + 1:03d}.txt", text, truth)

    writer.finish()
    return writer.directory
