"""Synthetic corpora for the three demonstration scenarios.

"At SIGMOD'25, participants can explore three real-world scenarios —
scientific discovery, legal discovery, and real estate search — or apply
PalimpChat to their own datasets." (abstract)

Each generator writes a deterministic corpus to disk (scientific papers as
fake-PDFs, legal documents as e-mail/text files, listings as text files),
registers the ground truth of every document with the oracle, and drops a
``corpus.facts.json`` sidecar so a fresh process can re-register the truth
with :func:`load_corpus_facts`.
"""

from repro.corpora.common import load_corpus_facts, CorpusWriter
from repro.corpora.papers import (
    generate_paper_corpus,
    PAPERS_PREDICATE,
    CLINICAL_FIELDS,
)
from repro.corpora.legal import (
    generate_legal_corpus,
    LEGAL_PREDICATE,
    CONTRACT_FIELDS,
)
from repro.corpora.realestate import (
    generate_realestate_corpus,
    REALESTATE_PREDICATE,
    LISTING_FIELDS,
)
from repro.corpora.demo import register_demo_datasets
from repro.corpora.scale import (
    generate_scale_source,
    mutate_scale_source,
    SCALE_PREDICATE,
    SCALE_FIELDS,
)

__all__ = [
    "load_corpus_facts",
    "CorpusWriter",
    "generate_paper_corpus",
    "PAPERS_PREDICATE",
    "CLINICAL_FIELDS",
    "generate_legal_corpus",
    "LEGAL_PREDICATE",
    "CONTRACT_FIELDS",
    "generate_realestate_corpus",
    "REALESTATE_PREDICATE",
    "LISTING_FIELDS",
    "register_demo_datasets",
    "generate_scale_source",
    "mutate_scale_source",
    "SCALE_PREDICATE",
    "SCALE_FIELDS",
]
