"""Quality evaluation: score pipeline output against ground truth.

The simulated corpora register their ground truth with the oracle
(:mod:`repro.llm.oracle`), which makes output *quality* a measurable quantity:
filter decisions score as precision/recall/F1 against the true predicate
labels, and extractions score against the true field values.  The policy
trade-off and optimizer-ablation benchmarks (E2, E9) rely on these metrics.
"""

from repro.evaluation.metrics import (
    Scorecard,
    filter_quality,
    extraction_quality,
    records_f1,
    value_matches,
)
from repro.evaluation.reference import reference_output
from repro.evaluation.report import (
    PolicyRow,
    evaluate_policies,
    markdown_report,
)

__all__ = [
    "Scorecard",
    "filter_quality",
    "extraction_quality",
    "records_f1",
    "value_matches",
    "reference_output",
    "PolicyRow",
    "evaluate_policies",
    "markdown_report",
]
