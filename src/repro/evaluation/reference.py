"""Reference (perfect) execution of a logical plan using oracle truth.

Executes semantic operators with the ground-truth answers instead of a model,
producing the output an error-free pipeline would return.  Benchmarks compare
measured plans against this reference to report end-to-end quality.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.cardinality import Cardinality
from repro.core.logical import (
    Aggregate,
    BaseScan,
    ConvertScan,
    FilteredScan,
    GroupByAggregate,
    LimitScan,
    LogicalPlan,
    Project,
    RetrieveScan,
)
from repro.core.records import DataRecord
from repro.core.sources import DataSource
from repro.llm import semantics
from repro.llm.oracle import GroundTruthRegistry, global_oracle
from repro.physical.aggregates import AggregateOp, GroupByOp
from repro.physical.context import ExecutionContext
from repro.physical.structural import LimitOp, ProjectOp


def _reference_filter(records: List[DataRecord], op: FilteredScan,
                      oracle: GroundTruthRegistry) -> List[DataRecord]:
    kept = []
    for record in records:
        if op.spec.udf is not None:
            verdict = bool(op.spec.udf(record))
        else:
            truth = oracle.predicate_truth(
                record.document_text(), op.spec.predicate
            )
            if truth is None:
                truth = semantics.answer_boolean(
                    op.spec.predicate, record.document_text()
                )
            verdict = truth
        if verdict:
            kept.append(record)
    return kept


def _reference_convert(records: List[DataRecord], op: ConvertScan,
                       oracle: GroundTruthRegistry) -> List[DataRecord]:
    out: List[DataRecord] = []
    for record in records:
        text = record.document_text()
        if op.udf is not None:
            payload = op.udf(record)
            rows = payload if isinstance(payload, list) else [payload]
            out.extend(record.derive(op.output_schema, row) for row in rows)
            continue
        if op.cardinality is Cardinality.ONE_TO_MANY:
            known, instances = oracle.field_truth(text, "__instances__")
            rows = instances if known and isinstance(instances, list) else []
            for row in rows:
                values = {name: row.get(name) for name in op.new_fields}
                out.append(record.derive(op.output_schema, values))
        else:
            values = {}
            for name in op.new_fields:
                known, value = oracle.field_truth(text, name)
                if not known:
                    value = semantics.extract_field(
                        name, op.output_schema.field_desc(name), text
                    )
                values[name] = value
            out.append(record.derive(op.output_schema, values))
    return out


def _run_local_op(records: List[DataRecord], physical_cls, logical_op
                  ) -> List[DataRecord]:
    op = physical_cls(logical_op)
    op.open(ExecutionContext(max_workers=1))
    out: List[DataRecord] = []
    for record in records:
        out.extend(op.process(record))
    out.extend(op.close())
    return out


def _is_ext_op(op) -> bool:
    from repro.core.logical_ext import Distinct, JoinScan, Sort, UnionScan

    return isinstance(op, (JoinScan, UnionScan, Distinct, Sort))


def _reference_ext(records, op, oracle):
    """Perfect execution of the extended relational operators."""
    from repro.core.logical_ext import Distinct, JoinScan, Sort, UnionScan
    from repro.llm import semantics as _semantics
    from repro.physical.joins import _merge
    from repro.physical.setops import DistinctOp, SortOp

    if isinstance(op, JoinScan):
        right_records = reference_output(
            op.right_dataset.logical_plan(), op.right_dataset.source, oracle
        )
        out = []
        for left in records:
            for right in right_records:
                if op.udf is not None:
                    matches = bool(op.udf(left, right))
                else:
                    pair = (
                        f"LEFT RECORD:\n{left.document_text()}\n\n"
                        f"RIGHT RECORD:\n{right.document_text()}"
                    )
                    truth = oracle.predicate_truth(pair, op.predicate)
                    if truth is None:
                        truth = _semantics.answer_boolean(op.predicate, pair)
                    matches = truth
                if matches:
                    out.append(_merge(op, left, right))
        return out
    if isinstance(op, UnionScan):
        return records + reference_output(
            op.right_dataset.logical_plan(), op.right_dataset.source, oracle
        )
    if isinstance(op, Distinct):
        return _run_local_op(records, DistinctOp, op)
    if isinstance(op, Sort):
        return _run_local_op(records, SortOp, op)
    raise ValueError(f"unhandled extended operator {op.op_name}")


def reference_output(
    logical_plan: LogicalPlan,
    source: DataSource,
    oracle: Optional[GroundTruthRegistry] = None,
) -> List[DataRecord]:
    """The output a perfect (error-free) execution would produce."""
    oracle = oracle if oracle is not None else global_oracle()
    records = list(source)
    for op in logical_plan:
        if isinstance(op, BaseScan):
            continue
        if isinstance(op, FilteredScan):
            records = _reference_filter(records, op, oracle)
        elif isinstance(op, ConvertScan):
            records = _reference_convert(records, op, oracle)
        elif isinstance(op, Project):
            records = _run_local_op(records, ProjectOp, op)
        elif isinstance(op, LimitScan):
            records = _run_local_op(records, LimitOp, op)
        elif isinstance(op, Aggregate):
            records = _run_local_op(records, AggregateOp, op)
        elif isinstance(op, GroupByAggregate):
            records = _run_local_op(records, GroupByOp, op)
        elif _is_ext_op(op):
            records = _reference_ext(records, op, oracle)
        elif isinstance(op, RetrieveScan):
            # Reference retrieval uses the same embedding ranking (no noise
            # process applies to retrieval, so it is already "perfect").
            from repro.llm.embeddings import embed_text, cosine_similarity

            query_vec = embed_text(op.query)
            ranked = sorted(
                records,
                key=lambda r: (
                    -cosine_similarity(query_vec, embed_text(r.document_text())),
                    r.record_id,
                ),
            )
            records = ranked[: op.k]
        else:  # pragma: no cover - defensive
            raise ValueError(f"unhandled logical operator {op.op_name}")
    return records
