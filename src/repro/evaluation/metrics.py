"""Precision/recall/F1 scoring for filters and extractions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.core.records import DataRecord
from repro.llm.oracle import GroundTruthRegistry, global_oracle


@dataclass(frozen=True)
class Scorecard:
    """Standard retrieval metrics."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 1.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    def __repr__(self) -> str:
        return (
            f"Scorecard(P={self.precision:.3f}, R={self.recall:.3f}, "
            f"F1={self.f1:.3f})"
        )


def _norm(value: Any) -> str:
    return " ".join(str(value).lower().split())


def value_matches(produced: Any, expected: Any) -> bool:
    """Lenient value equality: normalized strings, prefix containment.

    Extraction output is judged the way a human grader would: exact after
    whitespace/case normalization, or a substantial substring match (a
    truncated-but-right answer still identifies the dataset).
    """
    if produced is None or expected is None:
        return produced is None and expected is None
    a, b = _norm(produced), _norm(expected)
    if a == b:
        return True
    if len(a) >= 6 and (a in b or b in a):
        return True
    return False


def records_f1(
    produced: Sequence[DataRecord],
    expected: Sequence[DataRecord],
    fields: Optional[Sequence[str]] = None,
) -> Scorecard:
    """Generic record-set F1: greedy matching on field-value agreement.

    Used by sentinel quality calibration: the sample run's output compares
    against the perfect reference output.  Two records match when at least
    half of the compared fields agree (:func:`value_matches`).
    """
    if not produced and not expected:
        return Scorecard(0, 0, 0)
    if fields is None:
        probe = expected[0] if expected else produced[0]
        fields = probe.schema.field_names()
    remaining = list(expected)
    tp = fp = 0
    threshold = max(1, len(fields) // 2)
    for record in produced:
        best_index, best_score = -1, 0
        for index, candidate in enumerate(remaining):
            score = sum(
                1 for name in fields
                if value_matches(record.get(name), candidate.get(name))
            )
            if score > best_score:
                best_score, best_index = score, index
        if best_index >= 0 and best_score >= threshold:
            tp += 1
            remaining.pop(best_index)
        else:
            fp += 1
    return Scorecard(tp, fp, len(remaining))


def filter_quality(
    kept_records: Sequence[DataRecord],
    source_records: Sequence[DataRecord],
    predicate: str,
    oracle: Optional[GroundTruthRegistry] = None,
) -> Scorecard:
    """Score a semantic filter's decisions against oracle labels.

    Records whose documents the oracle does not know are skipped (they have
    no ground truth to score against).
    """
    oracle = oracle if oracle is not None else global_oracle()
    kept_fingerprints = {r.root().fingerprint for r in kept_records}
    tp = fp = fn = 0
    for record in source_records:
        truth = oracle.predicate_truth(record.document_text(), predicate)
        if truth is None:
            continue
        kept = record.root().fingerprint in kept_fingerprints
        if kept and truth:
            tp += 1
        elif kept and not truth:
            fp += 1
        elif not kept and truth:
            fn += 1
    return Scorecard(tp, fp, fn)


def _expected_instances(
    record: DataRecord,
    fields: Sequence[str],
    oracle: GroundTruthRegistry,
) -> Optional[List[Dict[str, Any]]]:
    """Ground-truth instances for one source document, or None if unknown."""
    text = record.document_text()
    known, instances = oracle.field_truth(text, "__instances__")
    if known and isinstance(instances, list):
        return [
            {name: inst.get(name) for name in fields} for inst in instances
        ]
    truth = oracle.lookup(text)
    if truth is None:
        return None
    if not any(name in truth.fields for name in fields):
        return None
    return [{name: truth.fields.get(name) for name in fields}]


def extraction_quality(
    output_records: Sequence[DataRecord],
    source_records: Sequence[DataRecord],
    fields: Sequence[str],
    oracle: Optional[GroundTruthRegistry] = None,
) -> Scorecard:
    """Score extracted instances against the oracle's expected instances.

    An output record counts as a true positive if it came from a document
    with a matching expected instance (majority of fields match, greedily
    assigned).  Unmatched outputs are false positives; unmatched expected
    instances are false negatives.
    """
    oracle = oracle if oracle is not None else global_oracle()
    by_fingerprint: Dict[str, List[DataRecord]] = {}
    for record in output_records:
        by_fingerprint.setdefault(record.root().fingerprint, []).append(record)

    tp = fp = fn = 0
    for source in source_records:
        expected = _expected_instances(source, fields, oracle)
        if expected is None:
            continue
        produced = by_fingerprint.pop(source.root().fingerprint, [])
        remaining = list(expected)
        for record in produced:
            best_index = -1
            best_score = 0
            for index, instance in enumerate(remaining):
                score = sum(
                    1
                    for name in fields
                    if value_matches(record.get(name), instance.get(name))
                )
                if score > best_score:
                    best_score, best_index = score, index
            if best_index >= 0 and best_score >= max(1, len(fields) // 2):
                tp += 1
                remaining.pop(best_index)
            else:
                fp += 1
        fn += len(remaining)
    # Outputs from documents with no ground truth at all are ignored; outputs
    # from known documents that shouldn't have produced anything were counted
    # above via the pop().
    return Scorecard(tp, fp, fn)
