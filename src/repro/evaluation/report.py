"""Markdown quality reports for pipeline runs.

Produces the per-policy comparison table (records / cost / time / quality
against ground truth) that EXPERIMENTS.md publishes — as a reusable
function, so examples and downstream users can evaluate their own pipelines
the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.dataset import Dataset
from repro.core.logical import ConvertScan, FilteredScan
from repro.evaluation.metrics import extraction_quality, filter_quality
from repro.execution.execute import Execute
from repro.llm.oracle import GroundTruthRegistry, global_oracle
from repro.optimizer.policies import Policy


@dataclass
class PolicyRow:
    """One row of the policy comparison table."""

    policy: str
    records: int
    cost_usd: float
    time_seconds: float
    filter_f1: Optional[float]
    extraction_f1: Optional[float]
    plan: str


def _pipeline_probes(dataset: Dataset):
    """The (predicate, fields) this pipeline's quality can be scored on."""
    predicate = None
    fields = None
    for op in dataset.logical_plan():
        if isinstance(op, FilteredScan) and op.spec.is_semantic:
            predicate = op.spec.predicate
        elif isinstance(op, ConvertScan) and op.is_semantic:
            fields = list(op.new_fields)
    return predicate, fields


def evaluate_policies(
    dataset: Dataset,
    policies: Sequence[Policy],
    oracle: Optional[GroundTruthRegistry] = None,
    **execute_kwargs,
) -> List[PolicyRow]:
    """Run ``dataset`` under each policy and score it against the oracle."""
    oracle = oracle if oracle is not None else global_oracle()
    predicate, fields = _pipeline_probes(dataset)
    source_records = list(dataset.source)
    rows: List[PolicyRow] = []
    for policy in policies:
        records, stats = Execute(dataset, policy=policy, **execute_kwargs)
        filter_f1 = None
        if predicate is not None:
            filter_f1 = filter_quality(
                records, source_records, predicate, oracle=oracle
            ).f1
        extraction_f1 = None
        if fields is not None:
            extraction_f1 = extraction_quality(
                records, source_records, fields, oracle=oracle
            ).f1
        rows.append(PolicyRow(
            policy=policy.describe(),
            records=len(records),
            cost_usd=stats.total_cost_usd,
            time_seconds=stats.total_time_seconds,
            filter_f1=filter_f1,
            extraction_f1=extraction_f1,
            plan=stats.plan_stats.plan_describe,
        ))
    return rows


def markdown_report(rows: Sequence[PolicyRow],
                    title: str = "Policy comparison") -> str:
    """Render rows as a GitHub-flavoured markdown table."""

    def fmt(value: Optional[float]) -> str:
        return f"{value:.3f}" if value is not None else "—"

    lines = [
        f"## {title}",
        "",
        "| policy | records | cost ($) | time (s) | filter F1 "
        "| extraction F1 | plan |",
        "|---|---|---|---|---|---|---|",
    ]
    for row in rows:
        lines.append(
            f"| {row.policy} | {row.records} | {row.cost_usd:.4f} "
            f"| {row.time_seconds:.1f} | {fmt(row.filter_f1)} "
            f"| {fmt(row.extraction_f1)} | `{row.plan}` |"
        )
    return "\n".join(lines)
