"""The plan-space generator: physical candidates per logical operator."""

from __future__ import annotations

from typing import List, Optional

from repro.core.errors import PlanError
from repro.core.logical import (
    Aggregate,
    BaseScan,
    ConvertScan,
    FilteredScan,
    GroupByAggregate,
    LimitScan,
    LogicalOperator,
    Project,
    RetrieveScan,
)
from repro.core.logical_ext import Distinct, JoinScan, Sort, UnionScan
from repro.core.sources import DataSource
from repro.llm.models import ModelRegistry
from repro.physical.joins import (
    EmbeddingBlockedJoin,
    LLMSemanticJoin,
    NestedLoopUDFJoin,
)
from repro.physical.setops import DistinctOp, SortOp, UnionOp
from repro.physical.aggregates import AggregateOp, GroupByOp
from repro.physical.base import PhysicalOperator
from repro.physical.converts import (
    ChunkedConvert,
    CodeSynthesisConvert,
    LLMConvertBonded,
    LLMConvertConventional,
    NonLLMConvert,
    TokenReducedConvert,
)
from repro.physical.filters import EmbeddingFilter, LLMFilter, NonLLMFilter
from repro.physical.retrieve import RetrieveOp
from repro.physical.scan import MarshalAndScan
from repro.physical.structural import LimitOp, ProjectOp

#: Context fraction used by the token-reduction convert variant.
TOKEN_REDUCTION_FRACTION = 0.35

#: Token headroom reserved for instructions when checking context fit.
_PROMPT_HEADROOM_TOKENS = 200


def _avg_document_tokens(source: Optional[DataSource]) -> float:
    """Average document size of the source, 0.0 when unknown."""
    if source is None:
        return 0.0
    try:
        return source.profile(sample_size=2).avg_document_tokens
    except Exception:  # pragma: no cover - exotic custom sources
        return 0.0


def _fits_context(doc_tokens: float, model) -> bool:
    return doc_tokens + _PROMPT_HEADROOM_TOKENS <= model.context_window


def candidate_operators(
    logical_op: LogicalOperator,
    models: ModelRegistry,
    source: Optional[DataSource] = None,
    include_token_reduction: bool = True,
    include_code_synthesis: bool = True,
    include_embedding_filter: bool = True,
) -> List[PhysicalOperator]:
    """All physical implementations of ``logical_op``.

    The ``include_*`` switches exist for ablation benchmarks that shrink the
    plan space.
    """
    if isinstance(logical_op, BaseScan):
        if source is None:
            raise PlanError("BaseScan candidates require the data source")
        return [MarshalAndScan(logical_op, source)]

    if isinstance(logical_op, FilteredScan):
        if not logical_op.spec.is_semantic:
            return [NonLLMFilter(logical_op)]
        doc_tokens = _avg_document_tokens(source)
        candidates: List[PhysicalOperator] = []
        for model in models.chat_models():
            if _fits_context(doc_tokens, model):
                candidates.append(LLMFilter(logical_op, model))
            else:
                # Truncate the document to fit the window; quality dips
                # but the model stays usable on oversized documents.
                fraction = max(
                    0.05,
                    0.8 * model.context_window / max(doc_tokens, 1.0),
                )
                candidates.append(
                    LLMFilter(logical_op, model, context_fraction=fraction)
                )
        if include_embedding_filter:
            candidates.extend(
                EmbeddingFilter(logical_op, model)
                for model in models.embedding_models()
            )
        if not candidates:
            raise PlanError(
                "no models registered that can implement a semantic filter"
            )
        return candidates

    if isinstance(logical_op, ConvertScan):
        if not logical_op.is_semantic:
            return [NonLLMConvert(logical_op)]
        doc_tokens = _avg_document_tokens(source)
        candidates = []
        for model in models.chat_models():
            if not _fits_context(doc_tokens, model):
                # Oversized documents: only the chunked map-reduce
                # strategy is feasible for this model.
                candidates.append(ChunkedConvert(logical_op, model))
                continue
            candidates.append(LLMConvertBonded(logical_op, model))
            candidates.append(LLMConvertConventional(logical_op, model))
            if include_token_reduction:
                candidates.append(
                    TokenReducedConvert(
                        logical_op, model, fraction=TOKEN_REDUCTION_FRACTION
                    )
                )
            if include_code_synthesis:
                candidates.append(CodeSynthesisConvert(logical_op, model))
        if not candidates:
            raise PlanError(
                "no models registered that can implement a semantic convert"
            )
        return candidates

    if isinstance(logical_op, RetrieveScan):
        embedders = models.embedding_models()
        if not embedders:
            raise PlanError("retrieve requires a registered embedding model")
        return [RetrieveOp(logical_op, model) for model in embedders]

    if isinstance(logical_op, JoinScan):
        if not logical_op.is_semantic:
            return [NestedLoopUDFJoin(logical_op)]
        candidates = [
            LLMSemanticJoin(logical_op, model)
            for model in models.chat_models()
        ]
        embedders = models.embedding_models()
        if embedders:
            candidates.extend(
                EmbeddingBlockedJoin(logical_op, model, embedders[0])
                for model in models.chat_models()
            )
        return candidates

    if isinstance(logical_op, UnionScan):
        return [UnionOp(logical_op)]
    if isinstance(logical_op, Distinct):
        return [DistinctOp(logical_op)]
    if isinstance(logical_op, Sort):
        return [SortOp(logical_op)]

    if isinstance(logical_op, Project):
        return [ProjectOp(logical_op)]
    if isinstance(logical_op, LimitScan):
        return [LimitOp(logical_op)]
    if isinstance(logical_op, Aggregate):
        return [AggregateOp(logical_op)]
    if isinstance(logical_op, GroupByAggregate):
        return [GroupByOp(logical_op)]

    raise PlanError(
        f"no physical implementations known for {logical_op.op_name}"
    )
