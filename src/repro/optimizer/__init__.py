"""The Palimpzest optimizer.

"PALIMPZEST creates a search space of all possible physical plans that
implement such plan, which are effectively logically equivalent but may yield
outputs of different quality, with a different cost, or with a different
runtime.  In a subsequent optimization phase, Palimpzest automatically ranks
physical plans and selects the most optimal one that meets user-defined
preferences." (§2.1)

Pieces:

* :mod:`repro.optimizer.candidates` — the physical implementations available
  for each logical operator (the plan space generator).
* :mod:`repro.optimizer.cost_model` — estimates a plan's total cost, runtime,
  quality, and output cardinality, from model-card priors optionally refined
  by sentinel (sample) execution.
* :mod:`repro.optimizer.policies` — user preferences: MaxQuality, MinCost,
  MinTime, and constrained blends ("maximize quality under a cost budget").
* :mod:`repro.optimizer.planner` — enumerates the plan space with Pareto
  pruning on (cost, time, quality).
* :mod:`repro.optimizer.optimizer` — ties it together and picks the winner.
"""

from repro.optimizer.policies import (
    Policy,
    MaxQuality,
    MinCost,
    MinTime,
    MaxQualityAtFixedCost,
    MaxQualityAtFixedTime,
    MinCostAtFixedQuality,
    WeightedBlend,
)
from repro.optimizer.cost_model import CostModel, PlanEstimate, SampleStats
from repro.optimizer.candidates import candidate_operators
from repro.optimizer.planner import enumerate_plans, pareto_frontier, PlanCandidate
from repro.optimizer.optimizer import Optimizer, OptimizationReport

__all__ = [
    "Policy",
    "MaxQuality",
    "MinCost",
    "MinTime",
    "MaxQualityAtFixedCost",
    "MaxQualityAtFixedTime",
    "MinCostAtFixedQuality",
    "WeightedBlend",
    "CostModel",
    "PlanEstimate",
    "SampleStats",
    "candidate_operators",
    "enumerate_plans",
    "pareto_frontier",
    "PlanCandidate",
    "Optimizer",
    "OptimizationReport",
]
