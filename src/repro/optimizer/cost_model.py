"""Plan cost estimation.

Estimates start from model-card priors (:meth:`PhysicalOperator.naive_estimates`)
threaded through the plan: each operator consumes a :class:`StreamEstimate`
(input cardinality + average document size) and produces the next one.  Plan
quality is the product of the semantic operators' per-record qualities —
errors compound multiplicatively down a pipeline.

Sentinel (sample) execution, orchestrated by the optimizer, can replace these
priors with observed numbers via :class:`SampleStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.sources import SourceProfile
from repro.physical.base import StreamEstimate
from repro.physical.plan import PhysicalPlan


@dataclass(frozen=True)
class PlanEstimate:
    """The optimizer's belief about one physical plan."""

    plan: PhysicalPlan
    cost_usd: float
    time_seconds: float
    quality: float
    output_cardinality: float
    from_sample: bool = False

    def describe(self) -> str:
        origin = "sampled" if self.from_sample else "naive"
        return (
            f"{self.plan.describe()} :: cost=${self.cost_usd:.4f}, "
            f"time={self.time_seconds:.1f}s, quality={self.quality:.3f}, "
            f"out~{self.output_cardinality:.1f} ({origin})"
        )


@dataclass
class SampleStats:
    """Observed per-operator statistics from a sentinel run.

    Keyed by ``PhysicalOperator.full_op_id`` in :class:`CostModel`.
    """

    selectivity: Optional[float] = None     # output/input cardinality ratio
    cost_per_record: Optional[float] = None
    time_per_record: Optional[float] = None
    quality: Optional[float] = None


class CostModel:
    """Estimates plan cost/time/quality for a given source profile.

    Args:
        source_profile: cardinality + document-size statistics of the scan.
        max_workers: LLM calls across records run concurrently on this many
            workers, so estimated LLM wall time divides by it.
        sample_stats: observed per-operator stats that override priors.
    """

    def __init__(
        self,
        source_profile: SourceProfile,
        max_workers: int = 1,
        sample_stats: Optional[Dict[str, SampleStats]] = None,
    ):
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.source_profile = source_profile
        self.max_workers = max_workers
        self.sample_stats = dict(sample_stats or {})

    def update(self, full_op_id: str, stats: SampleStats) -> None:
        self.sample_stats[full_op_id] = stats

    def estimate_plan(self, plan: PhysicalPlan) -> PlanEstimate:
        stream = StreamEstimate(
            cardinality=float(self.source_profile.cardinality),
            avg_document_tokens=self.source_profile.avg_document_tokens,
        )
        total_cost = 0.0
        total_time = 0.0
        quality = 1.0
        sampled = False

        for op in plan:
            estimates = op.naive_estimates(stream)
            observed = self.sample_stats.get(op.full_op_id)

            cost_per_record = estimates.cost_per_record
            time_per_record = estimates.time_per_record
            output_cardinality = estimates.cardinality
            op_quality = estimates.quality
            if observed is not None:
                sampled = True
                if observed.cost_per_record is not None:
                    cost_per_record = observed.cost_per_record
                if observed.time_per_record is not None:
                    time_per_record = observed.time_per_record
                if observed.selectivity is not None:
                    output_cardinality = (
                        stream.cardinality * observed.selectivity
                    )
                if observed.quality is not None:
                    op_quality = observed.quality

            input_cardinality = stream.cardinality
            total_cost += cost_per_record * input_cardinality
            op_time = time_per_record * input_cardinality
            if op.is_llm_op:
                # Record-parallel LLM calls spread across workers.
                op_time /= self.max_workers
            total_time += op_time
            quality *= max(0.0, min(1.0, op_quality))
            stream = StreamEstimate(
                cardinality=output_cardinality,
                avg_document_tokens=stream.avg_document_tokens,
            )

        return PlanEstimate(
            plan=plan,
            cost_usd=total_cost,
            time_seconds=total_time,
            quality=quality,
            output_cardinality=stream.cardinality,
            from_sample=sampled,
        )
