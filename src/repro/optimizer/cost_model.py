"""Plan cost estimation.

Estimates start from model-card priors (:meth:`PhysicalOperator.naive_estimates`)
threaded through the plan: each operator consumes a :class:`StreamEstimate`
(input cardinality + average document size) and produces the next one.  Plan
quality is the product of the semantic operators' per-record qualities —
errors compound multiplicatively down a pipeline.

Estimation is *incremental*: a :class:`PlanAccumulator` carries the running
totals of a plan prefix, and :meth:`CostModel.extend` adds one operator to
it.  The planner's dynamic program extends shared prefixes once instead of
re-costing every full plan from scratch, and per-operator estimates are
memoized on ``(operator, input stream)`` — the same operator appears in many
enumerated plans at the same stream position.  :meth:`CostModel.estimate_plan`
is the one-shot wrapper over the same arithmetic, so both paths produce
bit-identical estimates.

Sentinel (sample) execution, orchestrated by the optimizer, can replace the
priors with observed numbers via :class:`SampleStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.sources import SourceProfile
from repro.physical.base import PhysicalOperator, StreamEstimate
from repro.physical.plan import PhysicalPlan, shard_safe
from repro.physical.scan import MarshalAndScan

#: Executors that scatter the shardable prefix over source shards.
SCALE_OUT_EXECUTORS = ("sharded", "async")

#: Fixed per-shard scale-out overhead: worker/task setup, queue plumbing,
#: and the gather thread's reorder bookkeeping (simulated seconds).
SHARD_SETUP_SECONDS = 0.005

#: Per-record scatter cost: routing each scanned record to its shard and
#: re-sequencing its bundle at the gather (simulated seconds).
SCATTER_SECONDS_PER_RECORD = 0.0002

#: Estimated per-call replay cost for incremental pricing: serving a call
#: from a prior run's call log is a local lookup, comparable to a
#: CallCache hit, not a model round-trip (simulated seconds).
REPLAY_SECONDS_PER_CALL = 0.002


@dataclass(frozen=True)
class IncrementalPricing:
    """Cold vs incremental pricing of a re-run (``price_incremental``).

    ``use_incremental`` is the optimizer's choice: replay the base run's
    call log for unchanged documents, or just run cold.  The chosen
    *plan* is never altered — replay only changes who pays for which
    call — so either mode produces identical records.
    """

    cold_cost_usd: float
    cold_seconds: float
    incremental_cost_usd: float
    incremental_seconds: float
    fresh_fraction: float
    use_incremental: bool

    def to_dict(self) -> Dict[str, float]:
        return {
            "cold_cost_usd": round(self.cold_cost_usd, 6),
            "cold_seconds": round(self.cold_seconds, 3),
            "incremental_cost_usd": round(self.incremental_cost_usd, 6),
            "incremental_seconds": round(self.incremental_seconds, 3),
            "fresh_fraction": round(self.fresh_fraction, 4),
            "use_incremental": self.use_incremental,
        }

    def describe(self) -> str:
        choice = "incremental" if self.use_incremental else "cold"
        return (
            f"cold ${self.cold_cost_usd:.4f}/{self.cold_seconds:.1f}s vs "
            f"incremental ${self.incremental_cost_usd:.4f}/"
            f"{self.incremental_seconds:.1f}s "
            f"(fresh {self.fresh_fraction:.1%}) -> {choice}"
        )


@dataclass(frozen=True)
class PlanEstimate:
    """The optimizer's belief about one physical plan."""

    plan: PhysicalPlan
    cost_usd: float
    time_seconds: float
    quality: float
    output_cardinality: float
    from_sample: bool = False

    def describe(self) -> str:
        origin = "sampled" if self.from_sample else "naive"
        return (
            f"{self.plan.describe()} :: cost=${self.cost_usd:.4f}, "
            f"time={self.time_seconds:.1f}s, quality={self.quality:.3f}, "
            f"out~{self.output_cardinality:.1f} ({origin})"
        )


@dataclass
class SampleStats:
    """Observed per-operator statistics from a sentinel run.

    Keyed by ``PhysicalOperator.full_op_id`` in :class:`CostModel`.
    """

    selectivity: Optional[float] = None     # output/input cardinality ratio
    cost_per_record: Optional[float] = None
    time_per_record: Optional[float] = None
    quality: Optional[float] = None


@dataclass(frozen=True)
class PlanAccumulator:
    """Running totals over a plan *prefix* during incremental estimation.

    Produced by :meth:`CostModel.initial_accumulator`, advanced one operator
    at a time by :meth:`CostModel.extend`, and converted into a
    :class:`PlanEstimate` by :meth:`CostModel.finish`.
    """

    cost_usd: float
    time_seconds: float
    quality: float
    stream: StreamEstimate
    from_sample: bool = False
    #: Still inside the maximal shard-safe run after the scan?  Scale-out
    #: executors only data-parallelize that prefix; the flag flips (for
    #: good) at the first non-shard-safe downstream operator.
    in_shardable_prefix: bool = True


class CostModel:
    """Estimates plan cost/time/quality for a given source profile.

    Args:
        source_profile: cardinality + document-size statistics of the scan.
        max_workers: LLM calls across records run concurrently on this many
            workers, so estimated LLM wall time divides by it.
        sample_stats: observed per-operator stats that override priors.
        batch_size: LLM calls issued in batches of this size pay the fixed
            per-call overhead (``ModelCard.overhead_seconds``) once per
            batch instead of once per record, so the amortized share
            ``overhead * (1 - 1/batch_size)`` comes off each LLM record's
            estimated time.  Cost and quality are unaffected.
        executor: which executor the estimate prices.  For the scale-out
            executors (``"sharded"``/``"async"``) LLM time inside the
            shardable prefix divides by ``shards`` instead of
            ``max_workers``, and :meth:`finish` adds the scatter/gather
            overhead (``SHARD_SETUP_SECONDS`` per shard plus
            ``SCATTER_SECONDS_PER_RECORD`` per scanned record).
        shards: parallelism degree assumed for a scale-out executor.
    """

    def __init__(
        self,
        source_profile: SourceProfile,
        max_workers: int = 1,
        sample_stats: Optional[Dict[str, SampleStats]] = None,
        batch_size: int = 1,
        executor: str = "sequential",
        shards: int = 1,
    ):
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.source_profile = source_profile
        self.max_workers = max_workers
        self.batch_size = batch_size
        self.executor = executor
        self.shards = shards
        self.sample_stats = dict(sample_stats or {})
        # (op, input cardinality, avg tokens) -> resolved per-op numbers.
        # Keyed on the operator instance itself: enumeration reuses one
        # instance per candidate across every plan it appears in.
        self._op_memo: Dict[Tuple, Tuple] = {}

    def update(self, full_op_id: str, stats: SampleStats) -> None:
        self.sample_stats[full_op_id] = stats
        self._op_memo.clear()

    # -- incremental estimation ------------------------------------------

    def initial_accumulator(self) -> PlanAccumulator:
        """The empty-prefix accumulator at the source."""
        return PlanAccumulator(
            cost_usd=0.0,
            time_seconds=0.0,
            quality=1.0,
            stream=StreamEstimate(
                cardinality=float(self.source_profile.cardinality),
                avg_document_tokens=self.source_profile.avg_document_tokens,
            ),
        )

    def _resolve_operator(self, op: PhysicalOperator,
                          stream: StreamEstimate) -> Tuple:
        """Per-operator numbers (priors overridden by samples), memoized."""
        key = (op, stream.cardinality, stream.avg_document_tokens)
        resolved = self._op_memo.get(key)
        if resolved is not None:
            return resolved

        estimates = op.naive_estimates(stream)
        observed = (
            self.sample_stats.get(op.full_op_id) if self.sample_stats
            else None
        )
        cost_per_record = estimates.cost_per_record
        time_per_record = estimates.time_per_record
        output_cardinality = estimates.cardinality
        op_quality = estimates.quality
        if observed is not None:
            if observed.cost_per_record is not None:
                cost_per_record = observed.cost_per_record
            if observed.time_per_record is not None:
                time_per_record = observed.time_per_record
            if observed.selectivity is not None:
                output_cardinality = stream.cardinality * observed.selectivity
            if observed.quality is not None:
                op_quality = observed.quality
        resolved = (
            cost_per_record, time_per_record, output_cardinality,
            op_quality, observed is not None,
        )
        self._op_memo[key] = resolved
        return resolved

    def extend(self, acc: PlanAccumulator,
               op: PhysicalOperator) -> PlanAccumulator:
        """The accumulator after appending ``op`` to the prefix."""
        (cost_per_record, time_per_record, output_cardinality,
         op_quality, sampled) = self._resolve_operator(op, acc.stream)

        input_cardinality = acc.stream.cardinality
        if (
            op.is_llm_op
            and self.batch_size > 1
            and op.model is not None
        ):
            # Batched calls pay the fixed per-call overhead once per batch;
            # the amortized share comes off every record's latency.
            time_per_record = max(
                0.0,
                time_per_record
                - op.model.overhead_seconds * (1.0 - 1.0 / self.batch_size),
            )
        # Track whether ``op`` still sits in the shardable prefix (the scan
        # is prefix-neutral: the prefix is defined over downstream ops).
        in_prefix = acc.in_shardable_prefix
        if (
            in_prefix
            and not isinstance(op, MarshalAndScan)
            and not shard_safe(op)
        ):
            in_prefix = False
        op_time = time_per_record * input_cardinality
        if op.is_llm_op:
            if (
                self.executor in SCALE_OUT_EXECUTORS
                and acc.in_shardable_prefix
                and shard_safe(op)
            ):
                # Scale-out executors scatter prefix LLM calls over shards.
                op_time /= self.shards
            else:
                # Record-parallel LLM calls spread across workers.
                op_time /= self.max_workers
        return PlanAccumulator(
            cost_usd=acc.cost_usd + cost_per_record * input_cardinality,
            time_seconds=acc.time_seconds + op_time,
            quality=acc.quality * max(0.0, min(1.0, op_quality)),
            stream=StreamEstimate(
                cardinality=output_cardinality,
                avg_document_tokens=acc.stream.avg_document_tokens,
            ),
            from_sample=acc.from_sample or sampled,
            in_shardable_prefix=in_prefix,
        )

    def finish(self, plan: PhysicalPlan,
               acc: PlanAccumulator) -> PlanEstimate:
        """Seal a fully-extended accumulator into a :class:`PlanEstimate`."""
        time_seconds = acc.time_seconds
        if self.executor in SCALE_OUT_EXECUTORS and self.shards > 1:
            # Scatter/gather isn't free: per-shard setup plus per-record
            # routing.  This is what makes the optimizer prefer degree 1
            # on tiny sources instead of maximal fan-out everywhere.
            time_seconds += (
                SHARD_SETUP_SECONDS * self.shards
                + SCATTER_SECONDS_PER_RECORD
                * float(self.source_profile.cardinality)
            )
        return PlanEstimate(
            plan=plan,
            cost_usd=acc.cost_usd,
            time_seconds=time_seconds,
            quality=acc.quality,
            output_cardinality=acc.stream.cardinality,
            from_sample=acc.from_sample,
        )

    def estimate_plan(self, plan: PhysicalPlan) -> PlanEstimate:
        acc = self.initial_accumulator()
        for op in plan:
            acc = self.extend(acc, op)
        return self.finish(plan, acc)

    # -- incremental re-run pricing --------------------------------------

    @staticmethod
    def price_incremental(
        estimate: PlanEstimate,
        total_docs: int,
        fresh_docs: int,
        calls_per_doc: float = 1.0,
    ) -> IncrementalPricing:
        """Price replaying a prior run's call log against running cold.

        The incremental run pays the estimated plan cost/time scaled by
        the fresh-document fraction, plus a per-replayed-call lookup
        charge (:data:`REPLAY_SECONDS_PER_CALL`).  The estimate never
        changes the chosen plan — only whether the engine primes a
        :class:`~repro.llm.replay.ReplayLog` from the base run.
        """
        if total_docs <= 0:
            fraction = 1.0
        else:
            fraction = min(1.0, max(0.0, fresh_docs / total_docs))
        replayed_docs = max(0, total_docs - fresh_docs)
        replay_overhead = (
            REPLAY_SECONDS_PER_CALL * replayed_docs * max(0.0, calls_per_doc)
        )
        incremental_cost = estimate.cost_usd * fraction
        incremental_seconds = (
            estimate.time_seconds * fraction + replay_overhead
        )
        return IncrementalPricing(
            cold_cost_usd=estimate.cost_usd,
            cold_seconds=estimate.time_seconds,
            incremental_cost_usd=incremental_cost,
            incremental_seconds=incremental_seconds,
            fresh_fraction=fraction,
            use_incremental=(
                incremental_cost <= estimate.cost_usd
                and incremental_seconds < estimate.time_seconds
            ),
        )
