"""Optimization policies: how users express their preferences.

"Users can specify whether they are interested in quality, runtime, or cost
of executing their pipelines.  They may instruct the system to narrow its
optimization on one of these dimensions (e.g., to minimize the cost no matter
the quality), or specify a meaningful combination of them (e.g., maximize the
output quality while being under a certain latency)." (§2.1)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.optimizer.cost_model import PlanEstimate


class Policy:
    """Ranks plan estimates; lower :meth:`sort_key` wins."""

    name = "policy"

    def sort_key(self, estimate: "PlanEstimate") -> Tuple:
        raise NotImplementedError

    def feasible(self, estimate: "PlanEstimate") -> bool:
        """Whether a plan satisfies this policy's hard constraints."""
        return True

    def choose(self, estimates: Sequence["PlanEstimate"]) -> "PlanEstimate":
        """Pick the best feasible plan (best infeasible as a fallback)."""
        if not estimates:
            raise ValueError("no plan estimates to choose from")
        feasible = [e for e in estimates if self.feasible(e)]
        pool = feasible or list(estimates)
        return min(pool, key=self.sort_key)

    def describe(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class MaxQuality(Policy):
    """Maximize output quality; break ties by lower cost, then time."""

    name = "max-quality"

    def sort_key(self, estimate: "PlanEstimate") -> Tuple:
        return (-estimate.quality, estimate.cost_usd, estimate.time_seconds)


class MinCost(Policy):
    """Minimize dollar cost; break ties by higher quality, then time."""

    name = "min-cost"

    def sort_key(self, estimate: "PlanEstimate") -> Tuple:
        return (estimate.cost_usd, -estimate.quality, estimate.time_seconds)


class MinTime(Policy):
    """Minimize runtime; break ties by higher quality, then cost."""

    name = "min-time"

    def sort_key(self, estimate: "PlanEstimate") -> Tuple:
        return (estimate.time_seconds, -estimate.quality, estimate.cost_usd)


class MaxQualityAtFixedCost(Policy):
    """Maximize quality among plans under a dollar budget."""

    name = "max-quality@cost"

    def __init__(self, max_cost_usd: float):
        if max_cost_usd <= 0:
            raise ValueError(f"budget must be positive, got {max_cost_usd}")
        self.max_cost_usd = max_cost_usd

    def feasible(self, estimate: "PlanEstimate") -> bool:
        return estimate.cost_usd <= self.max_cost_usd

    def sort_key(self, estimate: "PlanEstimate") -> Tuple:
        return (-estimate.quality, estimate.cost_usd, estimate.time_seconds)

    def describe(self) -> str:
        return f"{self.name}(${self.max_cost_usd:.2f})"

    def __repr__(self) -> str:
        return f"MaxQualityAtFixedCost({self.max_cost_usd!r})"


class MaxQualityAtFixedTime(Policy):
    """Maximize quality among plans under a latency budget."""

    name = "max-quality@time"

    def __init__(self, max_time_seconds: float):
        if max_time_seconds <= 0:
            raise ValueError(
                f"time budget must be positive, got {max_time_seconds}"
            )
        self.max_time_seconds = max_time_seconds

    def feasible(self, estimate: "PlanEstimate") -> bool:
        return estimate.time_seconds <= self.max_time_seconds

    def sort_key(self, estimate: "PlanEstimate") -> Tuple:
        return (-estimate.quality, estimate.time_seconds, estimate.cost_usd)

    def describe(self) -> str:
        return f"{self.name}({self.max_time_seconds:.0f}s)"

    def __repr__(self) -> str:
        return f"MaxQualityAtFixedTime({self.max_time_seconds!r})"


class MinCostAtFixedQuality(Policy):
    """Minimize cost among plans above a quality floor."""

    name = "min-cost@quality"

    def __init__(self, min_quality: float):
        if not 0.0 < min_quality <= 1.0:
            raise ValueError(
                f"quality floor must be in (0, 1], got {min_quality}"
            )
        self.min_quality = min_quality

    def feasible(self, estimate: "PlanEstimate") -> bool:
        return estimate.quality >= self.min_quality

    def sort_key(self, estimate: "PlanEstimate") -> Tuple:
        return (estimate.cost_usd, -estimate.quality, estimate.time_seconds)

    def describe(self) -> str:
        return f"{self.name}({self.min_quality:.2f})"

    def __repr__(self) -> str:
        return f"MinCostAtFixedQuality({self.min_quality!r})"


class WeightedBlend(Policy):
    """Scalarized blend: minimize w_c·cost + w_t·time − w_q·quality.

    Cost and time are normalized inside :meth:`choose` against the candidate
    pool so the weights are unitless.
    """

    name = "weighted-blend"

    def __init__(self, cost_weight: float = 1.0, time_weight: float = 1.0,
                 quality_weight: float = 1.0):
        if min(cost_weight, time_weight, quality_weight) < 0:
            raise ValueError("weights must be non-negative")
        if cost_weight == time_weight == quality_weight == 0:
            raise ValueError("at least one weight must be positive")
        self.cost_weight = cost_weight
        self.time_weight = time_weight
        self.quality_weight = quality_weight
        self._cost_scale = 1.0
        self._time_scale = 1.0

    def choose(self, estimates: Sequence["PlanEstimate"]) -> "PlanEstimate":
        if not estimates:
            raise ValueError("no plan estimates to choose from")
        self._cost_scale = max(max(e.cost_usd for e in estimates), 1e-9)
        self._time_scale = max(max(e.time_seconds for e in estimates), 1e-9)
        return min(estimates, key=self.sort_key)

    def sort_key(self, estimate: "PlanEstimate") -> Tuple:
        score = (
            self.cost_weight * estimate.cost_usd / self._cost_scale
            + self.time_weight * estimate.time_seconds / self._time_scale
            - self.quality_weight * estimate.quality
        )
        return (score, estimate.cost_usd)

    def describe(self) -> str:
        return (
            f"{self.name}(cost={self.cost_weight}, time={self.time_weight}, "
            f"quality={self.quality_weight})"
        )


def parse_policy(value) -> Policy:
    """Parse a policy from a name string (used by the chat tools)."""
    if isinstance(value, Policy):
        return value
    needle = str(value).strip().lower().replace("_", "-")
    table = {
        "max-quality": MaxQuality,
        "maxquality": MaxQuality,
        "quality": MaxQuality,
        "min-cost": MinCost,
        "mincost": MinCost,
        "cost": MinCost,
        "min-time": MinTime,
        "mintime": MinTime,
        "time": MinTime,
        "runtime": MinTime,
        "min-runtime": MinTime,
    }
    try:
        return table[needle]()
    except KeyError:
        raise ValueError(
            f"unknown policy {value!r}; expected one of {sorted(table)}"
        ) from None
