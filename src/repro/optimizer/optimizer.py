"""The optimizer: enumerate, (optionally) sample, rank, choose."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.logical import LogicalPlan
from repro.core.sources import DataSource, MemorySource
from repro.llm.models import ModelRegistry, default_registry
from repro.optimizer.cost_model import (
    SCALE_OUT_EXECUTORS,
    CostModel,
    PlanEstimate,
    SampleStats,
)
from repro.obs.trace import NULL_TRACER, SpanKind
from repro.optimizer.planner import (
    EXHAUSTIVE_LIMIT,
    PlanCandidate,
    enumerate_plans,
    pareto_frontier,
    plan_space_size,
)
from repro.optimizer.policies import MaxQuality, Policy
from repro.physical.context import ExecutionContext
from repro.physical.plan import PhysicalPlan
from repro.physical.scan import MarshalAndScan

#: At most this many frontier plans get a sentinel (sample) run.
SENTINEL_PLAN_CAP = 6

#: Parallelism degrees the optimizer enumerates for the scale-out
#: executors when the caller doesn't pin one (filtered to the source
#: cardinality — sharding an N-record source more than N ways is waste).
SHARD_DEGREES = (1, 2, 4, 8)


@dataclass
class OptimizationReport:
    """What the optimizer did and what it picked."""

    chosen: PlanCandidate
    candidates: List[PlanCandidate]
    policy: Policy
    plans_considered: int
    sentinel_cost_usd: float = 0.0
    sentinel_time_seconds: float = 0.0
    sentinel_runs: int = 0

    def frontier(self) -> List[PlanCandidate]:
        return pareto_frontier(self.candidates)

    def describe(self) -> str:
        lines = [
            f"policy: {self.policy.describe()}",
            f"plans considered: {self.plans_considered}",
            f"sentinel runs: {self.sentinel_runs} "
            f"(${self.sentinel_cost_usd:.4f}, "
            f"{self.sentinel_time_seconds:.1f}s)",
            f"chosen: {self.chosen.estimate.describe()}",
        ]
        return "\n".join(lines)


class Optimizer:
    """Builds the plan space and selects the policy-optimal physical plan.

    Args:
        policy: user preference (defaults to :class:`MaxQuality`).
        max_workers: execution parallelism assumed by the cost model.
        batch_size: LLM-stage batch size assumed by the cost model (the
            pipelined executor amortizes per-call overhead across a batch);
            stamped onto the chosen plan via
            :meth:`~repro.physical.plan.PhysicalPlan.with_batch_size`.
        executor: which executor the cost model prices ("sequential" by
            default).  For the scale-out executors ("sharded"/"async")
            prefix LLM time divides by the shard count and the estimate
            carries scatter/gather overhead.
        shards: parallelism degree for a scale-out executor.  ``None``
            (default) makes the optimizer *enumerate* the degrees in
            :data:`SHARD_DEGREES` (capped at the source cardinality) as
            extra plan candidates and lets the policy choose one jointly
            with the operator choices; an integer pins the degree.  The
            chosen plan is stamped via
            :meth:`~repro.physical.plan.PhysicalPlan.with_shards`.
        sample_size: if > 0, run the Pareto-frontier plans on this many
            sample records first ("sentinel" execution) and replace the
            naive per-operator estimates with observed statistics.
        models: model registry defining the plan space.
        lint: run plan lint (``PZ1xx``) before enumerating; error-level
            findings raise :class:`~repro.analysis.LintError` so broken
            plans are rejected before any (simulated) dollars are spent.
        tracer: observability tracer; enumeration, sentinel runs, and the
            policy's choice become ``optimize.*`` spans carrying candidate
            counts and pruning attributes.
        candidate_options: keyword switches forwarded to
            :func:`repro.optimizer.candidates.candidate_operators` (ablations).
    """

    def __init__(
        self,
        policy: Optional[Policy] = None,
        max_workers: int = 1,
        sample_size: int = 0,
        models: Optional[ModelRegistry] = None,
        lint: bool = True,
        batch_size: int = 1,
        executor: str = "sequential",
        shards: Optional[int] = None,
        tracer=None,
        **candidate_options,
    ):
        if shards is not None and shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.policy = policy or MaxQuality()
        self.max_workers = max_workers
        self.batch_size = batch_size
        self.executor = executor
        self.shards = shards
        self.sample_size = sample_size
        self.models = models or default_registry()
        self.lint = lint
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.candidate_options = candidate_options

    def optimize(self, logical_plan: LogicalPlan,
                 source: DataSource) -> OptimizationReport:
        if self.lint:
            from repro.analysis import LintError, lint_plan

            lint_result = lint_plan(
                logical_plan, source=source,
                shards=self.shards if self.shards is not None else 1,
            )
            if not lint_result.ok:
                raise LintError(lint_result)
        profile = source.profile()
        scale_out = self.executor in SCALE_OUT_EXECUTORS
        cost_model = CostModel(
            profile,
            max_workers=self.max_workers,
            batch_size=self.batch_size,
            executor=self.executor,
            shards=self.shards if self.shards is not None else 1,
        )
        tracer = self.tracer
        with tracer.span(
            "optimize.enumerate", SpanKind.OPTIMIZE,
            logical=logical_plan.describe(),
        ) as enum_span:
            candidates = enumerate_plans(
                logical_plan,
                source,
                self.models,
                cost_model,
                **self.candidate_options,
            )
            if tracer.enabled:
                space = plan_space_size(
                    logical_plan, self.models, source,
                    **self.candidate_options,
                )
                enum_span.set_attribute("plan_space", space)
                enum_span.set_attribute("candidates", len(candidates))
                enum_span.set_attribute(
                    "pruned", max(0, space - len(candidates))
                )
                enum_span.set_attribute(
                    "strategy",
                    "exhaustive" if space <= EXHAUSTIVE_LIMIT
                    else "pareto-dp",
                )

        sentinel_cost = 0.0
        sentinel_time = 0.0
        sentinel_runs = 0
        measured_quality: Dict[str, float] = {}
        if self.sample_size > 0 and profile.cardinality > 0:
            (sentinel_cost, sentinel_time, sentinel_runs,
             measured_quality) = self._run_sentinels(
                logical_plan, candidates, source, cost_model
            )
            # Re-estimate everything with the observed statistics folded
            # in; sentinel-run plans additionally get their *measured*
            # output quality (sample output vs perfect reference).
            candidates = [
                self._requalified(
                    candidate.plan, cost_model, measured_quality
                )
                for candidate in candidates
            ]

        if scale_out and self.shards is None:
            candidates = self._enumerate_degrees(
                candidates, profile, cost_model, measured_quality
            )

        estimates = [c.estimate for c in candidates]
        with tracer.span(
            "optimize.choose", SpanKind.OPTIMIZE,
            policy=self.policy.describe(), candidates=len(candidates),
        ) as choose_span:
            chosen_estimate = self.policy.choose(estimates)
            chosen = next(
                c for c in candidates if c.estimate is chosen_estimate
            )
            if tracer.enabled:
                choose_span.set_attribute("chosen_plan", chosen.plan.plan_id)
                choose_span.set_attribute(
                    "frontier", len(pareto_frontier(candidates))
                )
                if scale_out:
                    choose_span.set_attribute(
                        "shards",
                        self.shards if self.shards is not None
                        else chosen.plan.shards,
                    )
        if scale_out and self.shards is not None:
            chosen = PlanCandidate(
                plan=chosen.plan.with_shards(self.shards),
                estimate=chosen.estimate,
            )
        if self.batch_size > 1:
            chosen = PlanCandidate(
                plan=chosen.plan.with_batch_size(self.batch_size),
                estimate=chosen.estimate,
            )
        return OptimizationReport(
            chosen=chosen,
            candidates=candidates,
            policy=self.policy,
            plans_considered=len(candidates),
            sentinel_cost_usd=sentinel_cost,
            sentinel_time_seconds=sentinel_time,
            sentinel_runs=sentinel_runs,
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _requalified(
        plan: PhysicalPlan,
        cost_model: CostModel,
        measured_quality: Dict[str, float],
    ) -> PlanCandidate:
        """Estimate ``plan`` with ``cost_model``, folding in any measured
        sentinel quality (keyed by plan id, which ignores shard/batch
        stamps — a sampled plan stays sampled at every degree)."""
        import dataclasses

        estimate = cost_model.estimate_plan(plan)
        if plan.plan_id in measured_quality:
            estimate = dataclasses.replace(
                estimate,
                quality=measured_quality[plan.plan_id],
                from_sample=True,
            )
        return PlanCandidate(plan=plan, estimate=estimate)

    def _enumerate_degrees(
        self,
        candidates: List[PlanCandidate],
        profile,
        cost_model: CostModel,
        measured_quality: Dict[str, float],
    ) -> List[PlanCandidate]:
        """Cross every candidate with the shard degrees in
        :data:`SHARD_DEGREES` so the policy chooses the parallelism degree
        jointly with the operator choices.

        Degree-1 candidates are the incoming ones unchanged (the base cost
        model already priced ``shards=1``); each higher degree gets its own
        cost model sharing the sentinel-observed ``sample_stats``, and its
        plans are stamped via ``with_shards`` so the executor honors the
        choice.
        """
        cardinality = max(1, int(profile.cardinality))
        expanded = list(candidates)
        for degree in SHARD_DEGREES:
            if degree == 1 or degree > cardinality:
                continue
            degree_model = CostModel(
                profile,
                max_workers=self.max_workers,
                sample_stats=cost_model.sample_stats,
                batch_size=self.batch_size,
                executor=self.executor,
                shards=degree,
            )
            expanded.extend(
                self._requalified(
                    candidate.plan.with_shards(degree),
                    degree_model,
                    measured_quality,
                )
                for candidate in candidates
            )
        return expanded

    def _run_sentinels(
        self,
        logical_plan: LogicalPlan,
        candidates: List[PlanCandidate],
        source: DataSource,
        cost_model: CostModel,
    ):
        """Execute frontier plans on a sample; fold stats into the model.

        Returns ``(cost, time, runs, measured_quality)`` where
        ``measured_quality`` maps plan ids to the F1 of the plan's sample
        output against the oracle-perfect reference output.
        """
        from repro.evaluation.metrics import records_f1
        from repro.evaluation.reference import reference_output
        from repro.execution.executors import SequentialExecutor

        sample_records = source.sample(self.sample_size)
        if not sample_records:
            return 0.0, 0.0, 0, {}
        sample_source = MemorySource(
            sample_records,
            dataset_id=f"{source.dataset_id}#sample",
            schema=source.schema,
        )
        try:
            reference = reference_output(logical_plan, sample_source)
        except Exception:  # pragma: no cover - exotic plans
            reference = None

        frontier = pareto_frontier(candidates)
        frontier.sort(key=lambda c: c.estimate.cost_usd)
        frontier = frontier[:SENTINEL_PLAN_CAP]

        total_cost = 0.0
        total_time = 0.0
        measured_quality: Dict[str, float] = {}
        for candidate in frontier:
            sample_plan = PhysicalPlan(
                [
                    MarshalAndScan(
                        candidate.plan.scan.logical_op, sample_source
                    )
                ]
                + candidate.plan.downstream
            )
            # Fresh, tracer-free context: sentinel traffic is accounted
            # separately and must not pollute the main run's trace.
            context = ExecutionContext(
                max_workers=1, models=self.models
            )
            executor = SequentialExecutor(context)
            with self.tracer.span(
                "optimize.sentinel", SpanKind.OPTIMIZE,
                plan_id=candidate.plan.plan_id,
                sample_size=len(sample_records),
            ) as sentinel_span:
                sample_output, plan_stats = executor.execute(sample_plan)
                if self.tracer.enabled:
                    sentinel_span.set_attribute(
                        "sample_cost_usd", round(plan_stats.total_cost_usd, 9)
                    )
                    sentinel_span.set_attribute(
                        "sample_time_seconds",
                        round(plan_stats.total_time_seconds, 9),
                    )
            total_cost += plan_stats.total_cost_usd
            total_time += plan_stats.total_time_seconds
            if reference is not None:
                measured_quality[candidate.plan.plan_id] = records_f1(
                    sample_output, reference
                ).f1

            for op, op_stats in zip(
                sample_plan.downstream, plan_stats.operator_stats[1:]
            ):
                if op_stats.records_in == 0:
                    continue
                cost_model.update(
                    op.full_op_id,
                    SampleStats(
                        selectivity=op_stats.selectivity,
                        cost_per_record=(
                            op_stats.cost_usd / op_stats.records_in
                        ),
                        time_per_record=(
                            op_stats.time_seconds / op_stats.records_in
                        ),
                    ),
                )
        return total_cost, total_time, len(frontier), measured_quality
