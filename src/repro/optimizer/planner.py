"""Plan enumeration with Pareto pruning.

The plan space is the cross product of per-operator physical candidates.  For
the pipeline sizes the paper demonstrates this is small enough to enumerate
exhaustively; for larger pipelines the enumerator switches to a stepwise
dynamic program that keeps only the Pareto frontier over
(cost, time, quality) after each operator — dominated partial plans can never
become optimal under any of the supported policies, all of which are
monotone in those three dimensions.

Both strategies share the incremental estimation machinery of
:class:`~repro.optimizer.cost_model.CostModel`: prefixes are extended one
operator at a time (a :class:`PlanAccumulator` per partial plan), so the
enumerator never re-costs a shared prefix, and dominated partials are
discarded *during* enumeration — before their completions are ever
materialized — instead of after costing every full plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.logical import LogicalPlan
from repro.core.sources import DataSource
from repro.llm.models import ModelRegistry
from repro.optimizer.candidates import candidate_operators
from repro.optimizer.cost_model import CostModel, PlanAccumulator, PlanEstimate
from repro.physical.base import PhysicalOperator
from repro.physical.plan import PhysicalPlan

#: Above this many total plans, switch to stepwise Pareto pruning.
EXHAUSTIVE_LIMIT = 4096

#: Cap on the partial-plan frontier kept per step (safety valve).
FRONTIER_CAP = 64


@dataclass(frozen=True)
class PlanCandidate:
    """A fully specified physical plan plus its estimate."""

    plan: PhysicalPlan
    estimate: PlanEstimate


def _dominates(a: PlanEstimate, b: PlanEstimate) -> bool:
    """True if ``a`` is at least as good as ``b`` everywhere, better somewhere."""
    no_worse = (
        a.cost_usd <= b.cost_usd
        and a.time_seconds <= b.time_seconds
        and a.quality >= b.quality
    )
    strictly_better = (
        a.cost_usd < b.cost_usd
        or a.time_seconds < b.time_seconds
        or a.quality > b.quality
    )
    return no_worse and strictly_better


def pareto_frontier(candidates: Sequence[PlanCandidate]) -> List[PlanCandidate]:
    """The non-dominated subset of ``candidates``."""
    frontier: List[PlanCandidate] = []
    for candidate in candidates:
        if any(_dominates(kept.estimate, candidate.estimate) for kept in frontier):
            continue
        frontier = [
            kept for kept in frontier
            if not _dominates(candidate.estimate, kept.estimate)
        ]
        frontier.append(candidate)
    return frontier


def plan_space_size(
    logical_plan: LogicalPlan,
    models: ModelRegistry,
    source: DataSource,
    **candidate_kwargs,
) -> int:
    """Number of physical plans implementing ``logical_plan``."""
    size = 1
    for op in logical_plan:
        size *= len(
            candidate_operators(op, models, source=source, **candidate_kwargs)
        )
    return size


#: A partial plan during enumeration: its operator prefix plus the running
#: cost/time/quality accumulator (no PhysicalPlan is built until the end).
_Partial = Tuple[Tuple[PhysicalOperator, ...], PlanAccumulator]


def _acc_dominates(a: PlanAccumulator, b: PlanAccumulator) -> bool:
    no_worse = (
        a.cost_usd <= b.cost_usd
        and a.time_seconds <= b.time_seconds
        and a.quality >= b.quality
    )
    strictly_better = (
        a.cost_usd < b.cost_usd
        or a.time_seconds < b.time_seconds
        or a.quality > b.quality
    )
    return no_worse and strictly_better


def _partial_frontier(partials: Sequence[_Partial]) -> List[_Partial]:
    """Non-dominated partial plans, same insertion semantics as
    :func:`pareto_frontier` (equal points are all kept)."""
    frontier: List[_Partial] = []
    for partial in partials:
        _, acc = partial
        if any(_acc_dominates(kept_acc, acc) for _, kept_acc in frontier):
            continue
        frontier = [
            kept for kept in frontier if not _acc_dominates(acc, kept[1])
        ]
        frontier.append(partial)
    return frontier


def enumerate_plans(
    logical_plan: LogicalPlan,
    source: DataSource,
    models: ModelRegistry,
    cost_model: CostModel,
    prune: Optional[bool] = None,
    **candidate_kwargs,
) -> List[PlanCandidate]:
    """Enumerate (and estimate) the physical plans for ``logical_plan``.

    Returns candidates with naive estimates attached.  When ``prune`` is
    None, the strategy is chosen automatically based on plan-space size.
    """
    per_op_candidates: List[List[PhysicalOperator]] = [
        candidate_operators(op, models, source=source, **candidate_kwargs)
        for op in logical_plan
    ]
    total = 1
    for options in per_op_candidates:
        total *= len(options)
    if prune is None:
        prune = total > EXHAUSTIVE_LIMIT

    root_acc = cost_model.initial_accumulator()

    if not prune:
        # Exhaustive: walk the cross product depth-first, extending the
        # shared-prefix accumulator incrementally (plan order matches the
        # nested-loop / itertools.product order).
        candidates: List[PlanCandidate] = []

        def expand(step: int, prefix: Tuple[PhysicalOperator, ...],
                   acc: PlanAccumulator) -> None:
            if step == len(per_op_candidates):
                plan = PhysicalPlan(list(prefix))
                candidates.append(
                    PlanCandidate(plan=plan,
                                  estimate=cost_model.finish(plan, acc))
                )
                return
            for option in per_op_candidates[step]:
                expand(step + 1, prefix + (option,),
                       cost_model.extend(acc, option))

        expand(0, (), root_acc)
        return candidates

    # Stepwise dynamic program over Pareto frontiers of partial plans:
    # dominated prefixes are dropped the moment they appear, so their
    # completions are never enumerated, let alone costed.
    partials: List[_Partial] = [
        ((op,), cost_model.extend(root_acc, op))
        for op in per_op_candidates[0]
    ]
    for options in per_op_candidates[1:]:
        extended: List[_Partial] = [
            (prefix + (option,), cost_model.extend(acc, option))
            for prefix, acc in partials
            for option in options
        ]
        frontier = _partial_frontier(extended)
        if len(frontier) > FRONTIER_CAP:
            # Keep a spread: best by each dimension, then lowest-cost rest.
            frontier.sort(key=lambda partial: partial[1].cost_usd)
            frontier = frontier[:FRONTIER_CAP]
        partials = frontier

    out: List[PlanCandidate] = []
    for prefix, acc in partials:
        plan = PhysicalPlan(list(prefix))
        out.append(PlanCandidate(plan=plan,
                                 estimate=cost_model.finish(plan, acc)))
    return out
