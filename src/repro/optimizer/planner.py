"""Plan enumeration with Pareto pruning.

The plan space is the cross product of per-operator physical candidates.  For
the pipeline sizes the paper demonstrates this is small enough to enumerate
exhaustively; for larger pipelines the enumerator switches to a stepwise
dynamic program that keeps only the Pareto frontier over
(cost, time, quality) after each operator — dominated partial plans can never
become optimal under any of the supported policies, all of which are
monotone in those three dimensions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.logical import LogicalPlan
from repro.core.sources import DataSource
from repro.llm.models import ModelRegistry
from repro.optimizer.candidates import candidate_operators
from repro.optimizer.cost_model import CostModel, PlanEstimate
from repro.physical.base import PhysicalOperator
from repro.physical.plan import PhysicalPlan

#: Above this many total plans, switch to stepwise Pareto pruning.
EXHAUSTIVE_LIMIT = 4096

#: Cap on the partial-plan frontier kept per step (safety valve).
FRONTIER_CAP = 64


@dataclass(frozen=True)
class PlanCandidate:
    """A fully specified physical plan plus its estimate."""

    plan: PhysicalPlan
    estimate: PlanEstimate


def _dominates(a: PlanEstimate, b: PlanEstimate) -> bool:
    """True if ``a`` is at least as good as ``b`` everywhere, better somewhere."""
    no_worse = (
        a.cost_usd <= b.cost_usd
        and a.time_seconds <= b.time_seconds
        and a.quality >= b.quality
    )
    strictly_better = (
        a.cost_usd < b.cost_usd
        or a.time_seconds < b.time_seconds
        or a.quality > b.quality
    )
    return no_worse and strictly_better


def pareto_frontier(candidates: Sequence[PlanCandidate]) -> List[PlanCandidate]:
    """The non-dominated subset of ``candidates``."""
    frontier: List[PlanCandidate] = []
    for candidate in candidates:
        if any(_dominates(kept.estimate, candidate.estimate) for kept in frontier):
            continue
        frontier = [
            kept for kept in frontier
            if not _dominates(candidate.estimate, kept.estimate)
        ]
        frontier.append(candidate)
    return frontier


def plan_space_size(
    logical_plan: LogicalPlan,
    models: ModelRegistry,
    source: DataSource,
    **candidate_kwargs,
) -> int:
    """Number of physical plans implementing ``logical_plan``."""
    size = 1
    for op in logical_plan:
        size *= len(
            candidate_operators(op, models, source=source, **candidate_kwargs)
        )
    return size


def enumerate_plans(
    logical_plan: LogicalPlan,
    source: DataSource,
    models: ModelRegistry,
    cost_model: CostModel,
    prune: Optional[bool] = None,
    **candidate_kwargs,
) -> List[PlanCandidate]:
    """Enumerate (and estimate) the physical plans for ``logical_plan``.

    Returns candidates with naive estimates attached.  When ``prune`` is
    None, the strategy is chosen automatically based on plan-space size.
    """
    per_op_candidates: List[List[PhysicalOperator]] = [
        candidate_operators(op, models, source=source, **candidate_kwargs)
        for op in logical_plan
    ]
    total = 1
    for options in per_op_candidates:
        total *= len(options)
    if prune is None:
        prune = total > EXHAUSTIVE_LIMIT

    if not prune:
        candidates = []
        for combo in itertools.product(*per_op_candidates):
            plan = PhysicalPlan(list(combo))
            candidates.append(
                PlanCandidate(plan=plan, estimate=cost_model.estimate_plan(plan))
            )
        return candidates

    # Stepwise dynamic program over Pareto frontiers of partial plans.
    partials: List[List[PhysicalOperator]] = [[op] for op in per_op_candidates[0]]
    for options in per_op_candidates[1:]:
        extended: List[PlanCandidate] = []
        for partial in partials:
            for option in options:
                plan = PhysicalPlan(partial + [option])
                extended.append(
                    PlanCandidate(
                        plan=plan, estimate=cost_model.estimate_plan(plan)
                    )
                )
        frontier = pareto_frontier(extended)
        if len(frontier) > FRONTIER_CAP:
            # Keep a spread: best by each dimension, then lowest-cost rest.
            frontier.sort(key=lambda c: c.estimate.cost_usd)
            frontier = frontier[:FRONTIER_CAP]
        partials = [candidate.plan.operators for candidate in frontier]

    return [
        PlanCandidate(
            plan=PhysicalPlan(ops),
            estimate=cost_model.estimate_plan(PhysicalPlan(ops)),
        )
        for ops in partials
    ]
