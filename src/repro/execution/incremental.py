"""Incremental execution: delta detection + provenance-driven recompute.

PalimpChat's interactive loop re-runs the same pipeline as users refine
queries and corpora drift.  A cold re-run pays for every document again,
even though record-level provenance (PR 5) knows exactly which outputs
derive from which inputs.  This module turns that knowledge into a
performance feature:

1. **Source manifests** — every run records one entry per source document
   (:func:`build_source_manifest`): a stable key, the oracle content
   fingerprint, and the record fingerprint that provenance roots carry.
   Both fingerprints are memoized through :mod:`repro.llm.memo`, so a warm
   manifest build re-hashes only documents whose text actually changed.

2. **Delta detection** — :func:`diff_manifests` compares the live source
   against a prior run's manifest into added / changed / dropped /
   unchanged documents (a :class:`ManifestDelta`).

3. **Delta recompute** — the engine re-executes the *full* plan through
   the chosen executor, but primes the LLM client with the base run's
   call log (:class:`repro.llm.replay.ReplayLog`).  Calls for unchanged
   documents replay: they charge the cold run's exact accounting (so
   records, stats, traces, and provenance come out byte-identical to a
   cold run) while the re-run's own bill counts only the fresh calls.
   :func:`delta_impact` walks the base ProvenanceGraph forward from the
   delta to report which outputs were invalidated vs. reusable.

The :class:`IncrementalReport` attached to ``ExecutionStats.incremental``
summarizes all three: the delta, the provenance impact, and the
fresh-vs-reused bill with its cost/time speedups over cold.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro.core.sources import DataSource
from repro.llm.memo import TextMemo, register_memo
from repro.llm.oracle import fingerprint_text

__all__ = [
    "IncrementalReport",
    "ManifestDelta",
    "build_source_manifest",
    "delta_impact",
    "diff_manifests",
    "record_fingerprint",
]

#: Manifest payload format version (persisted as ``manifest.json``).
MANIFEST_VERSION = 1

#: Record-JSON -> sha256[:16], shared with provenance node fingerprints.
#: Memoized because a warm re-run re-fingerprints an unchanged corpus:
#: the SHA-256 over each document's full record JSON is the dominant
#: manifest cost, and the memo turns it into one dict probe per document.
_record_fp_memo = register_memo(TextMemo("record_fp"))


def record_fingerprint(payload: str) -> str:
    """``sha256(record.to_json())[:16]`` — the provenance node ``fp``.

    Memoized on the JSON payload through :mod:`repro.llm.memo` so warm
    manifest builds are O(changed documents) in hashing work.
    """
    return _record_fp_memo.get_or_compute(
        payload,
        lambda text: hashlib.sha256(text.encode("utf-8")).hexdigest()[:16],
    )


def build_source_manifest(source: DataSource) -> Dict[str, Any]:
    """Per-document manifest of ``source``: what a later run diffs against.

    Each entry carries a stable key (the record's ``filename`` field when
    the schema has one, else ``dataset_id#index``), the oracle content
    fingerprint of the document text, and the record fingerprint matching
    the provenance graph's root-node ``fp``.
    """
    entries: List[Dict[str, Any]] = []
    for index, record in enumerate(source):
        filename = record.get("filename")
        key = str(filename) if filename else f"{source.dataset_id}#{index}"
        entries.append({
            "key": key,
            "fingerprint": fingerprint_text(record.document_text()),
            "record_fp": record_fingerprint(record.to_json()),
        })
    return {
        "version": MANIFEST_VERSION,
        "dataset_id": source.dataset_id,
        "count": len(entries),
        "entries": entries,
    }


@dataclass
class ManifestDelta:
    """The document-level difference between two source manifests."""

    added: List[str] = field(default_factory=list)
    changed: List[str] = field(default_factory=list)
    dropped: List[str] = field(default_factory=list)
    unchanged: List[str] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not (self.added or self.changed or self.dropped)

    @property
    def total_live(self) -> int:
        """Documents in the live source."""
        return len(self.added) + len(self.changed) + len(self.unchanged)

    @property
    def fresh_docs(self) -> int:
        """Documents the incremental run must actually pay for."""
        return len(self.added) + len(self.changed)

    @property
    def fresh_fraction(self) -> float:
        if self.total_live == 0:
            return 1.0
        return self.fresh_docs / self.total_live

    def to_dict(self) -> Dict[str, Any]:
        return {
            "added": len(self.added),
            "changed": len(self.changed),
            "dropped": len(self.dropped),
            "unchanged": len(self.unchanged),
        }

    def __repr__(self) -> str:
        return (
            f"ManifestDelta(+{len(self.added)} ~{len(self.changed)} "
            f"-{len(self.dropped)} ={len(self.unchanged)})"
        )


def diff_manifests(base: Optional[Dict[str, Any]],
                   live: Dict[str, Any]) -> ManifestDelta:
    """Diff a prior run's manifest against the live source's.

    Documents match on their manifest key; a matched key with a different
    content fingerprint is *changed*.  A missing base manifest makes every
    live document *added* (forcing a cold-priced run).
    """
    base_entries = {
        e["key"]: e for e in (base or {}).get("entries", [])
    }
    delta = ManifestDelta()
    for entry in live.get("entries", []):
        key = entry["key"]
        prior = base_entries.pop(key, None)
        if prior is None:
            delta.added.append(key)
        elif prior["fingerprint"] != entry["fingerprint"]:
            delta.changed.append(key)
        else:
            delta.unchanged.append(key)
    delta.dropped.extend(sorted(base_entries))
    return delta


def delta_impact(graph, delta: ManifestDelta,
                 base_manifest: Dict[str, Any]) -> Dict[str, int]:
    """Which base-run outputs does the delta invalidate?

    Walks the base run's :class:`~repro.obs.provenance.ProvenanceGraph`
    forward (parents -> children over emit/drop events) from the root
    nodes whose ``fp`` matches a changed or dropped document's
    ``record_fp``.  Outputs reachable from the delta are *invalidated*;
    the rest are *reusable* (their whole derivation replays).  Added
    documents have no base nodes, so they contribute fresh work but no
    invalidation.
    """
    if graph is None:
        return {"invalidated_outputs": 0, "reusable_outputs": 0,
                "touched_nodes": 0}
    stale_keys = set(delta.changed) | set(delta.dropped)
    stale_fps = {
        e["record_fp"] for e in base_manifest.get("entries", [])
        if e["key"] in stale_keys
    }
    frontier = [
        n["id"] for n in graph.roots() if n["fp"] in stale_fps
    ]
    reached: Set[int] = set(frontier)
    # Forward BFS: events are a DAG over canonical ids, so a worklist with
    # a visited set terminates; children of a touched parent are touched.
    while frontier:
        node_id = frontier.pop()
        for event in graph.events:
            if node_id in event["parents"]:
                for child in event["children"]:
                    if child not in reached:
                        reached.add(child)
                        frontier.append(child)
    invalidated = len(set(graph.output_ids) & reached)
    return {
        "invalidated_outputs": invalidated,
        "reusable_outputs": len(graph.output_ids) - invalidated,
        "touched_nodes": len(reached),
    }


@dataclass
class IncrementalReport:
    """What an incremental run reused, recomputed, and saved.

    Attached to ``ExecutionStats.incremental``; excluded from stats
    serialization and comparison, because the run's *visible* accounting
    is deliberately byte-identical to the cold run it reproduces.  Costs
    are exact ledger splits; times are serial sums of per-call simulated
    latency (the apples-to-apples metric across executors, independent of
    how a particular executor overlapped the calls).
    """

    base_run_id: str
    #: "replay" (primed from the base call log) or "cold" (the pricing
    #: decided replaying would not pay, or there was nothing to replay).
    mode: str
    delta: ManifestDelta
    impact: Dict[str, int] = field(default_factory=dict)
    replayed_calls: int = 0
    fresh_calls: int = 0
    reused_cost_usd: float = 0.0
    reused_llm_seconds: float = 0.0
    fresh_cost_usd: float = 0.0
    fresh_llm_seconds: float = 0.0
    pricing: Optional[Any] = None

    @property
    def cold_cost_usd(self) -> float:
        return self.reused_cost_usd + self.fresh_cost_usd

    @property
    def cold_llm_seconds(self) -> float:
        return self.reused_llm_seconds + self.fresh_llm_seconds

    @staticmethod
    def _ratio(total: float, fresh: float) -> float:
        if fresh <= 0.0:
            return float("inf") if total > 0.0 else 1.0
        return total / fresh

    @property
    def speedup_cost(self) -> float:
        """Cold LLM spend over the incremental run's own spend."""
        if self.fresh_calls == 0:
            # Fully replayed: free, modulo float residue in the tallies.
            return float("inf") if self.cold_cost_usd > 0.0 else 1.0
        return self._ratio(self.cold_cost_usd, self.fresh_cost_usd)

    @property
    def speedup_time(self) -> float:
        """Cold serial LLM seconds over the incremental run's own."""
        if self.fresh_calls == 0:
            return float("inf") if self.cold_llm_seconds > 0.0 else 1.0
        return self._ratio(self.cold_llm_seconds, self.fresh_llm_seconds)

    def to_dict(self) -> Dict[str, Any]:
        def _round_ratio(value: float) -> Any:
            return "inf" if value == float("inf") else round(value, 2)

        payload: Dict[str, Any] = {
            "base_run_id": self.base_run_id,
            "mode": self.mode,
            "delta": self.delta.to_dict(),
            "impact": dict(self.impact),
            "replayed_calls": self.replayed_calls,
            "fresh_calls": self.fresh_calls,
            "reused_cost_usd": round(self.reused_cost_usd, 6),
            "reused_llm_seconds": round(self.reused_llm_seconds, 3),
            "fresh_cost_usd": round(self.fresh_cost_usd, 6),
            "fresh_llm_seconds": round(self.fresh_llm_seconds, 3),
            "speedup_cost": _round_ratio(self.speedup_cost),
            "speedup_time": _round_ratio(self.speedup_time),
        }
        if self.pricing is not None:
            payload["pricing"] = self.pricing.to_dict()
        return payload

    def render(self) -> str:
        delta = self.delta
        lines = [
            "=== Incremental execution ===",
            f"base run:          {self.base_run_id}",
            f"mode:              {self.mode}",
            f"source delta:      +{len(delta.added)} added, "
            f"~{len(delta.changed)} changed, -{len(delta.dropped)} dropped, "
            f"={len(delta.unchanged)} unchanged",
        ]
        if self.impact:
            lines.append(
                f"base outputs:      {self.impact.get('invalidated_outputs', 0)} "
                f"invalidated / {self.impact.get('reusable_outputs', 0)} reusable"
            )
        lines.extend([
            f"LLM calls:         {self.replayed_calls} replayed / "
            f"{self.fresh_calls} fresh",
            f"reused (replayed): ${self.reused_cost_usd:.4f}, "
            f"{self.reused_llm_seconds:.1f} llm-s",
            f"fresh (paid):      ${self.fresh_cost_usd:.4f}, "
            f"{self.fresh_llm_seconds:.1f} llm-s",
        ])
        speedup_cost = self.speedup_cost
        speedup_time = self.speedup_time
        cost_text = ("inf" if speedup_cost == float("inf")
                     else f"{speedup_cost:.1f}x")
        time_text = ("inf" if speedup_time == float("inf")
                     else f"{speedup_time:.1f}x")
        lines.append(
            f"speedup vs cold:   {cost_text} cost, {time_text} llm time"
        )
        return "\n".join(lines)
