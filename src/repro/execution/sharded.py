"""Sharded scale-out execution: scatter the operator chain over K shards.

:class:`ShardedExecutor` partitions the source stream into ``shards``
deterministic shards (round-robin by arrival index, or size-balanced by
document tokens) and runs the plan's *shardable prefix* — the maximal run of
shard-safe operators after the scan (see
:func:`repro.physical.plan.shard_safe`) — once per shard on a dedicated
worker thread.  Everything after the prefix (the *suffix*: limits, distinct,
blocking aggregates, sorts, retrieves, UDF joins, ...) runs post-gather in
global arrival order, so order-sensitive semantics are untouched.

Equivalence contract (inherited from the pipelined executor and extended
here): output records, per-operator ``ExecutionStats``, traces, and
provenance graphs are identical to the sequential executor at any shard
count.  The mechanisms:

* **Scatter** — the orchestrator iterates the scan once on lane 0 and routes
  ``(index, record)`` pairs by the same pure assignment function
  :func:`repro.core.sources.shard_assignment` uses, so online scatter and
  offline :func:`repro.core.sources.shard_source` partitioning agree.
* **Sequence-numbered bundles + reorder buffer** — shard workers emit one
  ``(index, outputs)`` bundle for *every* input record (empty outputs
  included), so the gather sees dense global indices and restores exact
  arrival order before the suffix runs.
* **Single-writer lanes** — lane 0 is the orchestrator, lanes ``1..K`` each
  have exactly one shard thread, lane ``K+1`` is the gather.  Every lane has
  one writer, so live span start times are already deterministic and no
  post-hoc relayout pass is needed.
* **Prefix close by last worker out** — the last shard worker to exit closes
  the prefix operators (outer joins flush unmatched rows here) on lane 1
  under a dedicated span, and the flushed records become the final bundle,
  sequenced after every mainline record — exactly where a sequential flush
  would put them.
* **Shard-local pre-aggregation** — when the first suffix operator is a
  decomposable blocking op (``accumulate_seconds`` set: aggregates,
  group-bys), shard workers pay its per-record fold charge in parallel via
  :meth:`_PipeMeter.charge_accumulate` and the gather replays only the
  unmetered state mutation (``accumulate_silent``) in global order — the
  combined accounting is identical to a sequential fold, but the time
  parallelizes.

Plans whose ``LimitOp`` can stop the source early fall back to the inline
sequential path (inherited), because speculative parallelism upstream of
such a limit would change which records pay for LLM calls.
"""

from __future__ import annotations

import queue
import threading
from typing import List, Optional, Sequence, Tuple

from repro.core.records import DataRecord
from repro.core.sources import (
    SHARD_BALANCED,
    SHARD_ROUND_ROBIN,
    SHARD_STRATEGIES,
)
from repro.execution.pipeline import (
    QUEUE_DEPTH_PER_WORKER,
    PipelinedExecutor,
    _Aborted,
    _Eos,
    _PipeMeter,
)
from repro.llm.tokenizer import count_tokens
from repro.obs.trace import SpanKind
from repro.physical.context import ExecutionContext
from repro.physical.plan import PhysicalPlan, shard_safe


class _ShardRun:
    """Mutable state shared by one sharded execution's threads."""

    #: ``total`` is writes-only: _close_prefix reads it after every shard
    #: worker has exited (the last-one-out check is itself locked).
    _GUARDED_BY = {"exited": "exit_lock", "total": ("exit_lock", "writes")}

    __slots__ = (
        "prefix", "suffix", "decomp_meter", "gather_queue", "close_span",
        "exit_lock", "exited", "total", "shards",
    )

    def __init__(self, prefix: List[_PipeMeter], suffix: List[_PipeMeter],
                 decomp_meter: Optional[_PipeMeter],
                 gather_queue: "queue.Queue", close_span, shards: int):
        self.prefix = prefix
        self.suffix = suffix
        self.decomp_meter = decomp_meter
        self.gather_queue = gather_queue
        self.close_span = close_span
        self.exit_lock = threading.Lock()
        self.exited = 0
        self.total = 0  # global record count, learned from the scatter's EOS
        self.shards = shards


class ShardedExecutor(PipelinedExecutor):
    """Scatter/gather execution over deterministic source shards.

    Args:
        context: execution context; created with ``shards`` lanes when
            omitted.
        shards: parallelism degree.  ``None`` (default) honors the degree
            the optimizer stamped onto the plan (``plan.shards``), falling
            back to 2.
        strategy: shard assignment strategy — ``"round_robin"`` or
            ``"balanced"`` (greedy size balancing by document tokens).
            Either way results are identical; only lane utilization moves.
        batch_size: records per ``process_batch`` call inside a shard
            worker; batches are composed of a shard's consecutive records,
            so the grouping is deterministic.
        on_event: optional progress callback (same events as the other
            executors; may fire from worker threads).
    """

    EXECUTOR_NAME = "sharded"

    def __init__(self, context: Optional[ExecutionContext] = None,
                 shards: Optional[int] = None,
                 strategy: str = SHARD_ROUND_ROBIN,
                 batch_size: int = 1, on_event=None):
        if shards is not None and shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if strategy not in SHARD_STRATEGIES:
            raise ValueError(
                f"unknown shard strategy {strategy!r}; "
                f"expected one of {SHARD_STRATEGIES}"
            )
        degree = shards or 2
        super().__init__(
            context=context or ExecutionContext(max_workers=degree),
            max_workers=degree, batch_size=batch_size, on_event=on_event,
        )
        self._requested_shards = shards
        self.shards = degree
        self.strategy = strategy

    def execute(self, plan: PhysicalPlan):
        if self._requested_shards is None and getattr(plan, "shards", 1) > 1:
            # Honor the degree the optimizer stamped onto the plan when the
            # caller did not pick one explicitly (mirrors batch_size).
            self.shards = plan.shards
        self.max_workers = self.shards
        return super().execute(plan)

    def _plan_span_attrs(self) -> dict:
        return {
            "shards": self.shards,
            "batch_size": self.batch_size,
            "strategy": self.strategy,
        }

    def _execute_concurrent(self, plan: PhysicalPlan,
                            meters: List[_PipeMeter]) -> List[DataRecord]:
        return self._execute_sharded(plan, meters)

    # -- plan segmentation -------------------------------------------------

    @staticmethod
    def _split(
        meters: List[_PipeMeter],
    ) -> Tuple[List[_PipeMeter], List[_PipeMeter]]:
        """Split downstream meters into shardable prefix and global suffix."""
        prefix: List[_PipeMeter] = []
        for index, meter in enumerate(meters):
            if not shard_safe(meter.op):
                return prefix, meters[index:]
            prefix.append(meter)
        return prefix, []

    @staticmethod
    def _decomposable_head(
        suffix: List[_PipeMeter],
    ) -> Optional[_PipeMeter]:
        """The first suffix op, if its fold can be paid shard-locally."""
        if not suffix:
            return None
        head = suffix[0]
        if head.op.is_blocking and head.op.accumulate_seconds is not None:
            return head
        return None

    # -- the scatter/gather run --------------------------------------------

    def _execute_sharded(self, plan: PhysicalPlan,
                         meters: List[_PipeMeter]) -> List[DataRecord]:
        scan_meter = meters[0]
        prefix, suffix = self._split(meters[1:])
        clock = self.context.clock
        tracer = self.context.tracer
        metrics = self.context.metrics
        shards = self.shards
        # Lane map: 0 = orchestrator (scan parses), 1..shards = one
        # dedicated thread per shard, shards+1 = gather/suffix.
        gather_lane = shards + 1
        clock.ensure_lanes(shards + 2)

        shard_spans: List = [None] * shards
        close_span = None
        gather_span = None
        if tracer.enabled:
            prefix_ops = "+".join(m.op.op_label for m in prefix) or "<forward>"
            suffix_ops = "+".join(m.op.op_label for m in suffix) or "<sink>"
            # Created on the orchestrator (under plan.run) so worker threads
            # can attach before any bundle flows; creation order fixes the
            # child order in the trace.
            for k in range(shards):
                shard_spans[k] = tracer.start_span(
                    "shard.worker", SpanKind.STAGE, clock=clock,
                    shard=k, shards=shards, ops=prefix_ops,
                    strategy=self.strategy,
                )
            close_span = tracer.start_span(
                "shard.close", SpanKind.STAGE, clock=clock, ops=prefix_ops,
            )
            gather_span = tracer.start_span(
                "shard.gather", SpanKind.STAGE, clock=clock, ops=suffix_ops,
                shards=shards,
            )

        depth = max(2, QUEUE_DEPTH_PER_WORKER * max(1, self.batch_size))
        shard_queues = [queue.Queue(maxsize=depth) for _ in range(shards)]
        gather_queue: "queue.Queue" = queue.Queue(
            maxsize=max(4, depth * shards)
        )
        run = _ShardRun(
            prefix, suffix, self._decomposable_head(suffix),
            gather_queue, close_span, shards,
        )

        sink: List[DataRecord] = []
        threads: List[threading.Thread] = []
        for k in range(shards):
            thread = threading.Thread(
                target=self._shard_worker,
                args=(run, k, shard_queues[k], shard_spans[k]),
                name=f"shard-w{k}", daemon=True,
            )
            thread.start()
            threads.append(thread)
        gather_thread = threading.Thread(
            target=self._gather_worker, args=(run, sink, gather_span),
            name="shard-gather", daemon=True,
        )
        gather_thread.start()
        threads.append(gather_thread)

        # Orchestrator: pull the scan on lane 0 and scatter by assignment.
        loads = [0.0] * shards
        per_shard = [0] * shards
        clock.use_lane(0)
        fed = 0
        try:
            for record in self._traced_scan(plan, scan_meter):
                if self.strategy == SHARD_BALANCED:
                    # Online greedy argmin by accumulated document tokens —
                    # the same function shard_assignment() computes offline.
                    shard = min(range(shards), key=lambda s: (loads[s], s))
                    loads[shard] += max(
                        0.0, float(count_tokens(record.document_text()))
                    )
                else:
                    shard = fed % shards
                self._put(shard_queues[shard], (fed, record))
                per_shard[shard] += 1
                fed += 1
                self._emit({
                    "type": "record_processed",
                    "index": scan_meter.stats.records_in,
                    "outputs_so_far": len(sink),
                    "elapsed_seconds": clock.elapsed,
                })
            for shard_queue in shard_queues:
                self._put(shard_queue, _Eos(fed))
        except _Aborted:
            pass
        except BaseException as exc:  # noqa: BLE001 - reported below
            self._fail(exc)

        for thread in threads:
            thread.join()
        if self._errors:
            raise self._errors[0]

        metrics.counter("shard.scatter.records").inc(fed)
        elapsed = clock.elapsed
        for k in range(shards):
            metrics.counter(f"shard.{k}.records").inc(per_shard[k])
            if shard_spans[k] is not None:
                shard_spans[k].set_attribute("records", per_shard[k])
                shard_spans[k].finish_at(elapsed)
        if close_span is not None:
            close_span.finish_at(elapsed)
        if gather_span is not None:
            gather_span.set_attribute(
                "records_out",
                suffix[-1].stats.records_out if suffix else len(sink),
            )
            gather_span.finish_at(elapsed)
        return sink

    # -- shard workers -----------------------------------------------------

    def _shard_worker(self, run: _ShardRun, shard: int,
                      in_queue: "queue.Queue", span) -> None:
        clock = self.context.clock
        clock.use_lane(1 + shard)
        batch: List[Tuple[int, DataRecord]] = []
        try:
            with self.context.tracer.attach(span):
                while True:
                    item = self._get(in_queue)
                    if isinstance(item, _Eos):
                        self._flush_shard_batch(run, batch)
                        with run.exit_lock:
                            run.exited += 1
                            run.total = item.count
                            last_out = run.exited == run.shards
                        if last_out:
                            self._close_prefix(run)
                        return
                    batch.append(item)
                    if len(batch) >= self.batch_size:
                        self._flush_shard_batch(run, batch)
        except _Aborted:
            pass
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            self._fail(exc)

    def _flush_shard_batch(self, run: _ShardRun,
                           batch: List[Tuple[int, DataRecord]]) -> None:
        """Process buffered records through the prefix; emit one bundle per
        input record so the gather's reorder buffer sees dense indices."""
        if not batch:
            return
        indices = [index for index, _ in batch]
        records = [record for _, record in batch]
        groups = self._shard_chain(run.prefix, indices, records)
        for index, outputs in zip(indices, groups):
            if run.decomp_meter is not None:
                for output in outputs:
                    run.decomp_meter.charge_accumulate(output)
            self._put(run.gather_queue, (index, outputs))
        batch.clear()

    def _shard_chain(self, prefix: List[_PipeMeter], indices: List[int],
                     records: List[DataRecord]) -> List[List[DataRecord]]:
        """Run records through the prefix, one output group per input."""
        tracer = self.context.tracer
        clock = self.context.clock
        if self.batch_size > 1 and prefix:
            if tracer.enabled:
                with tracer.span(
                    "shard.bundle", SpanKind.BUNDLE, clock=clock,
                    seq=indices[0], records=len(records),
                ) as span:
                    advanced_before = clock.local_advanced
                    groups = self._run_chain_batched_grouped(prefix, records)
                    span.finish_at(
                        span.start + (clock.local_advanced - advanced_before)
                    )
                return groups
            return self._run_chain_batched_grouped(prefix, records)
        groups: List[List[DataRecord]] = []
        for index, record in zip(indices, records):
            if tracer.enabled:
                with tracer.span(
                    "shard.bundle", SpanKind.BUNDLE, clock=clock,
                    seq=index, records=1,
                ) as span:
                    advanced_before = clock.local_advanced
                    outputs = self._run_chain(prefix, [record])
                    span.finish_at(
                        span.start + (clock.local_advanced - advanced_before)
                    )
            else:
                outputs = self._run_chain(prefix, [record])
            groups.append(outputs)
        return groups

    @staticmethod
    def _run_chain_batched_grouped(
        meters: List[_PipeMeter], records: Sequence[DataRecord]
    ) -> List[List[DataRecord]]:
        """Layer-batched processing that preserves per-input grouping."""
        groups: List[List[DataRecord]] = [[record] for record in records]
        for meter in meters:
            flat = [record for group in groups for record in group]
            if not flat:
                break
            batched = meter.process_batch(flat)
            regrouped: List[List[DataRecord]] = []
            cursor = 0
            for group in groups:
                merged: List[DataRecord] = []
                for _ in group:
                    merged.extend(batched[cursor])
                    cursor += 1
                regrouped.append(merged)
            groups = regrouped
        return groups

    def _close_prefix(self, run: _ShardRun) -> None:
        """Last shard worker out: close prefix ops and emit the final bundle.

        Runs on lane 1 (deterministic: every worker has stopped charging by
        now) under a dedicated span, so the trace layout does not depend on
        which thread happened to exit last.  Flushed records (outer joins'
        unmatched rows) get the sequence number after every mainline record —
        the same position a sequential flush gives them.
        """
        self.context.clock.use_lane(1)
        flushed_out: List[DataRecord] = []
        with self.context.tracer.attach(run.close_span):
            for index, meter in enumerate(run.prefix):
                flushed = meter.close()
                flushed_out.extend(
                    self._run_chain(run.prefix[index + 1:], flushed)
                )
            if run.decomp_meter is not None:
                for output in flushed_out:
                    run.decomp_meter.charge_accumulate(output)
        self._put(run.gather_queue, (run.total, flushed_out))
        self._put(run.gather_queue, _Eos(run.total + 1))

    # -- gather ------------------------------------------------------------

    def _gather_worker(self, run: _ShardRun, sink: List[DataRecord],
                       span) -> None:
        clock = self.context.clock
        clock.use_lane(run.shards + 1)
        buffer: dict = {}
        next_seq = 0
        try:
            with self.context.tracer.attach(span):
                while True:
                    item = self._get(run.gather_queue)
                    if isinstance(item, _Eos):
                        # EOS is enqueued by the closing worker after every
                        # shard stopped putting, so the buffer now holds all
                        # outstanding bundles; drain strictly in order.
                        for seq in sorted(buffer):
                            assert seq == next_seq, "sequence gap at gather"
                            self._gather_feed(
                                buffer[seq], sink, run.suffix,
                                run.decomp_meter,
                            )
                            next_seq += 1
                        buffer.clear()
                        self._gather_close(sink, run.suffix)
                        return
                    seq, records = item
                    buffer[seq] = records
                    while next_seq in buffer:
                        self._gather_feed(
                            buffer.pop(next_seq), sink, run.suffix,
                            run.decomp_meter,
                        )
                        next_seq += 1
        except _Aborted:
            pass
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            self._fail(exc)

    def _gather_feed(self, records: Sequence[DataRecord],
                     sink: List[DataRecord], suffix: List[_PipeMeter],
                     decomp_meter: Optional[_PipeMeter]) -> None:
        """Stream one bundle (already in global order) into the suffix."""
        if not records:
            return
        if decomp_meter is not None:
            # The fold charge was paid shard-locally; replay only the state
            # mutation here so group/parent order matches sequential.
            for record in records:
                decomp_meter.op.accumulate_silent(record)
            return
        if not suffix:
            sink.extend(records)
            return
        sink.extend(self._run_chain(suffix, records))

    def _gather_close(self, sink: List[DataRecord],
                      suffix: List[_PipeMeter]) -> None:
        """Close suffix ops in order, like the sequential flush."""
        for index, meter in enumerate(suffix):
            if meter.op.is_blocking:
                # Model every lane arriving at the barrier.
                self.context.clock.synchronize()
            flushed = meter.close()
            if flushed and meter.op.is_blocking:
                self._emit({
                    "type": "operator_flush",
                    "operator": meter.op.op_label,
                    "records": len(flushed),
                })
            sink.extend(self._run_chain(suffix[index + 1:], flushed))
