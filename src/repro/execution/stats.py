"""Execution statistics: per-operator, per-plan, and per-run accounting."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class OperatorStats:
    """Measured behaviour of one physical operator during a run."""

    op_label: str
    logical_describe: str
    records_in: int = 0
    records_out: int = 0
    time_seconds: float = 0.0
    cost_usd: float = 0.0
    llm_calls: int = 0
    input_tokens: int = 0
    output_tokens: int = 0
    #: Per-call float deltas behind ``time_seconds`` / ``cost_usd``.  Naive
    #: ``+=`` accumulation depends on summation order, and concurrent
    #: executors meter calls in thread-arrival order — so the same run can
    #: land on either side of a decimal rounding boundary.  ``finalize``
    #: re-reduces the parts with an order-independent exact sum so every
    #: executor reports the same float for the same multiset of calls.
    time_parts: List[float] = field(default_factory=list, repr=False,
                                    compare=False)
    cost_parts: List[float] = field(default_factory=list, repr=False,
                                    compare=False)

    def add_time(self, seconds: float) -> None:
        self.time_seconds += seconds
        self.time_parts.append(seconds)

    def add_cost(self, usd: float) -> None:
        self.cost_usd += usd
        self.cost_parts.append(usd)

    def finalize(self) -> None:
        """Replace the running float totals with order-independent sums."""
        if self.time_parts:
            self.time_seconds = math.fsum(self.time_parts)
        if self.cost_parts:
            self.cost_usd = math.fsum(self.cost_parts)

    @property
    def selectivity(self) -> float:
        """Output/input ratio (1.0 for an empty input)."""
        if self.records_in == 0:
            return 1.0
        return self.records_out / self.records_in

    def to_dict(self) -> Dict[str, Any]:
        return {
            "operator": self.op_label,
            "logical": self.logical_describe,
            "records_in": self.records_in,
            "records_out": self.records_out,
            "time_seconds": round(self.time_seconds, 3),
            "cost_usd": round(self.cost_usd, 6),
            "llm_calls": self.llm_calls,
            "input_tokens": self.input_tokens,
            "output_tokens": self.output_tokens,
        }


@dataclass
class ModelUsageRow:
    """Aggregated LLM usage for one model during a run."""

    model: str
    calls: int
    input_tokens: int
    output_tokens: int
    cost_usd: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "model": self.model,
            "calls": self.calls,
            "input_tokens": self.input_tokens,
            "output_tokens": self.output_tokens,
            "cost_usd": round(self.cost_usd, 6),
        }


@dataclass
class PlanStats:
    """Measured behaviour of one physical plan execution."""

    plan_id: str
    plan_describe: str
    operator_stats: List[OperatorStats] = field(default_factory=list)
    total_time_seconds: float = 0.0
    total_cost_usd: float = 0.0
    records_out: int = 0
    #: Output records failing schema validation (missing required fields or
    #: type-invalid values) — LLM extraction degrades, it doesn't crash, so
    #: validation problems are counted and reported rather than raised.
    invalid_records: int = 0
    model_usage: List[ModelUsageRow] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "plan_id": self.plan_id,
            "plan": self.plan_describe,
            "total_time_seconds": round(self.total_time_seconds, 3),
            "total_cost_usd": round(self.total_cost_usd, 6),
            "records_out": self.records_out,
            "invalid_records": self.invalid_records,
            "operators": [op.to_dict() for op in self.operator_stats],
            "models": [row.to_dict() for row in self.model_usage],
        }


@dataclass
class ExecutionStats:
    """Everything a run reports back to the user (the Fig. 5 payload).

    Includes the optimization preamble (policy, plan-space size, sentinel
    sampling cost) and the executed plan's statistics.
    """

    plan_stats: PlanStats
    policy: str = ""
    plans_considered: int = 0
    optimization_cost_usd: float = 0.0
    optimization_time_seconds: float = 0.0
    max_workers: int = 1
    #: Which executor ran the plan: "sequential", "parallel", "pipelined",
    #: "sharded", or "async".
    executor: str = "sequential"
    #: LLM-stage batch size the plan ran with (1 = per-record calls).
    batch_size: int = 1
    #: Shard count (parallelism degree) for the sharded/async executors;
    #: 1 for the single-chain executors.
    shards: int = 1
    #: CallCache activity during this run (deltas, since the cache may be
    #: shared across runs); zeros when no cache was attached.
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    #: Deterministic metric snapshot (MetricsRegistry.snapshot()).
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: The finalized Trace when the run was traced, else None.  Excluded
    #: from serialization/comparison — export it via repro.obs.export.
    trace: Optional[Any] = field(default=None, repr=False, compare=False)
    #: The canonical ProvenanceGraph when the run recorded provenance,
    #: else None.  Excluded from serialization/comparison — persist it
    #: via repro.obs.registry.RunRegistry.
    provenance: Optional[Any] = field(default=None, repr=False,
                                      compare=False)
    #: The SanitizerReport when the run was sanitized
    #: (``Execute(sanitize=True)``), else None.  Excluded from
    #: serialization/comparison like trace and provenance.
    sanitizer: Optional[Any] = field(default=None, repr=False,
                                     compare=False)
    #: Per-document source manifest payload (see
    #: :func:`repro.execution.incremental.build_source_manifest`) when the
    #: run captured one, else None.  Excluded from serialization and
    #: comparison — an incremental re-run must report byte-identical
    #: ``to_dict`` stats to the cold run it reproduces.
    source_manifest: Optional[Any] = field(default=None, repr=False,
                                           compare=False)
    #: The run's LLM call-log payload (``ReplayLog.to_payload()``) when
    #: calls were captured, else None.  Excluded like trace/provenance —
    #: persisted as ``calls.json`` by the RunRegistry.
    call_log: Optional[Any] = field(default=None, repr=False, compare=False)
    #: The IncrementalReport when the run executed incrementally against a
    #: base run, else None.  Excluded from serialization and comparison.
    incremental: Optional[Any] = field(default=None, repr=False,
                                       compare=False)

    @property
    def total_time_seconds(self) -> float:
        return (
            self.plan_stats.total_time_seconds
            + self.optimization_time_seconds
        )

    @property
    def total_cost_usd(self) -> float:
        return self.plan_stats.total_cost_usd + self.optimization_cost_usd

    @property
    def records_out(self) -> int:
        return self.plan_stats.records_out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "policy": self.policy,
            "plans_considered": self.plans_considered,
            "optimization_cost_usd": round(self.optimization_cost_usd, 6),
            "optimization_time_seconds": round(
                self.optimization_time_seconds, 3
            ),
            "max_workers": self.max_workers,
            "executor": self.executor,
            "batch_size": self.batch_size,
            "shards": self.shards,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
            "metrics": dict(self.metrics),
            "total_time_seconds": round(self.total_time_seconds, 3),
            "total_cost_usd": round(self.total_cost_usd, 6),
            "plan": self.plan_stats.to_dict(),
        }

    def summary(self) -> str:
        """Human-readable execution summary (what the chat displays)."""
        lines = [
            "=== Execution summary ===",
            f"policy:            {self.policy or '<none>'}",
            f"plans considered:  {self.plans_considered}",
            f"executed plan:     {self.plan_stats.plan_describe}",
            f"executor:          {self.executor} "
            f"(shards={self.shards}, batch_size={self.batch_size})",
            f"records produced:  {self.plan_stats.records_out}",
            f"total runtime:     {self.total_time_seconds:.1f} s",
            f"total cost:        ${self.total_cost_usd:.4f}",
        ]
        if self.cache_hits or self.cache_misses or self.cache_evictions:
            lines.append(
                f"call cache:        {self.cache_hits} hits / "
                f"{self.cache_misses} misses / "
                f"{self.cache_evictions} evictions"
            )
        lines.extend([
            "",
            "per-operator breakdown:",
        ])
        header = (
            f"  {'operator':<38} {'in':>5} {'out':>5} "
            f"{'time(s)':>9} {'cost($)':>9} {'calls':>6}"
        )
        lines.append(header)
        for op in self.plan_stats.operator_stats:
            lines.append(
                f"  {op.op_label:<38} {op.records_in:>5} {op.records_out:>5} "
                f"{op.time_seconds:>9.1f} {op.cost_usd:>9.4f} "
                f"{op.llm_calls:>6}"
            )
        if self.plan_stats.model_usage:
            lines.append("")
            lines.append("LLM invocations by model:")
            for row in self.plan_stats.model_usage:
                lines.append(
                    f"  {row.model:<28} {row.calls:>4} calls  "
                    f"{row.input_tokens:>8} in / {row.output_tokens:>6} out "
                    f"tokens  ${row.cost_usd:.4f}"
                )
        return "\n".join(lines)
