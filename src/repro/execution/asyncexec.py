"""Asyncio-based scale-out execution for high-fan-out LLM stages.

:class:`AsyncExecutor` keeps the sharded executor's scatter/gather
discipline — shardable prefix runs data-parallel, suffix runs post-gather in
global order — but replaces the per-shard worker *threads* with asyncio
tasks awaiting the client's coroutine API
(:meth:`SimulatedLLMClient.ajudge` / ``aextract`` / ``acomplete``), gathered
with bounded concurrency (a semaphore of ``fanout`` permits).  Each scanned
record becomes one task charging virtual lane ``1 + index % fanout``, so the
simulated makespan shows the same data-parallel speedup as the threaded
executor.

Determinism and accounting rest on one invariant: **no coroutine in the
simulated stack ever suspends**.  The client answers from a virtual clock,
so an ``await`` of ``ajudge`` runs the whole call — clock advance, ledger
entry, trace span — atomically on the event-loop thread.  Task bodies
therefore execute as indivisible units in task-creation (arrival) order,
which makes the thread-local lane/capture attribution inherited from the
pipelined machinery exact, with no context-variable migration.  A client
that really awaited the network would need context-local attribution and a
merge discipline for interleaved captures.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional

from repro.core.records import DataRecord
from repro.core.sources import SHARD_ROUND_ROBIN
from repro.execution.pipeline import _PipeMeter
from repro.execution.sharded import ShardedExecutor
from repro.obs.trace import SpanKind
from repro.physical.context import ExecutionContext
from repro.physical.plan import PhysicalPlan


class AsyncExecutor(ShardedExecutor):
    """Bounded-concurrency asyncio execution of the shardable prefix.

    Args:
        context: execution context; created with ``fanout`` lanes when
            omitted.
        fanout: maximum in-flight records (and virtual lanes).  ``None``
            honors the plan's optimizer-stamped ``shards``, falling back
            to 2.
        batch_size: accepted for interface symmetry; the async path always
            issues per-record calls (its concurrency replaces batching).
        on_event: optional progress callback.
    """

    EXECUTOR_NAME = "async"

    def __init__(self, context: Optional[ExecutionContext] = None,
                 fanout: Optional[int] = None, batch_size: int = 1,
                 on_event=None):
        super().__init__(
            context=context, shards=fanout, strategy=SHARD_ROUND_ROBIN,
            batch_size=batch_size, on_event=on_event,
        )

    @property
    def fanout(self) -> int:
        return self.shards

    def _execute_concurrent(self, plan: PhysicalPlan,
                            meters: List[_PipeMeter]) -> List[DataRecord]:
        loop = asyncio.new_event_loop()
        try:
            return loop.run_until_complete(self._drive(plan, meters))
        finally:
            loop.close()

    async def _drive(self, plan: PhysicalPlan,
                     meters: List[_PipeMeter]) -> List[DataRecord]:
        scan_meter = meters[0]
        prefix, suffix = self._split(meters[1:])
        decomp_meter = self._decomposable_head(suffix)
        clock = self.context.clock
        tracer = self.context.tracer
        fanout = self.shards
        gather_lane = fanout + 1
        clock.ensure_lanes(fanout + 2)

        lane_spans: List = [None] * fanout
        close_span = None
        gather_span = None
        if tracer.enabled:
            prefix_ops = "+".join(m.op.op_label for m in prefix) or "<forward>"
            suffix_ops = "+".join(m.op.op_label for m in suffix) or "<sink>"
            for k in range(fanout):
                lane_spans[k] = tracer.start_span(
                    "async.lane", SpanKind.STAGE, clock=clock,
                    lane=1 + k, fanout=fanout, ops=prefix_ops,
                )
            close_span = tracer.start_span(
                "shard.close", SpanKind.STAGE, clock=clock, ops=prefix_ops,
            )
            gather_span = tracer.start_span(
                "shard.gather", SpanKind.STAGE, clock=clock, ops=suffix_ops,
                shards=fanout,
            )

        semaphore = asyncio.Semaphore(fanout)
        results: Dict[int, List[DataRecord]] = {}
        tasks: List["asyncio.Task"] = []
        fed = 0
        clock.use_lane(0)
        try:
            for record in self._traced_scan(plan, scan_meter):
                if self._abort.is_set():
                    break
                index = fed
                fed += 1
                # Blocks once ``fanout`` tasks are in flight; the loop then
                # runs pending tasks (in creation order, each atomic) until
                # a permit frees up.
                await semaphore.acquire()
                tasks.append(asyncio.ensure_future(self._one_record(
                    index, record, prefix, decomp_meter, results,
                    semaphore, fanout, lane_spans,
                )))
                # Tasks that ran during the acquire switched the loop
                # thread's lane; the next scan pull must charge lane 0.
                clock.use_lane(0)
                self._emit({
                    "type": "record_processed",
                    "index": scan_meter.stats.records_in,
                    "outputs_so_far": len(results),
                    "elapsed_seconds": clock.elapsed,
                })
        except BaseException as exc:  # noqa: BLE001 - reported below
            self._fail(exc)
        if tasks:
            await asyncio.gather(*tasks)
        if self._errors:
            raise self._errors[0]

        # Prefix close on lane 1 (all tasks done; the lane time is final).
        clock.use_lane(1)
        flushed_out: List[DataRecord] = []
        with tracer.attach(close_span):
            for index, meter in enumerate(prefix):
                flushed = meter.close()
                flushed_out.extend(
                    self._run_chain(prefix[index + 1:], flushed)
                )
            if decomp_meter is not None:
                for output in flushed_out:
                    decomp_meter.charge_accumulate(output)
        results[fed] = flushed_out

        # Gather: stream bundles in global order, then close the suffix.
        sink: List[DataRecord] = []
        clock.use_lane(gather_lane)
        with tracer.attach(gather_span):
            for seq in range(fed + 1):
                self._gather_feed(
                    results.get(seq, []), sink, suffix, decomp_meter
                )
            self._gather_close(sink, suffix)

        elapsed = clock.elapsed
        for span in lane_spans:
            if span is not None:
                span.finish_at(elapsed)
        if close_span is not None:
            close_span.finish_at(elapsed)
        if gather_span is not None:
            gather_span.set_attribute(
                "records_out",
                suffix[-1].stats.records_out if suffix else len(sink),
            )
            gather_span.finish_at(elapsed)
        return sink

    async def _one_record(self, index: int, record: DataRecord,
                          prefix: List[_PipeMeter],
                          decomp_meter: Optional[_PipeMeter],
                          results: Dict[int, List[DataRecord]],
                          semaphore: "asyncio.Semaphore", fanout: int,
                          lane_spans: List) -> None:
        clock = self.context.clock
        tracer = self.context.tracer
        try:
            clock.use_lane(1 + index % fanout)
            with tracer.attach(lane_spans[index % fanout]):
                if tracer.enabled:
                    with tracer.span(
                        "async.bundle", SpanKind.BUNDLE, clock=clock,
                        seq=index, records=1,
                    ) as span:
                        advanced_before = clock.local_advanced
                        outputs = await self._achain(prefix, record)
                        span.finish_at(
                            span.start
                            + (clock.local_advanced - advanced_before)
                        )
                else:
                    outputs = await self._achain(prefix, record)
                if decomp_meter is not None:
                    for output in outputs:
                        decomp_meter.charge_accumulate(output)
            results[index] = outputs
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            self._fail(exc)
            results[index] = []
        finally:
            semaphore.release()

    @staticmethod
    async def _achain(meters: List[_PipeMeter],
                      record: DataRecord) -> List[DataRecord]:
        """Depth-first async twin of ``_run_chain`` for a single record."""
        sink: List[DataRecord] = []
        stack = [(record, 0)]
        while stack:
            current, index = stack.pop()
            if index >= len(meters):
                sink.append(current)
                continue
            outputs = await meters[index].aprocess(current)
            for output in reversed(outputs):
                stack.append((output, index + 1))
        return sink
