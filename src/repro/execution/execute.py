"""The ``Execute`` entry point (Fig. 6, line 28).

    records, execution_stats = Execute(dataset, policy=pz.MaxQuality())
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.core.dataset import Dataset
from repro.core.records import DataRecord
from repro.execution.asyncexec import AsyncExecutor
from repro.execution.executors import ParallelExecutor, SequentialExecutor
from repro.execution.incremental import (
    IncrementalReport,
    build_source_manifest,
    delta_impact,
    diff_manifests,
)
from repro.execution.pipeline import PipelinedExecutor
from repro.execution.sharded import ShardedExecutor
from repro.execution.stats import ExecutionStats
from repro.llm.models import ModelRegistry
from repro.llm.replay import ReplayLog
from repro.obs.provenance import NULL_PROVENANCE, ProvenanceRecorder
from repro.obs.trace import NULL_TRACER, Tracer
from repro.optimizer.cost_model import CostModel
from repro.optimizer.optimizer import OptimizationReport, Optimizer
from repro.optimizer.policies import MaxQuality, Policy, parse_policy
from repro.physical.context import ExecutionContext


class ExecutionEngine:
    """Reusable engine configuration: optimize then execute.

    Args:
        policy: optimization preference (name string or Policy instance).
        max_workers: record-level parallelism for LLM operators.
        sample_size: sentinel sample size for the optimizer (0 = naive
            estimates only).
        models: model registry for both plan space and execution.
        lint: run plan lint before optimizing; error-level findings raise
            :class:`~repro.analysis.LintError` instead of executing.
        executor: which executor runs the chosen plan — "sequential",
            "parallel", "pipelined" (real worker threads with bounded
            queues), "sharded" (scatter/gather over deterministic source
            shards), or "async" (asyncio fan-out over the client's
            coroutine API).  ``None`` keeps the historical inference:
            parallel when ``max_workers > 1``, sequential otherwise.
        batch_size: LLM-stage batch size for the pipelined/sharded
            executors; the cost model amortizes per-call overhead
            accordingly.  Ignored (beyond costing) by the other executors,
            which call per record.
        shards: parallelism degree for the "sharded"/"async" executors.
            ``None`` (default) lets the optimizer enumerate degrees and
            *choose* one with the cost model; an integer pins it.
        trace: observability.  ``False`` (default) disables tracing at zero
            cost; ``True`` records the run with a fresh
            :class:`~repro.obs.Tracer`; an existing ``Tracer`` instance
            records into it.  The finalized trace is attached to
            ``ExecutionStats.trace``.  Tracing never changes records,
            stats, or LLM call counts.
        provenance: record-level provenance.  ``False`` (default)
            disables it at zero cost; ``True`` records every derivation
            and drop with a fresh
            :class:`~repro.obs.provenance.ProvenanceRecorder`; an
            existing recorder instance records into it.  The canonical
            :class:`~repro.obs.provenance.ProvenanceGraph` is attached
            to ``ExecutionStats.provenance`` (query it with
            ``why``/``why_not``, persist it with
            :class:`~repro.obs.registry.RunRegistry`).  Like tracing, it
            never changes records, stats, or LLM call counts.
        capture_calls: record the run's source manifest and LLM call log
            onto the stats (``stats.source_manifest`` / ``stats.call_log``)
            so the RunRegistry can persist them — the base a later
            incremental re-run diffs against and replays from.
        incremental: re-run against ``base_run``: diff the live source
            against the base run's manifest, let the cost model price
            replay-vs-cold, and (in replay mode) serve unchanged
            documents' LLM calls from the base call log.  Records, stats,
            traces, and provenance stay byte-identical to a cold run; the
            :class:`~repro.execution.incremental.IncrementalReport` on
            ``stats.incremental`` carries the fresh-vs-reused bill.
            Implies ``capture_calls``.
        base_run: the base for an incremental run — a
            :class:`~repro.obs.registry.RunSnapshot`, a run id string
            resolved against ``runs_dir``, or ``None`` for the most
            recent run in ``runs_dir``.
        runs_dir: registry directory run-id strings resolve against
            (default ``.repro/runs``).
        budget: a shared :class:`~repro.llm.usage.BudgetMeter` (e.g. a
            tenant's quota) charged for every LLM call of the run.  A
            call that pushes the spend strictly over a cap is recorded
            first, then aborts the run with
            :class:`~repro.llm.usage.QuotaExceededError` (partial usage
            stays accounted); executors additionally poll a cooperative
            checkpoint between operators so a budget exhausted by a
            concurrent run aborts this one too.  Optimizer sentinel runs
            never charge the budget.
        on_event: progress callback receiving executor event dicts
            (``plan_start`` / ``record_processed`` / ``operator_flush`` /
            ``plan_end``) as the run advances.  Honored by the
            sequential/parallel executors; the threaded and scale-out
            executors ignore it (their progress is recoverable from the
            trace).
        sanitize: run the plan under the lock sanitizer
            (:mod:`repro.analysis.sanitizer`): every lock created during
            the run is observed, the cross-thread lock-order graph is
            recorded, and guarded-attribute writes are checked against
            the ``_GUARDED_BY`` declarations.  The
            :class:`~repro.analysis.sanitizer.SanitizerReport` is
            attached to ``ExecutionStats.sanitizer``.  Observation only:
            sanitized runs produce byte-identical records/stats/traces.
        candidate_options: plan-space ablation switches (forwarded to the
            optimizer).
    """

    EXECUTORS = ("sequential", "parallel", "pipelined", "sharded", "async")
    #: Executors that scatter the shardable prefix over source shards.
    SCALE_OUT_EXECUTORS = ("sharded", "async")

    def __init__(
        self,
        policy: Union[Policy, str, None] = None,
        max_workers: int = 1,
        sample_size: int = 0,
        models: Optional[ModelRegistry] = None,
        cache=None,
        lint: bool = True,
        executor: Optional[str] = None,
        batch_size: int = 1,
        shards: Optional[int] = None,
        trace: Union[bool, Tracer] = False,
        provenance: Union[bool, ProvenanceRecorder] = False,
        sanitize: bool = False,
        capture_calls: bool = False,
        incremental: bool = False,
        base_run=None,
        runs_dir: Optional[str] = None,
        budget=None,
        on_event=None,
        telemetry=None,
        **candidate_options,
    ):
        if policy is None:
            policy = MaxQuality()
        elif isinstance(policy, str):
            policy = parse_policy(policy)
        if executor is not None and executor not in self.EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; "
                f"expected one of {', '.join(self.EXECUTORS)}"
            )
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if shards is not None:
            if shards < 1:
                raise ValueError(f"shards must be >= 1, got {shards}")
            if executor not in self.SCALE_OUT_EXECUTORS:
                raise ValueError(
                    "shards only applies to the "
                    f"{' / '.join(self.SCALE_OUT_EXECUTORS)} executors; "
                    f"got executor={executor!r}"
                )
        self.shards = shards
        self.policy = policy
        self.max_workers = max_workers
        self.sample_size = sample_size
        self.models = models
        self.cache = cache
        self.lint = lint
        self.executor = executor
        self.batch_size = batch_size
        self.trace = trace
        self.provenance = provenance
        self.sanitize = sanitize
        self.capture_calls = capture_calls or incremental
        self.incremental = incremental
        self.base_run = base_run
        self.runs_dir = runs_dir
        self.budget = budget
        self.on_event = on_event
        #: Optional wall-clock ops hook (duck-typed
        #: :class:`~repro.obs.telemetry.Telemetry`).  Observation only:
        #: it times optimize/execute phases and logs an ``engine_run``
        #: event, and must never influence records/stats/traces —
        #: telemetry-on runs are byte-identical to telemetry-off runs.
        self.telemetry = telemetry
        self.candidate_options = candidate_options

    def _phase(self, name: str):
        """Telemetry phase timer; free (no-op context) when unhooked."""
        if self.telemetry is None:
            from contextlib import nullcontext

            return nullcontext()
        return self.telemetry.phase(name)

    def _make_tracer(self):
        """(tracer, traced?) for one run, honoring the ``trace`` setting."""
        if isinstance(self.trace, Tracer):
            return self.trace, True
        if self.trace:
            return Tracer(), True
        return NULL_TRACER, False

    def _make_provenance(self):
        """(recorder, recording?) honoring the ``provenance`` setting."""
        if isinstance(self.provenance, ProvenanceRecorder):
            return self.provenance, True
        if self.provenance:
            return ProvenanceRecorder(), True
        return NULL_PROVENANCE, False

    def _executor_name(self) -> str:
        if self.executor is not None:
            return self.executor
        return "parallel" if self.max_workers > 1 else "sequential"

    def optimize(self, dataset: Dataset,
                 tracer=None) -> OptimizationReport:
        name = self._executor_name()
        optimizer = Optimizer(
            policy=self.policy,
            max_workers=self.max_workers,
            sample_size=self.sample_size,
            models=self.models,
            lint=self.lint,
            batch_size=(
                self.batch_size
                if name in ("pipelined",) + self.SCALE_OUT_EXECUTORS
                else 1
            ),
            executor=name,
            shards=self.shards,
            tracer=tracer,
            **self.candidate_options,
        )
        return optimizer.optimize(dataset.logical_plan(), dataset.source)

    def explain(self, dataset: Dataset) -> str:
        """EXPLAIN-style report: the plan space, the Pareto frontier, and
        the policy's choice — without executing anything."""
        report = self.optimize(dataset)
        frontier = sorted(
            report.frontier(), key=lambda c: c.estimate.cost_usd
        )
        lines = [
            f"logical plan:     {dataset.logical_plan().describe()}",
            f"policy:           {report.policy.describe()}",
            f"plans enumerated: {report.plans_considered}",
            f"pareto frontier:  {len(frontier)} plans",
            "",
            f"{'est.cost($)':>12} {'est.time(s)':>12} {'est.quality':>12}  plan",
        ]
        for candidate in frontier:
            estimate = candidate.estimate
            marker = " *" if candidate is report.chosen else "  "
            lines.append(
                f"{estimate.cost_usd:>12.4f} {estimate.time_seconds:>12.1f} "
                f"{estimate.quality:>12.3f}{marker}"
                f"{candidate.plan.describe()}"
            )
        lines.append("")
        lines.append(f"chosen: {report.chosen.plan.describe()}")
        return "\n".join(lines)

    def execute(
        self, dataset: Dataset
    ) -> Tuple[List[DataRecord], ExecutionStats]:
        if self.sanitize:
            # Open the window before the context exists so the run's own
            # locks (clock, ledger, meters, stages) are created wrapped.
            from repro.analysis.sanitizer import sanitize as sanitize_ctx

            with sanitize_ctx() as report:
                records, stats = self._execute(dataset)
            stats.sanitizer = report
            return records, stats
        return self._execute(dataset)

    def _resolve_base_snapshot(self):
        """The base RunSnapshot an incremental run diffs against."""
        from repro.obs.registry import (
            DEFAULT_RUNS_DIR, RunRegistry, RunSnapshot,
        )

        if isinstance(self.base_run, RunSnapshot):
            return self.base_run
        registry = RunRegistry(self.runs_dir or DEFAULT_RUNS_DIR)
        run_id = self.base_run
        if run_id is None:
            run_id = registry.latest()
            if run_id is None:
                raise ValueError(
                    "incremental execution needs a base run, but "
                    f"{registry.root} holds no recorded runs; "
                    "record one first (capture_calls=True + "
                    "RunRegistry.record) or pass base_run="
                )
        return registry.load(str(run_id))

    def _execute(
        self, dataset: Dataset
    ) -> Tuple[List[DataRecord], ExecutionStats]:
        tracer, traced = self._make_tracer()
        recorder, recording = self._make_provenance()
        with self._phase("engine.optimize"):
            report = self.optimize(dataset, tracer=tracer)
        replay_log = None
        live_manifest = None
        incremental_plan = None  # (base snapshot, delta, pricing, mode)
        if self.capture_calls:
            live_manifest = build_source_manifest(dataset.source)
        if self.incremental:
            snapshot = self._resolve_base_snapshot()
            delta = diff_manifests(snapshot.manifest, live_manifest)
            base_docs = len((snapshot.manifest or {}).get("entries", []))
            calls_per_doc = (
                snapshot.meta.get("llm_calls", 0) / base_docs
                if base_docs else 1.0
            )
            pricing = CostModel.price_incremental(
                report.chosen.estimate,
                total_docs=delta.total_live,
                fresh_docs=delta.fresh_docs,
                calls_per_doc=calls_per_doc,
            )
            # Replaying never changes the chosen plan — only who pays for
            # which call — so the mode decision cannot affect the output.
            mode = (
                "replay" if pricing.use_incremental and snapshot.calls
                else "cold"
            )
            replay_log = (
                ReplayLog.from_payload(snapshot.calls)
                if mode == "replay" else ReplayLog()
            )
            incremental_plan = (snapshot, delta, pricing, mode)
        elif self.capture_calls:
            replay_log = ReplayLog()
        context = ExecutionContext(
            max_workers=self.max_workers,
            models=self.models,
            cache=self.cache,
            tracer=tracer,
            provenance=recorder,
            replay=replay_log,
            budget=self.budget,
        )
        if traced and tracer.default_clock is None:
            # Optimizer spans were recorded clockless (optimization is free
            # in virtual time); execution spans follow the run's clock.
            tracer.default_clock = context.clock
        cache_before = (
            (self.cache.stats.hits, self.cache.stats.misses,
             self.cache.stats.evictions)
            if self.cache is not None else (0, 0, 0)
        )
        name = self._executor_name()
        chosen_plan = report.chosen.plan
        plan_shards = max(1, getattr(chosen_plan, "shards", 1))
        if name == "pipelined":
            executor = PipelinedExecutor(
                context,
                max_workers=self.max_workers,
                batch_size=self.batch_size,
            )
        elif name == "sharded":
            executor = ShardedExecutor(
                context, shards=plan_shards, batch_size=self.batch_size
            )
        elif name == "async":
            executor = AsyncExecutor(
                context, fanout=plan_shards, batch_size=self.batch_size
            )
        elif name == "parallel":
            executor = ParallelExecutor(
                context, max_workers=self.max_workers,
                on_event=self.on_event,
            )
        else:
            executor = SequentialExecutor(context, on_event=self.on_event)
        with self._phase("engine.execute"):
            records, plan_stats = executor.execute(chosen_plan)
        if self.telemetry is not None:
            self.telemetry.event(
                "engine_run", executor=name,
                records=len(records), shards=plan_shards,
            )
        if self.cache is not None:
            cache_hits = self.cache.stats.hits - cache_before[0]
            cache_misses = self.cache.stats.misses - cache_before[1]
            cache_evictions = self.cache.stats.evictions - cache_before[2]
        else:
            cache_hits = cache_misses = cache_evictions = 0
        context.metrics.counter("llm.cache_hits").inc(cache_hits)
        context.metrics.counter("llm.cache_misses").inc(cache_misses)
        stats = ExecutionStats(
            plan_stats=plan_stats,
            policy=report.policy.describe(),
            plans_considered=report.plans_considered,
            optimization_cost_usd=report.sentinel_cost_usd,
            optimization_time_seconds=report.sentinel_time_seconds,
            max_workers=self.max_workers,
            executor=name,
            batch_size=(
                self.batch_size
                if name in ("pipelined",) + self.SCALE_OUT_EXECUTORS
                else 1
            ),
            shards=plan_shards if name in self.SCALE_OUT_EXECUTORS else 1,
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            cache_evictions=cache_evictions,
            metrics=context.metrics.snapshot(),
            trace=tracer.finish() if traced else None,
            provenance=recorder.finalize(records) if recording else None,
        )
        if replay_log is not None:
            stats.source_manifest = live_manifest
            stats.call_log = replay_log.to_payload()
        if incremental_plan is not None:
            snapshot, delta, pricing, mode = incremental_plan
            reused = replay_log.reused_summary()
            totals = context.ledger.total()
            stats.incremental = IncrementalReport(
                base_run_id=snapshot.run_id,
                mode=mode,
                delta=delta,
                impact=delta_impact(
                    snapshot.graph, delta, snapshot.manifest or {}
                ),
                replayed_calls=reused.calls,
                fresh_calls=totals.calls - reused.calls,
                reused_cost_usd=reused.cost_usd,
                reused_llm_seconds=reused.seconds,
                fresh_cost_usd=totals.cost_usd - reused.cost_usd,
                fresh_llm_seconds=totals.latency_seconds - reused.seconds,
                pricing=pricing,
            )
        return records, stats


def Execute(
    dataset: Dataset,
    policy: Union[Policy, str, None] = None,
    max_workers: int = 1,
    sample_size: int = 0,
    models: Optional[ModelRegistry] = None,
    cache=None,
    lint: bool = True,
    executor: Optional[str] = None,
    batch_size: int = 1,
    shards: Optional[int] = None,
    trace: Union[bool, Tracer] = False,
    provenance: Union[bool, ProvenanceRecorder] = False,
    sanitize: bool = False,
    capture_calls: bool = False,
    incremental: bool = False,
    base_run=None,
    runs_dir: Optional[str] = None,
    budget=None,
    on_event=None,
    telemetry=None,
    **candidate_options,
) -> Tuple[List[DataRecord], ExecutionStats]:
    """Optimize and execute ``dataset``'s pipeline; return (records, stats).

    This is the public one-shot API::

        records, stats = Execute(dataset, policy=MaxQuality())
        print(stats.summary())

    Pass ``executor="pipelined"`` (optionally with ``batch_size``) to run
    the plan on the thread-pipelined executor::

        records, stats = Execute(
            dataset, executor="pipelined", max_workers=4, batch_size=8
        )

    Pass ``executor="sharded"`` (or ``"async"``) to scatter the plan over
    deterministic source shards; omit ``shards`` to let the optimizer
    choose the degree, or pin it explicitly::

        records, stats = Execute(dataset, executor="sharded")          # chosen
        records, stats = Execute(dataset, executor="sharded", shards=4)  # pinned

    Pass ``trace=True`` to record an execution trace (``stats.trace``)::

        records, stats = Execute(dataset, trace=True)
        print(repro.obs.render_tree(stats.trace))

    Pass ``provenance=True`` to record record-level provenance
    (``stats.provenance``)::

        records, stats = Execute(dataset, provenance=True)
        print(repro.obs.render_why(
            stats.provenance.why(stats.provenance.output_ids[0])))

    Pass ``sanitize=True`` to run under the lock sanitizer
    (``stats.sanitizer`` carries the report)::

        records, stats = Execute(dataset, executor="pipelined",
                                 max_workers=4, sanitize=True)
        assert stats.sanitizer.ok()

    Pass ``capture_calls=True`` to record the source manifest and LLM
    call log onto the stats (persisted by ``RunRegistry.record``), then
    ``incremental=True`` to re-run against that base after the corpus
    drifts — unchanged documents replay from the base call log and only
    the delta is paid for, with byte-identical output::

        records, stats = Execute(dataset, provenance=True,
                                 capture_calls=True)
        base = RunRegistry(runs_dir).record(records, stats)
        # ... corpus drifts ...
        records2, stats2 = Execute(dataset, provenance=True,
                                   incremental=True, base_run=base)
        print(stats2.incremental.render())
    """
    engine = ExecutionEngine(
        policy=policy,
        max_workers=max_workers,
        sample_size=sample_size,
        models=models,
        cache=cache,
        lint=lint,
        executor=executor,
        batch_size=batch_size,
        shards=shards,
        trace=trace,
        provenance=provenance,
        sanitize=sanitize,
        capture_calls=capture_calls,
        incremental=incremental,
        base_run=base_run,
        runs_dir=runs_dir,
        budget=budget,
        on_event=on_event,
        telemetry=telemetry,
        **candidate_options,
    )
    return engine.execute(dataset)
