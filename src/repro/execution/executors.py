"""Plan executors.

Both executors process records depth-first through the operator chain,
splitting at blocking operators (aggregates, group-by, retrieve).  The
parallel executor assigns each source record's journey to the least-busy
virtual-clock lane, modelling ``max_workers`` concurrent LLM calls; lanes
synchronize at blocking-operator barriers, exactly like a thread pool with a
stage barrier would.

Early termination: when a ``LimitOp`` with no blocking operator upstream is
exhausted, the executor stops pulling source records — limits genuinely save
LLM calls.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.records import DataRecord
from repro.execution.stats import ModelUsageRow, OperatorStats, PlanStats
from repro.obs.trace import SpanKind
from repro.physical.base import PhysicalOperator
from repro.physical.context import ExecutionContext
from repro.physical.plan import PhysicalPlan
from repro.physical.structural import LimitOp


def _fill_run_metrics(
    context: ExecutionContext,
    op_stats: List[OperatorStats],
    sink: List[DataRecord],
) -> None:
    """Populate the context's MetricsRegistry from the finished run.

    Every value here is a deterministic function of the plan and input —
    computed once at run end from the same OperatorStats / ledger the
    stats report, never sampled in the hot path — so the snapshot that
    lands in ``ExecutionStats.metrics`` is identical traced or untraced,
    at any worker count.
    """
    metrics = context.metrics
    ledger_total = context.ledger.total()
    metrics.counter("llm.calls").inc(len(context.ledger))
    metrics.counter("llm.input_tokens").inc(ledger_total.input_tokens)
    metrics.counter("llm.output_tokens").inc(ledger_total.output_tokens)
    # Per-call distributions.  Cost and token counts are batch-invariant
    # (identical per-record or batched); latency is not, so no latency
    # histogram — it would differ between batch sizes.
    cost_hist = metrics.histogram("llm.call_cost_usd")
    in_hist = metrics.histogram("llm.call_input_tokens")
    out_hist = metrics.histogram("llm.call_output_tokens")
    for usage in context.ledger.records:
        cost_hist.observe(usage.cost_usd)
        in_hist.observe(usage.input_tokens)
        out_hist.observe(usage.output_tokens)
    metrics.counter("run.records_out").inc(len(sink))
    metrics.gauge("run.elapsed_seconds").set(round(context.clock.elapsed, 9))
    for index, stats in enumerate(op_stats):
        prefix = f"op.{index}.{stats.op_label}"
        metrics.counter(f"{prefix}.records_in").inc(stats.records_in)
        metrics.counter(f"{prefix}.records_out").inc(stats.records_out)
        metrics.counter(f"{prefix}.llm_calls").inc(stats.llm_calls)
        metrics.gauge(f"{prefix}.busy_seconds").set(
            round(stats.time_seconds, 9)
        )


def build_plan_stats(
    plan: PhysicalPlan,
    op_stats: List[OperatorStats],
    context: ExecutionContext,
    sink: List[DataRecord],
) -> PlanStats:
    """Assemble the :class:`PlanStats` for a finished run.

    Shared by every executor so their reports are structurally identical.
    Scan parse time is charged to the clock inside ``records()`` where no
    meter wraps it, so the scan's time line is the residual
    ``total_busy - sum(downstream op times)`` — computed *before* the
    PlanStats object is built, so per-op times already sum to the clock's
    busy time in the stats a caller receives.
    """
    for stats in op_stats:
        # Canonicalize float totals before anything reads them: concurrent
        # meters accumulated time/cost in thread-arrival order, which is
        # nondeterministic at the last ulp.
        stats.finalize()
    scan_stats, downstream_stats = op_stats[0], op_stats[1:]
    accounted = sum(stats.time_seconds for stats in downstream_stats)
    scan_stats.time_seconds = max(0.0, context.clock.total_busy - accounted)
    _fill_run_metrics(context, op_stats, sink)
    invalid = sum(
        1
        for record in sink
        if record.missing_required()
        or any(
            not field.validate(record.get(name))
            for name, field in record.schema.field_map().items()
        )
    )
    model_usage = [
        ModelUsageRow(
            model=model,
            calls=totals.calls,
            input_tokens=totals.input_tokens,
            output_tokens=totals.output_tokens,
            cost_usd=totals.cost_usd,
        )
        for model, totals in sorted(context.ledger.by_model().items())
    ]
    return PlanStats(
        plan_id=plan.plan_id,
        plan_describe=plan.describe(),
        operator_stats=op_stats,
        total_time_seconds=context.clock.elapsed,
        total_cost_usd=context.ledger.total().cost_usd,
        records_out=len(sink),
        invalid_records=invalid,
        model_usage=model_usage,
    )


class _OpMeter:
    """Wraps one operator's stats accumulation for a run.

    When tracing is on, every metered call also becomes an ``op.*`` span:
    the span's duration is *pinned* to the same ``total_busy`` delta the
    stats accumulate, so per-op span durations sum exactly to
    ``OperatorStats.time_seconds`` — LLM leaf spans created inside the
    call nest under it automatically.
    """

    def __init__(self, op: PhysicalOperator, context: ExecutionContext):
        self.op = op
        self.context = context
        self.stats = OperatorStats(
            op_label=op.op_label,
            logical_describe=op.logical_op.describe(),
        )

    def open(self) -> None:
        """Open the operator, attributing any setup work (e.g. a join's
        right-side materialization) to this operator's stats.  Opening
        produces no records, so only time/cost are metered."""
        self._metered(
            lambda: self.op.open(self.context) or [],
            inputs=0, count_outputs=False, span_name="op.open",
        )

    def process(self, record: DataRecord) -> List[DataRecord]:
        outputs, _ = self._metered(lambda: self.op.process(record), inputs=1)
        return outputs

    def close(self) -> List[DataRecord]:
        outputs, _ = self._metered(self.op.close, inputs=0,
                                   span_name="op.close")
        return outputs

    def _metered(self, fn, inputs: int, count_outputs: bool = True,
                 span_name: str = "op.process",
                 ) -> Tuple[List[DataRecord], float]:
        ledger = self.context.ledger
        clock = self.context.clock
        tracer = self.context.tracer
        busy_before = clock.total_busy
        calls_before = len(ledger)
        if tracer.enabled:
            with tracer.span(span_name, SpanKind.OPERATOR, clock=clock,
                             op=self.op.op_label) as span:
                outputs = fn()
                busy_delta = clock.total_busy - busy_before
                span.finish_at(span.start + busy_delta)
                span.set_attribute("records_in", inputs)
                if count_outputs:
                    span.set_attribute("records_out", len(outputs))
        else:
            outputs = fn()
            busy_delta = clock.total_busy - busy_before
        new_usages = ledger.records[calls_before:]

        self.stats.records_in += inputs
        if count_outputs:
            self.stats.records_out += len(outputs)
        self.stats.add_time(busy_delta)
        self.stats.llm_calls += len(new_usages)
        for usage in new_usages:
            self.stats.add_cost(usage.cost_usd)
            self.stats.input_tokens += usage.input_tokens
            self.stats.output_tokens += usage.output_tokens
        return outputs, busy_delta


class SequentialExecutor:
    """Single-worker depth-first execution.

    ``on_event`` (optional) receives progress dictionaries as the run
    advances: ``plan_start``, ``record_processed`` (one per source record,
    with the running output count), ``operator_flush`` (blocking operators
    emitting), and ``plan_end`` — the hook a UI like the demo's Fig. 5
    progress panel would subscribe to.
    """

    def __init__(self, context: Optional[ExecutionContext] = None,
                 on_event=None):
        self.context = context or ExecutionContext(max_workers=1)
        self._on_event = on_event

    def _emit(self, event: dict) -> None:
        if self._on_event is not None:
            self._on_event(event)

    # -- helpers shared with the parallel executor -----------------------

    def _prepare(self, plan: PhysicalPlan) -> List[_OpMeter]:
        meters = []
        for op in plan:
            meter = _OpMeter(op, self.context)
            meter.open()
            meters.append(meter)
        return meters

    @staticmethod
    def _early_stop(plan: PhysicalPlan) -> Optional[LimitOp]:
        """The first LimitOp with only streaming operators upstream."""
        for op in plan.downstream:
            if op.is_blocking:
                return None
            if isinstance(op, LimitOp):
                return op
        return None

    def _push(
        self,
        record: DataRecord,
        meters: List[_OpMeter],
        start: int,
        sink: List[DataRecord],
    ) -> None:
        """Send one record through meters[start:], depth-first.

        Blocking operators swallow records here; their buffered output is
        flushed by :meth:`_flush` once the upstream segment is drained.

        Depth-first order is kept with an explicit work stack rather than
        recursion: a chain of high-fanout operators (one-to-many converts,
        joins) multiplies the depth, and Python's recursion limit must not
        bound plan depth times fanout.
        """
        stack: List[Tuple[DataRecord, int]] = [(record, start)]
        while stack:
            current, index = stack.pop()
            if index >= len(meters):
                sink.append(current)
                continue
            # Cooperative quota-abort point: a shared budget breached by
            # a concurrent run stops this one between operators, before
            # the next operator spends anything.
            self.context.checkpoint()
            outputs = meters[index].process(current)
            # Reversed so outputs are visited in their emitted order,
            # matching what the recursive formulation produced.
            for output in reversed(outputs):
                stack.append((output, index + 1))

    def _flush(self, meters: List[_OpMeter], sink: List[DataRecord]) -> None:
        """Close operators in order, pushing flushed records downstream."""
        for index, meter in enumerate(meters):
            self._on_barrier(meter)
            self.context.checkpoint()
            flushed = meter.close()
            if flushed and meter.op.is_blocking:
                self._emit({
                    "type": "operator_flush",
                    "operator": meter.op.op_label,
                    "records": len(flushed),
                })
            for output in flushed:
                self._push(output, meters, index + 1, sink)

    def _on_barrier(self, meter: _OpMeter) -> None:
        """Hook: parallel executor synchronizes lanes at blocking ops."""

    def _assign_lane(self) -> None:
        """Hook: parallel executor picks a clock lane per source record."""

    def execute(self, plan: PhysicalPlan) -> Tuple[List[DataRecord], PlanStats]:
        self._emit({
            "type": "plan_start",
            "plan_id": plan.plan_id,
            "plan": plan.describe(),
            "operators": len(plan),
        })
        tracer = self.context.tracer
        clock = self.context.clock
        self.context.provenance.begin_plan(plan)
        with tracer.span(
            "plan.run", SpanKind.PLAN, clock=clock,
            plan_id=plan.plan_id, executor=self._trace_executor_name(),
            workers=self.context.max_workers,
        ) as plan_span:
            meters = self._prepare(plan)
            scan_meter, downstream = meters[0], meters[1:]
            scan_label = scan_meter.op.op_label
            stop_limit = self._early_stop(plan)
            sink: List[DataRecord] = []

            source_iter = plan.scan.records()
            while True:
                # Pick the lane *before* pulling, so the parse time charged
                # inside records() lands on the worker that handles the
                # record.
                self._assign_lane()
                if tracer.enabled:
                    scan_start = clock.now
                    scan_lane = clock.current_lane
                    busy_before = clock.total_busy
                try:
                    record = next(source_iter)
                except StopIteration:
                    break
                self.context.provenance.source(record)
                if tracer.enabled:
                    tracer.record(
                        "op.scan", SpanKind.OPERATOR, scan_start,
                        scan_start + (clock.total_busy - busy_before),
                        scan_lane, op=scan_label,
                        records_in=1, records_out=1,
                    )
                scan_meter.stats.records_in += 1
                scan_meter.stats.records_out += 1
                self._push(record, downstream, 0, sink)
                self._emit({
                    "type": "record_processed",
                    "index": scan_meter.stats.records_in,
                    "outputs_so_far": len(sink),
                    "elapsed_seconds": clock.elapsed,
                })
                if stop_limit is not None and stop_limit.exhausted:
                    break
            self._flush(downstream, sink)
            plan_span.finish_at(clock.elapsed)

        plan_stats = build_plan_stats(
            plan, [m.stats for m in meters], self.context, sink
        )
        self._emit({
            "type": "plan_end",
            "records_out": len(sink),
            "elapsed_seconds": self.context.clock.elapsed,
            "cost_usd": plan_stats.total_cost_usd,
        })
        return sink, plan_stats

    def _trace_executor_name(self) -> str:
        return "sequential"


class ParallelExecutor(SequentialExecutor):
    """Record-parallel execution across ``max_workers`` clock lanes."""

    def __init__(self, context: Optional[ExecutionContext] = None,
                 max_workers: int = 4, on_event=None):
        if context is None:
            context = ExecutionContext(max_workers=max_workers)
        if context.clock.lanes < context.max_workers:
            raise ValueError(
                "context clock must have at least max_workers lanes"
            )
        super().__init__(context, on_event=on_event)

    def _assign_lane(self) -> None:
        self.context.clock.pick_least_busy_lane()

    def _on_barrier(self, meter: _OpMeter) -> None:
        if meter.op.is_blocking:
            self.context.clock.synchronize()

    def _trace_executor_name(self) -> str:
        return "parallel"
