"""Execution engine: run physical plans and collect statistics.

The demo's Fig. 5 shows per-plan execution output: the operators chosen, the
records produced, and "summary information about the plan execution such as
the total pipeline cost and runtime" — that is what
:class:`~repro.execution.stats.ExecutionStats` reports.
"""

from repro.execution.stats import OperatorStats, PlanStats, ExecutionStats
from repro.execution.executors import SequentialExecutor, ParallelExecutor
from repro.execution.pipeline import PipelinedExecutor
from repro.execution.sharded import ShardedExecutor
from repro.execution.asyncexec import AsyncExecutor
from repro.execution.execute import Execute, ExecutionEngine
from repro.execution.incremental import (
    IncrementalReport,
    ManifestDelta,
    build_source_manifest,
    delta_impact,
    diff_manifests,
)

__all__ = [
    "OperatorStats",
    "PlanStats",
    "ExecutionStats",
    "SequentialExecutor",
    "ParallelExecutor",
    "PipelinedExecutor",
    "ShardedExecutor",
    "AsyncExecutor",
    "Execute",
    "ExecutionEngine",
    "IncrementalReport",
    "ManifestDelta",
    "build_source_manifest",
    "delta_impact",
    "diff_manifests",
]
