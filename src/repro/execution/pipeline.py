"""Batched, pipelined plan execution with real worker threads.

:class:`PipelinedExecutor` splits a physical plan into *stages* connected by
bounded queues and runs them concurrently on OS threads:

* a **parallel stage** is a maximal run of consecutive LLM-bound operators
  (filters, converts, semantic joins); it gets a pool of ``max_workers``
  threads that pull record bundles from the stage's input queue;
* a **serial stage** is a run of order-sensitive streaming operators
  (limits, distinct, UDFs, code-synthesis converts); one thread processes
  its input strictly in source order;
* a **barrier stage** wraps one blocking operator (aggregate, group-by,
  retrieve, sort); it accumulates in source order and flushes on close.

Determinism contract — the whole point of the design — is that a pipelined
run produces *byte-identical records* and identical per-operator
``records_in`` / ``records_out`` / ``llm_calls`` to
:class:`~repro.execution.executors.SequentialExecutor`, for any thread
count and any thread interleaving:

* answers are pure functions of ``(model, document, task)`` (seeded per
  record), so processing order cannot change them;
* every inter-stage message carries a sequence number; serial and barrier
  stages hold a reorder buffer and consume strictly in sequence order, and
  the sink reassembles final output in sequence order;
* simulated time is charged to a virtual-clock lane chosen by *sequence
  number* (``lane_base + seq % workers``), not by whichever OS thread got
  the bundle, so even the simulated makespan is reproducible run to run;
* a plan whose ``LimitOp`` can stop the source early is executed inline on
  the orchestrator thread with exactly the sequential early-stop protocol —
  speculative parallelism upstream of such a limit would change which
  records get (and pay for) LLM calls.

Batching (``batch_size > 1``) bundles consecutive records into one
``process_batch`` call per operator.  The client guarantees batched answers
and token/cost accounting are identical to per-record calls; what changes
is real wall-clock work (prompt strings are never materialized; shared
prefixes are tokenized once per batch) and simulated latency (calls after
the first in a batch amortize the model's fixed per-call overhead).

Backpressure: all queues are bounded, so a slow downstream stage throttles
the source instead of buffering the whole corpus in flight.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.core.records import DataRecord
from repro.execution.executors import build_plan_stats
from repro.execution.stats import OperatorStats, PlanStats
from repro.obs.trace import SpanKind
from repro.physical.base import PhysicalOperator
from repro.physical.context import ExecutionContext
from repro.physical.converts import CodeSynthesisConvert
from repro.physical.plan import PhysicalPlan
from repro.physical.structural import LimitOp

#: Bundles in flight per stage queue (per worker): bounds memory and gives
#: the pipeline its backpressure.
QUEUE_DEPTH_PER_WORKER = 2


class _Eos:
    """End-of-stream marker; ``count`` is the number of bundles sent."""

    __slots__ = ("count",)

    def __init__(self, count: int):
        self.count = count


class _Aborted(Exception):
    """Internal: another thread failed; unwind quietly."""


def parallel_safe(op: PhysicalOperator) -> bool:
    """Can ``op`` process records out of order with identical results?

    True for stateless LLM-bound streaming operators — the ones worth
    threading.  CodeSynthesisConvert is LLM-bound but order-sensitive (the
    first records seen become the exemplars), so it stays serial.
    """
    return (
        op.is_llm_op
        and not op.is_blocking
        and not isinstance(op, CodeSynthesisConvert)
    )


class _PipeMeter:
    """Thread-safe per-operator stats accumulation.

    The single-threaded executors meter a call by slicing the ledger and
    diffing the clock's ``total_busy`` — both break under interleaving.
    Here each call is wrapped in :meth:`UsageLedger.capture` (thread-local)
    and timed by the calling thread's *own lane* delta, so concurrent calls
    to different operators attribute correctly.
    """

    #: Writes-only: readers (build_plan_stats, after all workers joined)
    #: see a quiesced meter.
    _GUARDED_BY = {"stats": ("_lock", "writes")}

    def __init__(self, op: PhysicalOperator, context: ExecutionContext):
        self.op = op
        self.context = context
        self.stats = OperatorStats(
            op_label=op.op_label,
            logical_describe=op.logical_op.describe(),
        )
        self._lock = threading.Lock()

    def open(self) -> None:
        self._metered(
            lambda: self.op.open(self.context) or [],
            inputs=0, count_outputs=False, span_name="op.open",
        )

    def process(self, record: DataRecord) -> List[DataRecord]:
        return self._metered(lambda: self.op.process(record), inputs=1)

    def process_batch(
        self, records: Sequence[DataRecord]
    ) -> List[List[DataRecord]]:
        groups = self._metered_raw(
            lambda: self.op.process_batch(records), inputs=len(records),
            n_outputs=lambda gs: sum(len(g) for g in gs),
            span_name="op.batch",
        )
        return groups

    def close(self) -> List[DataRecord]:
        return self._metered(self.op.close, inputs=0, span_name="op.close")

    def _metered(self, fn, inputs: int, count_outputs: bool = True,
                 span_name: str = "op.process") -> List[DataRecord]:
        return self._metered_raw(
            fn, inputs, n_outputs=len if count_outputs else lambda _: 0,
            span_name=span_name,
        )

    def _metered_raw(self, fn, inputs: int, n_outputs: Callable[[Any], int],
                     span_name: str = "op.process"):
        clock = self.context.clock
        tracer = self.context.tracer
        # Busy time is measured with the thread-local advance accumulator,
        # not the lane's wall time: another worker charged to the same lane
        # (bundle seqs that collide modulo ``workers``) would otherwise
        # leak its advances into this delta.  The span's duration is pinned
        # to the same delta the stats accumulate, so span durations
        # reconcile with OperatorStats.time_seconds exactly.
        if tracer.enabled:
            with tracer.span(span_name, SpanKind.OPERATOR, clock=clock,
                             op=self.op.op_label) as span:
                with self.context.ledger.capture() as bucket:
                    busy_before = clock.local_advanced
                    result = fn()
                    busy_delta = clock.local_advanced - busy_before
                span.finish_at(span.start + busy_delta)
                span.set_attribute("records_in", inputs)
                span.set_attribute("records_out", n_outputs(result))
        else:
            with self.context.ledger.capture() as bucket:
                busy_before = clock.local_advanced
                result = fn()
                busy_delta = clock.local_advanced - busy_before
        self._account(inputs, n_outputs(result), busy_delta, bucket)
        return result

    async def aprocess(self, record: DataRecord) -> List[DataRecord]:
        """Async twin of :meth:`process` with identical accounting.

        The awaited operator must not suspend between the accounting
        boundaries (the simulated client's coroutines never do), so the
        thread-local capture/advance attribution below stays exact even
        with many asyncio tasks sharing the event-loop thread.
        """
        clock = self.context.clock
        tracer = self.context.tracer
        if tracer.enabled:
            with tracer.span("op.process", SpanKind.OPERATOR, clock=clock,
                             op=self.op.op_label) as span:
                with self.context.ledger.capture() as bucket:
                    busy_before = clock.local_advanced
                    result = await self.op.aprocess(record)
                    busy_delta = clock.local_advanced - busy_before
                span.finish_at(span.start + busy_delta)
                span.set_attribute("records_in", 1)
                span.set_attribute("records_out", len(result))
        else:
            with self.context.ledger.capture() as bucket:
                busy_before = clock.local_advanced
                result = await self.op.aprocess(record)
                busy_delta = clock.local_advanced - busy_before
        self._account(1, len(result), busy_delta, bucket)
        return result

    def charge_accumulate(self, record: DataRecord) -> None:
        """Pay a decomposable blocking op's per-record fold cost here.

        Scale-out executors call this on a shard worker's lane (counting the
        record in and charging ``accumulate_seconds``) and later replay only
        the unmetered state mutation — ``accumulate_silent`` — in global
        order at the gather, so the combined accounting matches a
        sequential ``accumulate`` exactly.
        """
        op = self.op
        seconds = op.accumulate_seconds
        assert seconds is not None, f"{op.op_label} fold is not decomposable"
        self._metered(
            lambda: op._charge_local_time(seconds) or [],
            inputs=1, span_name="op.accumulate",
        )

    def _account(self, inputs: int, outputs: int, busy_delta: float,
                 bucket) -> None:
        with self._lock:
            self.stats.records_in += inputs
            self.stats.records_out += outputs
            self.stats.add_time(busy_delta)
            self.stats.llm_calls += len(bucket)
            for usage in bucket:
                self.stats.add_cost(usage.cost_usd)
                self.stats.input_tokens += usage.input_tokens
                self.stats.output_tokens += usage.output_tokens


class _Stage:
    """One segment of the operator chain plus its plumbing."""

    _GUARDED_BY = {"exited": "exit_lock", "eos": "exit_lock"}

    def __init__(self, meters: List[_PipeMeter], parallel: bool,
                 workers: int, lane_base: int):
        self.meters = meters
        self.parallel = parallel
        self.workers = workers if parallel else 1
        self.lane_base = lane_base
        self.in_queue: "queue.Queue" = queue.Queue(
            maxsize=max(2, QUEUE_DEPTH_PER_WORKER * self.workers)
        )
        # Wired by the executor before threads start:
        self.out_queue: Optional["queue.Queue"] = None
        self.next_consumers = 1  # sentinel fan-out (next stage's workers)
        self.next_parallel = False  # next stage wants batch-sized bundles
        # Parallel-stage shutdown bookkeeping (last worker out closes ops).
        self.exit_lock = threading.Lock()
        self.exited = 0
        self.eos: Optional[_Eos] = None
        # Observability (wired by the executor when tracing/metrics are on):
        self.span = None  # pipeline.stage span workers attach under
        self.depth_gauge = None  # best-effort in-queue high-water mark
        self.poll_counter = None  # best-effort empty-poll retries

    @property
    def is_barrier(self) -> bool:
        return len(self.meters) == 1 and self.meters[0].op.is_blocking

    def describe(self) -> str:
        kind = (
            "barrier" if self.is_barrier
            else "parallel" if self.parallel else "serial"
        )
        ops = "+".join(m.op.op_label for m in self.meters)
        return f"{kind}({ops})"


class PipelinedExecutor:
    """Stage-pipelined, optionally batched, multi-threaded execution.

    Args:
        context: execution context; created with ``max_workers`` lanes when
            omitted.
        max_workers: thread-pool size per parallel (LLM-bound) stage;
            defaults to the context's ``max_workers``.
        batch_size: records per ``process_batch`` call in parallel stages;
            1 means per-record calls (byte-identical accounting to the
            sequential executor).
        on_event: optional progress callback (same events the sequential
            executor emits; may be invoked from worker threads).
    """

    #: Name recorded on the plan.run span and in ExecutionStats; subclasses
    #: (the sharded and async executors) override it.
    EXECUTOR_NAME = "pipelined"

    #: Writes-only: the post-join reads in execute() happen after every
    #: worker thread has exited.
    _GUARDED_BY = {"_errors": ("_error_lock", "writes")}

    def __init__(self, context: Optional[ExecutionContext] = None,
                 max_workers: Optional[int] = None, batch_size: int = 1,
                 on_event=None):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if context is None:
            context = ExecutionContext(max_workers=max_workers or 4)
        self.context = context
        self.max_workers = max_workers or context.max_workers
        if self.max_workers < 1:
            raise ValueError(
                f"max_workers must be >= 1, got {self.max_workers}"
            )
        self.batch_size = batch_size
        self._on_event = on_event
        self._event_lock = threading.Lock()
        self._abort = threading.Event()
        self._errors: List[BaseException] = []
        self._error_lock = threading.Lock()

    # -- event / error plumbing -------------------------------------------

    def _emit(self, event: dict) -> None:
        if self._on_event is not None:
            with self._event_lock:
                self._on_event(event)

    def _fail(self, exc: BaseException) -> None:
        with self._error_lock:
            self._errors.append(exc)
        self._abort.set()

    def _put(self, target: "queue.Queue", item) -> None:
        while True:
            if self._abort.is_set():
                raise _Aborted()
            try:
                target.put(item, timeout=0.05)
                return
            except queue.Full:
                continue

    def _get(self, source: "queue.Queue", poll_counter=None):
        while True:
            if self._abort.is_set():
                raise _Aborted()
            try:
                return source.get(timeout=0.05)
            except queue.Empty:
                if poll_counter is not None:
                    poll_counter.inc()
                continue

    # -- plan segmentation -------------------------------------------------

    def _build_stages(self, meters: List[_PipeMeter]) -> List[_Stage]:
        """Split downstream meters into parallel/serial/barrier stages."""
        stages: List[_Stage] = []
        run: List[_PipeMeter] = []
        run_parallel = False
        lane_base = 1  # lane 0 belongs to the orchestrator (scan parses)

        def flush_run():
            nonlocal run, lane_base
            if run:
                stage = _Stage(run, run_parallel,
                               self.max_workers, lane_base)
                lane_base += stage.workers
                stages.append(stage)
                run = []

        for meter in meters:
            if meter.op.is_blocking:
                flush_run()
                stage = _Stage([meter], parallel=False, workers=1,
                               lane_base=lane_base)
                lane_base += 1
                stages.append(stage)
                continue
            safe = parallel_safe(meter.op)
            if run and safe != run_parallel:
                flush_run()
            run_parallel = safe
            run.append(meter)
        flush_run()
        self.context.clock.ensure_lanes(lane_base)
        return stages

    @staticmethod
    def _early_stop(plan: PhysicalPlan) -> Optional[LimitOp]:
        """The first LimitOp with only streaming operators upstream."""
        for op in plan.downstream:
            if op.is_blocking:
                return None
            if isinstance(op, LimitOp):
                return op
        return None

    # -- record movement through an operator chain ------------------------

    @staticmethod
    def _run_chain(meters: List[_PipeMeter],
                   records: Sequence[DataRecord]) -> List[DataRecord]:
        """Depth-first per-record processing (sequential-identical order)."""
        sink: List[DataRecord] = []
        for record in records:
            stack: List[Tuple[DataRecord, int]] = [(record, 0)]
            while stack:
                current, index = stack.pop()
                if index >= len(meters):
                    sink.append(current)
                    continue
                outputs = meters[index].process(current)
                for output in reversed(outputs):
                    stack.append((output, index + 1))
        return sink

    @staticmethod
    def _run_chain_batched(meters: List[_PipeMeter],
                           records: Sequence[DataRecord]) -> List[DataRecord]:
        """Layer-batched processing; same flattened output order as
        :meth:`_run_chain` because per-input grouping is preserved."""
        groups: List[List[DataRecord]] = [[record] for record in records]
        for meter in meters:
            flat = [record for group in groups for record in group]
            if not flat:
                return []
            batched = meter.process_batch(flat)
            regrouped: List[List[DataRecord]] = []
            cursor = 0
            for group in groups:
                merged: List[DataRecord] = []
                for _ in group:
                    merged.extend(batched[cursor])
                    cursor += 1
                regrouped.append(merged)
            groups = regrouped
        return [record for group in groups for record in group]

    # -- stage workers -----------------------------------------------------

    def _parallel_worker(self, stage: _Stage) -> None:
        clock = self.context.clock
        tracer = self.context.tracer
        try:
            # Attach the stage span so bundle / op / llm spans created on
            # this worker thread nest under it (bundles carry a ``seq``
            # attribute, so canonical ordering erases the thread race).
            with tracer.attach(stage.span):
                while True:
                    item = self._get(stage.in_queue, stage.poll_counter)
                    if isinstance(item, _Eos):
                        with stage.exit_lock:
                            stage.exited += 1
                            stage.eos = item
                            last_out = stage.exited == stage.workers
                        if last_out:
                            self._close_stage_ops(stage, item.count)
                        return
                    seq, records = item
                    if stage.depth_gauge is not None:
                        stage.depth_gauge.set_max(stage.in_queue.qsize())
                    # Lane by sequence number, not by thread: simulated time
                    # is then independent of which OS thread won the race.
                    clock.use_lane(stage.lane_base + seq % stage.workers)
                    outputs = self._traced_bundle(
                        stage, seq, records, tracer, clock
                    )
                    self._put(stage.out_queue, (seq, outputs))
        except _Aborted:
            pass
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            self._fail(exc)

    def _traced_bundle(self, stage: _Stage, seq: int,
                       records: Sequence[DataRecord], tracer,
                       clock) -> List[DataRecord]:
        """Process one bundle through the stage chain, under its span.

        The bundle's duration is pinned to the thread-local advance delta
        (the thread's own charges only); its *start* is canonicalized after
        the threads join — same-lane starts observed live are racy, but
        durations plus per-lane seq order determine the layout exactly.
        """
        if tracer.enabled:
            with tracer.span("pipeline.bundle", SpanKind.BUNDLE, clock=clock,
                             seq=seq, records=len(records)) as span:
                advanced_before = clock.local_advanced
                outputs = self._bundle_chain(stage, records)
                span.finish_at(
                    span.start + (clock.local_advanced - advanced_before)
                )
            return outputs
        return self._bundle_chain(stage, records)

    def _bundle_chain(self, stage: _Stage,
                      records: Sequence[DataRecord]) -> List[DataRecord]:
        if stage.parallel and self.batch_size > 1:
            return self._run_chain_batched(stage.meters, records)
        return self._run_chain(stage.meters, records)

    def _serial_worker(self, stage: _Stage) -> None:
        clock = self.context.clock
        tracer = self.context.tracer
        clock.use_lane(stage.lane_base)
        buffer: dict = {}
        next_seq = 0
        emitted = 0
        pending: List[DataRecord] = []
        out_batch = self._out_bundle_size(stage)
        try:
            with tracer.attach(stage.span):
                while True:
                    item = self._get(stage.in_queue, stage.poll_counter)
                    if isinstance(item, _Eos):
                        # EOS is always enqueued last, so the buffer now
                        # holds every outstanding bundle; drain in order.
                        for seq in sorted(buffer):
                            assert seq == next_seq, "sequence gap in pipeline"
                            pending.extend(
                                self._serial_process(stage, buffer[seq], seq)
                            )
                            emitted = self._send_bundles(
                                stage, pending, emitted, out_batch
                            )
                            next_seq += 1
                        buffer.clear()
                        pending.extend(self._close_serial(stage))
                        emitted = self._send_bundles(
                            stage, pending, emitted, out_batch, flush=True
                        )
                        for _ in range(stage.next_consumers):
                            self._put(stage.out_queue, _Eos(emitted))
                        return
                    seq, records = item
                    buffer[seq] = records
                    if stage.depth_gauge is not None:
                        stage.depth_gauge.set_max(stage.in_queue.qsize())
                    while next_seq in buffer:
                        pending.extend(
                            self._serial_process(
                                stage, buffer.pop(next_seq), next_seq
                            )
                        )
                        emitted = self._send_bundles(
                            stage, pending, emitted, out_batch
                        )
                        next_seq += 1
        except _Aborted:
            pass
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            self._fail(exc)

    def _serial_process(self, stage: _Stage, records: Sequence[DataRecord],
                        seq: int) -> List[DataRecord]:
        return self._traced_bundle(
            stage, seq, records, self.context.tracer, self.context.clock
        )

    def _close_serial(self, stage: _Stage) -> List[DataRecord]:
        """Close the stage's operators in order, like the sequential flush."""
        if stage.is_barrier:
            # Model every upstream worker arriving at the barrier.
            self.context.clock.synchronize()
        flushed_out: List[DataRecord] = []
        for index, meter in enumerate(stage.meters):
            flushed = meter.close()
            if flushed and meter.op.is_blocking:
                self._emit({
                    "type": "operator_flush",
                    "operator": meter.op.op_label,
                    "records": len(flushed),
                })
            flushed_out.extend(
                self._run_chain(stage.meters[index + 1:], flushed)
            )
        return flushed_out

    def _close_stage_ops(self, stage: _Stage, mainline_bundles: int) -> None:
        """Last worker of a parallel stage: close ops, emit, propagate EOS."""
        self.context.clock.use_lane(stage.lane_base)
        outputs = self._close_serial(stage)
        seq = mainline_bundles
        if outputs:
            self._put(stage.out_queue, (seq, outputs))
            seq += 1
        for _ in range(stage.next_consumers):
            self._put(stage.out_queue, _Eos(seq))

    def _out_bundle_size(self, stage: _Stage) -> int:
        """Records per bundle sent downstream of ``stage``."""
        return self.batch_size if stage.next_parallel else 1

    def _send_bundles(self, stage: _Stage, pending: List[DataRecord],
                      emitted: int, out_batch: int,
                      flush: bool = False) -> int:
        while len(pending) >= out_batch or (flush and pending):
            bundle = pending[:out_batch]
            del pending[:out_batch]
            self._put(stage.out_queue, (emitted, bundle))
            emitted += 1
        return emitted

    def _sink_worker(self, source: "queue.Queue",
                     sink: List[DataRecord]) -> None:
        buffer: dict = {}
        next_seq = 0
        try:
            while True:
                item = self._get(source)
                if isinstance(item, _Eos):
                    for seq in sorted(buffer):
                        assert seq == next_seq, "sequence gap at sink"
                        sink.extend(buffer[seq])
                        next_seq += 1
                    return
                seq, records = item
                buffer[seq] = records
                while next_seq in buffer:
                    sink.extend(buffer.pop(next_seq))
                    next_seq += 1
        except _Aborted:
            pass
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            self._fail(exc)

    # -- serial-inline path (limit early stop) -----------------------------

    def _execute_inline(self, plan: PhysicalPlan, meters: List[_PipeMeter],
                        stop_limit: LimitOp) -> List[DataRecord]:
        """Sequential-identical execution on the orchestrator thread.

        Used when a LimitOp can stop the source early: which records reach
        the LLM operators then depends on the limit's feedback after every
        single record, so any speculative parallelism (threads *or*
        batches) would change the run's LLM call count.
        """
        scan_meter, downstream = meters[0], meters[1:]
        sink: List[DataRecord] = []
        for record in self._traced_scan(plan, scan_meter):
            sink.extend(self._run_chain(downstream, [record]))
            self._emit({
                "type": "record_processed",
                "index": scan_meter.stats.records_in,
                "outputs_so_far": len(sink),
                "elapsed_seconds": self.context.clock.elapsed,
            })
            if stop_limit.exhausted:
                break
        for index, meter in enumerate(downstream):
            flushed = meter.close()
            if flushed and meter.op.is_blocking:
                self._emit({
                    "type": "operator_flush",
                    "operator": meter.op.op_label,
                    "records": len(flushed),
                })
            sink.extend(self._run_chain(downstream[index + 1:], flushed))
        return sink

    # -- the main entry point ---------------------------------------------

    def execute(self, plan: PhysicalPlan) -> Tuple[List[DataRecord], PlanStats]:
        self._abort.clear()
        with self._error_lock:
            self._errors.clear()
        if self.batch_size == 1 and getattr(plan, "batch_size", 1) > 1:
            # Honor the batch size the optimizer stamped onto the plan when
            # the caller did not pick one explicitly.
            self.batch_size = plan.batch_size
        self._emit({
            "type": "plan_start",
            "plan_id": plan.plan_id,
            "plan": plan.describe(),
            "operators": len(plan),
        })
        tracer = self.context.tracer
        self.context.provenance.begin_plan(plan)
        with tracer.span(
            "plan.run", SpanKind.PLAN, clock=self.context.clock,
            plan_id=plan.plan_id, executor=self.EXECUTOR_NAME,
            **self._plan_span_attrs(),
        ) as plan_span:
            meters = [_PipeMeter(op, self.context) for op in plan]
            for meter in meters:
                meter.open()

            stop_limit = self._early_stop(plan)
            if stop_limit is not None or not plan.downstream:
                sink = (
                    self._execute_inline(plan, meters, stop_limit)
                    if stop_limit is not None
                    else self._scan_only(plan, meters[0])
                )
            else:
                sink = self._execute_concurrent(plan, meters)
            plan_span.finish_at(self.context.clock.elapsed)

        plan_stats = build_plan_stats(
            plan, [m.stats for m in meters], self.context, sink
        )
        self._emit({
            "type": "plan_end",
            "records_out": len(sink),
            "elapsed_seconds": self.context.clock.elapsed,
            "cost_usd": plan_stats.total_cost_usd,
        })
        return sink, plan_stats

    def _plan_span_attrs(self) -> dict:
        """Extra attributes for the plan.run span (overridden by subclasses)."""
        return {"workers": self.max_workers, "batch_size": self.batch_size}

    def _execute_concurrent(self, plan: PhysicalPlan,
                            meters: List[_PipeMeter]) -> List[DataRecord]:
        """The concurrent execution strategy; subclasses swap theirs in."""
        return self._execute_pipelined(plan, meters)

    def _scan_only(self, plan: PhysicalPlan,
                   scan_meter: _PipeMeter) -> List[DataRecord]:
        return list(self._traced_scan(plan, scan_meter))

    def _traced_scan(self, plan: PhysicalPlan, scan_meter: _PipeMeter):
        """Iterate the source, metering each pull as an ``op.scan`` span.

        The parse time charged inside ``records()`` lands on the calling
        thread's current lane, so the span is timed by that lane's delta.
        """
        clock = self.context.clock
        tracer = self.context.tracer
        scan_label = scan_meter.op.op_label
        source_iter = plan.scan.records()
        while True:
            if tracer.enabled:
                scan_start = clock.now
                scan_lane = clock.current_lane
            try:
                record = next(source_iter)
            except StopIteration:
                return
            if tracer.enabled:
                tracer.record(
                    "op.scan", SpanKind.OPERATOR, scan_start, clock.now,
                    scan_lane, op=scan_label, records_in=1, records_out=1,
                )
            self.context.provenance.source(record)
            with scan_meter._lock:
                scan_meter.stats.records_in += 1
                scan_meter.stats.records_out += 1
            yield record

    def _execute_pipelined(self, plan: PhysicalPlan,
                           meters: List[_PipeMeter]) -> List[DataRecord]:
        scan_meter = meters[0]
        stages = self._build_stages(meters[1:])
        tracer = self.context.tracer
        metrics = self.context.metrics
        for index, stage in enumerate(stages):
            if tracer.enabled:
                # Created on the orchestrator thread (under plan.run) so
                # worker threads can attach to it before any bundle flows.
                stage.span = tracer.start_span(
                    "pipeline.stage", SpanKind.STAGE,
                    clock=self.context.clock, stage=index,
                    ops=stage.describe(), workers=stage.workers,
                    parallel=stage.parallel,
                )
            stage.depth_gauge = metrics.gauge(
                f"pipeline.stage{index}.queue_depth_peak", best_effort=True
            )
            stage.poll_counter = metrics.counter(
                f"pipeline.stage{index}.queue_poll_retries", best_effort=True
            )

        # Wire stage N's output to stage N+1's input; the last stage feeds
        # the sink queue (drained by a dedicated thread so bounded queues
        # can never deadlock against the feeding orchestrator).
        sink_queue: "queue.Queue" = queue.Queue(
            maxsize=max(2, QUEUE_DEPTH_PER_WORKER * self.max_workers)
        )
        for stage, successor in zip(stages, stages[1:]):
            stage.out_queue = successor.in_queue
            stage.next_consumers = successor.workers
            stage.next_parallel = successor.parallel
        stages[-1].out_queue = sink_queue
        stages[-1].next_consumers = 1
        stages[-1].next_parallel = False

        sink: List[DataRecord] = []
        threads: List[threading.Thread] = []
        # Lane times before any worker runs: the relayout pass below lays
        # each lane's bundles out cumulatively from these baselines.
        base_lane_times = (
            self.context.clock.lane_times() if tracer.enabled else []
        )
        for number, stage in enumerate(stages):
            worker = (
                self._parallel_worker if stage.parallel
                else self._serial_worker
            )
            for wid in range(stage.workers):
                thread = threading.Thread(
                    target=worker, args=(stage,),
                    name=f"pipeline-s{number}-w{wid}", daemon=True,
                )
                thread.start()
                threads.append(thread)
        sink_thread = threading.Thread(
            target=self._sink_worker, args=(sink_queue, sink),
            name="pipeline-sink", daemon=True,
        )
        sink_thread.start()
        threads.append(sink_thread)

        # Orchestrator: pull the scan on lane 0, bundle, and feed stage 0.
        first = stages[0]
        in_bundle = self.batch_size if first.parallel else 1
        self.context.clock.use_lane(0)
        bundle: List[DataRecord] = []
        fed = 0
        try:
            for record in self._traced_scan(plan, scan_meter):
                bundle.append(record)
                if len(bundle) >= in_bundle:
                    self._put(first.in_queue, (fed, bundle))
                    fed += 1
                    bundle = []
                self._emit({
                    "type": "record_processed",
                    "index": scan_meter.stats.records_in,
                    "outputs_so_far": len(sink),
                    "elapsed_seconds": self.context.clock.elapsed,
                })
            if bundle:
                self._put(first.in_queue, (fed, bundle))
                fed += 1
            for _ in range(first.workers):
                self._put(first.in_queue, _Eos(fed))
        except _Aborted:
            pass
        except BaseException as exc:  # noqa: BLE001 - reported below
            self._fail(exc)

        for thread in threads:
            thread.join()
        if self._errors:
            raise self._errors[0]

        # Finish stage spans and record deterministic per-stage busy time
        # (the sum of the stage's operator lane-time deltas — the same
        # numbers OperatorStats reports, so trace and stats reconcile).
        elapsed = self.context.clock.elapsed
        for index, stage in enumerate(stages):
            busy = round(
                sum(m.stats.time_seconds for m in stage.meters), 9
            )
            metrics.gauge(f"pipeline.stage{index}.busy_seconds").set(busy)
            if stage.span is not None:
                self._canonicalize_stage(stage, base_lane_times)
                stage.span.set_attribute("busy_seconds", busy)
                stage.span.set_attribute(
                    "records_out", stage.meters[-1].stats.records_out
                )
                stage.span.finish_at(elapsed)
        return sink

    # -- canonical span layout (after threads join) ------------------------

    @staticmethod
    def _canonicalize_stage(stage: _Stage,
                            base_lane_times: List[float]) -> None:
        """Rewrite the stage's bundle span start times deterministically.

        Start times observed live are racy when two bundles charge the same
        lane concurrently (seqs colliding modulo ``workers``), but each
        bundle's *duration* is race-free (thread-local advance delta) and
        the lane a bundle charges is a pure function of its ``seq``.  So
        the canonical layout is: per lane, bundles in seq order, abutting,
        starting from the lane's pre-run baseline.
        """
        bundles = sorted(
            (c for c in stage.span.children if c.name == "pipeline.bundle"),
            key=lambda c: c.attributes.get("seq", 0),
        )
        cursors = {}
        for bundle in bundles:
            seq = bundle.attributes.get("seq", 0)
            lane = stage.lane_base + (
                seq % stage.workers if stage.parallel else 0
            )
            start = cursors.get(
                lane,
                base_lane_times[lane] if lane < len(base_lane_times) else 0.0,
            )
            PipelinedExecutor._relayout_span(bundle, start)
            cursors[lane] = start + bundle.duration

    @staticmethod
    def _relayout_span(span, start: float) -> None:
        """Move ``span`` to ``start`` and lay its children out abutting.

        Durations are preserved exactly; only offsets change.  Operator
        spans inside a bundle account for all of the bundle's advances, so
        the abutting layout is exact at the operator level (LLM-call
        placement within an operator is approximate but deterministic).
        """
        duration = span.duration
        span.start = start
        span.end = start + duration
        cursor = start
        for child in span.children:
            PipelinedExecutor._relayout_span(child, cursor)
            cursor += child.duration
