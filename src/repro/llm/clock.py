"""A virtual clock for simulated latency accounting.

Palimpzest's execution statistics report wall-clock runtime; our LLM calls are
simulated, so sleeping for their real latency would make the benchmarks take
hours.  Instead every component that "takes time" advances a shared
:class:`VirtualClock`.  The clock supports *lanes* so a parallel executor can
model `max_workers` concurrent LLM calls: each lane accumulates time
independently and the elapsed time of the whole execution is the maximum lane.

Thread-safety contract: the clock may be shared by real worker threads (the
pipelined executor runs one OS thread per stage worker).  The *current lane*
selection is therefore thread-local — each thread advances its own lane
without seeing other threads' selections — and every mutation of the lane
table happens under a lock.  Single-threaded callers observe exactly the
pre-threading behavior (one implicit thread, lane 0 by default).
"""

from __future__ import annotations

import threading


class VirtualClock:
    """Tracks simulated elapsed seconds, optionally across parallel lanes.

    A clock starts at time zero.  ``advance(seconds)`` adds time to the
    calling thread's current lane; ``now`` reports that lane's local time,
    and ``elapsed`` reports the makespan across all lanes (the number a user
    would read off a stopwatch for the whole run).
    """

    _GUARDED_BY = {"_lane_times": "_lock"}

    def __init__(self, lanes: int = 1):
        if lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {lanes}")
        self._lane_times = [0.0] * lanes
        self._lock = threading.RLock()
        self._local = threading.local()

    # -- thread-local current lane ----------------------------------------

    @property
    def _current_lane(self) -> int:
        return getattr(self._local, "lane", 0)

    @_current_lane.setter
    def _current_lane(self, lane: int) -> None:
        self._local.lane = lane

    @property
    def current_lane(self) -> int:
        """The lane the calling thread's advances are charged to."""
        return self._current_lane

    @property
    def lanes(self) -> int:
        with self._lock:
            return len(self._lane_times)

    def lane_time(self, lane: int) -> float:
        """Local time accumulated by ``lane``, in seconds."""
        with self._lock:
            return self._lane_times[lane]

    def lane_times(self) -> list:
        """A snapshot copy of every lane's accumulated time."""
        with self._lock:
            return list(self._lane_times)

    @property
    def now(self) -> float:
        """Local time of the calling thread's current lane, in seconds."""
        with self._lock:
            return self._lane_times[self._current_lane]

    @property
    def elapsed(self) -> float:
        """Makespan: the maximum time accumulated by any lane."""
        with self._lock:
            return max(self._lane_times)

    @property
    def total_busy(self) -> float:
        """Sum of busy time across all lanes (aggregate compute-seconds)."""
        with self._lock:
            return sum(self._lane_times)

    @property
    def local_advanced(self) -> float:
        """Total seconds the *calling thread* has advanced this clock.

        Unlike ``now`` (the current lane's time, which other threads
        charged to the same lane can move), this is a per-thread monotonic
        accumulator — so a delta of ``local_advanced`` around a block of
        work measures exactly that thread's own charges, deterministically
        under any interleaving.  The pipelined executor meters per-operator
        time (and span durations) with it.
        """
        return getattr(self._local, "advanced", 0.0)

    def advance(self, seconds: float) -> float:
        """Add ``seconds`` to the current lane and return its new local time."""
        if seconds < 0:
            raise ValueError(f"cannot advance a clock by {seconds} seconds")
        self._local.advanced = self.local_advanced + seconds
        with self._lock:
            self._lane_times[self._current_lane] += seconds
            return self._lane_times[self._current_lane]

    def pick_least_busy_lane(self) -> int:
        """Select (and return) the lane with the least accumulated time.

        This models a work queue: the next task is handed to whichever worker
        frees up first.  The selection applies to the calling thread only.
        """
        with self._lock:
            lane = min(
                range(len(self._lane_times)), key=lambda i: self._lane_times[i]
            )
            self._current_lane = lane
            return lane

    def use_lane(self, lane: int) -> None:
        """Bind the calling thread to ``lane`` for subsequent advances."""
        with self._lock:
            if not 0 <= lane < len(self._lane_times):
                raise IndexError(
                    f"lane {lane} out of range [0, {len(self._lane_times)})"
                )
            self._current_lane = lane

    def ensure_lanes(self, lanes: int) -> None:
        """Grow the lane table to at least ``lanes`` entries.

        New lanes start at time zero, so neither ``elapsed`` nor
        ``total_busy`` changes.  Used by executors whose worker count is
        only known once the plan's stage structure is built.
        """
        with self._lock:
            missing = lanes - len(self._lane_times)
            if missing > 0:
                self._lane_times.extend([0.0] * missing)

    def synchronize(self) -> float:
        """Barrier: set every lane to the makespan and return it.

        Used at pipeline stage boundaries that must wait for all workers.
        """
        with self._lock:
            makespan = max(self._lane_times)
            self._lane_times = [makespan] * len(self._lane_times)
            return makespan

    def reset(self) -> None:
        with self._lock:
            self._lane_times = [0.0] * len(self._lane_times)
            self._current_lane = 0

    def __repr__(self) -> str:
        return f"VirtualClock(lanes={self.lanes}, elapsed={self.elapsed:.3f}s)"
