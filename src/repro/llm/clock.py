"""A virtual clock for simulated latency accounting.

Palimpzest's execution statistics report wall-clock runtime; our LLM calls are
simulated, so sleeping for their real latency would make the benchmarks take
hours.  Instead every component that "takes time" advances a shared
:class:`VirtualClock`.  The clock supports *lanes* so a parallel executor can
model `max_workers` concurrent LLM calls: each lane accumulates time
independently and the elapsed time of the whole execution is the maximum lane.
"""

from __future__ import annotations


class VirtualClock:
    """Tracks simulated elapsed seconds, optionally across parallel lanes.

    A clock starts at time zero.  ``advance(seconds)`` adds time to the
    current lane; ``now`` reports the current lane's local time, and
    ``elapsed`` reports the makespan across all lanes (the number a user
    would read off a stopwatch for the whole run).
    """

    def __init__(self, lanes: int = 1):
        if lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {lanes}")
        self._lane_times = [0.0] * lanes
        self._current_lane = 0

    @property
    def lanes(self) -> int:
        return len(self._lane_times)

    @property
    def now(self) -> float:
        """Local time of the currently selected lane, in seconds."""
        return self._lane_times[self._current_lane]

    @property
    def elapsed(self) -> float:
        """Makespan: the maximum time accumulated by any lane."""
        return max(self._lane_times)

    @property
    def total_busy(self) -> float:
        """Sum of busy time across all lanes (aggregate compute-seconds)."""
        return sum(self._lane_times)

    def advance(self, seconds: float) -> float:
        """Add ``seconds`` to the current lane and return its new local time."""
        if seconds < 0:
            raise ValueError(f"cannot advance a clock by {seconds} seconds")
        self._lane_times[self._current_lane] += seconds
        return self._lane_times[self._current_lane]

    def pick_least_busy_lane(self) -> int:
        """Select (and return) the lane with the least accumulated time.

        This models a work queue: the next task is handed to whichever worker
        frees up first.
        """
        self._current_lane = min(
            range(len(self._lane_times)), key=lambda i: self._lane_times[i]
        )
        return self._current_lane

    def use_lane(self, lane: int) -> None:
        if not 0 <= lane < len(self._lane_times):
            raise IndexError(f"lane {lane} out of range [0, {len(self._lane_times)})")
        self._current_lane = lane

    def synchronize(self) -> float:
        """Barrier: set every lane to the makespan and return it.

        Used at pipeline stage boundaries that must wait for all workers.
        """
        makespan = self.elapsed
        self._lane_times = [makespan] * len(self._lane_times)
        return makespan

    def reset(self) -> None:
        self._lane_times = [0.0] * len(self._lane_times)
        self._current_lane = 0

    def __repr__(self) -> str:
        return f"VirtualClock(lanes={self.lanes}, elapsed={self.elapsed:.3f}s)"
