"""The simulated LLM client.

:class:`SimulatedLLMClient` is the only component the physical operators talk
to.  It exposes three request shapes that cover everything Palimpzest needs:

* :class:`BooleanRequest` — judge a natural-language predicate (semantic
  filter).
* :class:`ExtractionRequest` — populate schema fields from a document
  (semantic convert), optionally one-to-many.
* :class:`CompletionRequest` — free-form completion (the chat agent's
  reasoning steps).

Answers come from the ground-truth oracle when the document is a registered
corpus member, falling back to the heuristic semantic engine otherwise; a
seeded quality-dependent error process then corrupts a model-specific subset
of answers.  Every call is metered: the prompt is actually constructed,
tokens are counted, and cost/latency accrue to the attached ledger/clock.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.llm import prompts, quality, semantics
from repro.llm.cache import CallCache
from repro.llm.clock import VirtualClock
from repro.llm.exceptions import ContextWindowExceeded, InvalidRequestError
from repro.llm.models import ModelCard, ModelRegistry, default_registry
from repro.llm.oracle import GroundTruthRegistry, fingerprint_text, global_oracle
from repro.llm.replay import CallRecord, ReplayLog
from repro.llm.tokenizer import count_tokens, truncate_to_tokens
from repro.llm.usage import LLMUsage, UsageLedger
from repro.obs.trace import NULL_TRACER, SpanKind


@dataclass(frozen=True)
class BooleanRequest:
    """Judge ``predicate`` against ``document``; answer True/False."""

    predicate: str
    document: str
    operation: str = "filter"
    context_fraction: float = 1.0


@dataclass(frozen=True)
class ExtractionRequest:
    """Extract ``fields`` (name -> description) from ``document``."""

    fields: Dict[str, str]
    document: str
    schema_description: str = ""
    one_to_many: bool = False
    operation: str = "convert"
    context_fraction: float = 1.0


@dataclass(frozen=True)
class CompletionRequest:
    """Free-form completion of ``prompt`` (used by the chat agent)."""

    prompt: str
    operation: str = "completion"
    max_output_tokens: int = 512


@dataclass
class LLMResponse:
    """Result of one simulated call.

    ``value`` is the typed answer (bool, dict, list of dicts, or str);
    ``text`` is the serialized completion the model "produced"; ``usage``
    carries the accounting record.
    """

    value: Any
    text: str
    usage: LLMUsage
    model: str


class LLMClient:
    """Interface of the simulated client (single implementation below).

    Kept as a separate base class so tests can substitute counting stubs.
    """

    def judge(self, request: BooleanRequest) -> LLMResponse:
        raise NotImplementedError

    def extract(self, request: ExtractionRequest) -> LLMResponse:
        raise NotImplementedError

    def complete(self, request: CompletionRequest) -> LLMResponse:
        raise NotImplementedError

    # -- coroutine API ---------------------------------------------------
    #
    # Awaitable twins for the async executor.  The simulated client answers
    # from a virtual clock, so these complete without ever suspending: the
    # whole call — clock advance, ledger entry, trace span — happens
    # atomically on the awaiting task's thread.  That invariant is what lets
    # thread-local clock-lane and ledger-capture attribution stay correct
    # when many asyncio tasks interleave on one event-loop thread.  A real
    # network client would override these with true awaits and would then
    # need context-local attribution instead.

    async def ajudge(self, request: BooleanRequest) -> LLMResponse:
        return self.judge(request)

    async def aextract(self, request: ExtractionRequest) -> LLMResponse:
        return self.extract(request)

    async def acomplete(self, request: CompletionRequest) -> LLMResponse:
        return self.complete(request)


class SimulatedLLMClient(LLMClient):
    """Deterministic offline LLM client.

    Args:
        model: model card (or name resolved against ``registry``).
        clock: virtual clock to advance per call; optional.
        ledger: usage ledger to record into; optional.
        oracle: ground-truth registry; defaults to the process-global one.
        registry: model registry for name resolution.
        tracer: observability tracer; every metered call becomes an
            ``llm.call`` leaf span.  Defaults to the no-op tracer.
        replay: optional :class:`~repro.llm.replay.ReplayLog`.  When primed
            (incremental re-run), calls found in the log charge their
            cold-equivalent cost/latency from the recorded token counts and
            are tallied as reused; either way every call of this run is
            captured into the log for the next re-run.  Replay sits
            *behind* the cache: a cache hit never consults the log.
    """

    def __init__(
        self,
        model: Union[ModelCard, str],
        clock: Optional[VirtualClock] = None,
        ledger: Optional[UsageLedger] = None,
        oracle: Optional[GroundTruthRegistry] = None,
        registry: Optional[ModelRegistry] = None,
        cache: Optional[CallCache] = None,
        tracer=None,
        replay: Optional[ReplayLog] = None,
    ):
        registry = registry or default_registry()
        self.model = registry.get(model) if isinstance(model, str) else model
        self.clock = clock
        self.ledger = ledger
        self.oracle = oracle if oracle is not None else global_oracle()
        self.cache = cache
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.replay = replay

    def _trace_call(self, usage: LLMUsage, cache_hit: bool) -> None:
        """Record the ``llm.call`` leaf span for one metered call."""
        end = usage.virtual_timestamp
        start = max(0.0, end - usage.latency_seconds)
        lane = self.clock.current_lane if self.clock is not None else 0
        self.tracer.record(
            "llm.call", SpanKind.LLM, start, end, lane,
            model=usage.model,
            operation=usage.operation,
            input_tokens=usage.input_tokens,
            output_tokens=usage.output_tokens,
            cache_hit=cache_hit,
        )

    # ------------------------------------------------------------------
    # Accounting plumbing.
    # ------------------------------------------------------------------

    def _meter(self, prompt: str, output_text: str, operation: str) -> LLMUsage:
        return self._meter_tokens(count_tokens(prompt), output_text, operation)

    def _meter_tokens(self, input_tokens: int, output_text: str,
                      operation: str, amortize_overhead: bool = False) -> LLMUsage:
        if input_tokens > self.model.context_window:
            raise ContextWindowExceeded(
                self.model.name, input_tokens, self.model.context_window
            )
        output_tokens = max(1, count_tokens(output_text))
        cost = self.model.cost_usd(input_tokens, output_tokens)
        latency = self.model.latency_seconds(input_tokens, output_tokens)
        if amortize_overhead:
            # Later requests of a batched call ride the connection the first
            # one already paid for; cost (tokens) is unaffected.
            latency -= self.model.overhead_seconds
        timestamp = 0.0
        if self.clock is not None:
            timestamp = self.clock.advance(latency)
        usage = LLMUsage(
            model=self.model.name,
            input_tokens=input_tokens,
            output_tokens=output_tokens,
            cost_usd=cost,
            latency_seconds=latency,
            operation=operation,
            virtual_timestamp=timestamp,
        )
        if self.ledger is not None:
            self.ledger.record(usage)
        if self.tracer.enabled:
            self._trace_call(usage, cache_hit=False)
        return usage

    def _cache_hit_response(self, value: Any, operation: str) -> LLMResponse:
        """Build the metered response for a cache hit (near-free)."""
        latency = CallCache.HIT_LATENCY_SECONDS
        timestamp = self.clock.advance(latency) if self.clock else 0.0
        usage = LLMUsage(
            model=self.model.name,
            input_tokens=0,
            output_tokens=0,
            cost_usd=0.0,
            latency_seconds=latency,
            operation=f"{operation}:cached",
            virtual_timestamp=timestamp,
        )
        if self.ledger is not None:
            self.ledger.record(usage)
        if self.tracer.enabled:
            self._trace_call(usage, cache_hit=True)
        return LLMResponse(
            value=value, text=json.dumps(value, default=str),
            usage=usage, model=self.model.name,
        )

    def _replayed_response(self, entry: CallRecord, text: str,
                           operation: str, key,
                           amortize_overhead: bool = False) -> LLMResponse:
        """Serve one call from the replay log with cold-identical accounting.

        The recorded token counts run through :meth:`_meter_tokens` — the
        same path a cold call takes — so cost, latency, the ledger entry,
        and the trace span are byte-identical to the call this one replays;
        only the prompt construction and answer derivation are skipped.
        The charge is then tallied as *reused* so incremental reporting can
        subtract it from the run's bill.
        """
        usage = self._meter_tokens(
            entry.input_tokens, text, operation,
            amortize_overhead=amortize_overhead,
        )
        self.replay.note_reuse(
            key, usage.cost_usd, usage.latency_seconds,
            usage.input_tokens, usage.output_tokens,
        )
        self.replay.record(
            key, entry.value, usage.input_tokens, usage.output_tokens
        )
        return LLMResponse(value=entry.value, text=text, usage=usage,
                           model=self.model.name)

    def _apply_context_fraction(self, document: str, fraction: float) -> str:
        if fraction >= 1.0:
            return document
        budget = max(16, int(count_tokens(document) * fraction))
        return truncate_to_tokens(document, budget)

    # ------------------------------------------------------------------
    # Boolean judgments (semantic filter).
    # ------------------------------------------------------------------

    def judge(self, request: BooleanRequest) -> LLMResponse:
        if not request.predicate.strip():
            raise InvalidRequestError("filter predicate must be non-empty")
        fingerprint = fingerprint_text(request.document)
        cache_key = None
        if self.cache is not None:
            cache_key = CallCache.make_key(
                self.model.name, "judge", request.predicate.lower(),
                fingerprint, request.context_fraction,
            )
            hit, value = self.cache.lookup(cache_key)
            if hit:
                return self._cache_hit_response(value, request.operation)
        replay_key = None
        if self.replay is not None:
            replay_key = ReplayLog.judge_key(
                self.model.name, request, fingerprint
            )
            entry = self.replay.lookup(replay_key)
            if entry is not None:
                return self._replayed_response(
                    entry, "TRUE" if entry.value else "FALSE",
                    request.operation, replay_key,
                )
        visible = self._apply_context_fraction(
            request.document, request.context_fraction
        )
        answer = self._judge_answer(request, fingerprint, visible)
        prompt = prompts.build_filter_prompt(request.predicate, visible)
        text = "TRUE" if answer else "FALSE"
        usage = self._meter(prompt, text, request.operation)
        if cache_key is not None:
            self.cache.store(cache_key, answer)
        if replay_key is not None:
            self.replay.record(
                replay_key, answer, usage.input_tokens, usage.output_tokens
            )
        return LLMResponse(value=answer, text=text, usage=usage,
                           model=self.model.name)

    def _judge_answer(self, request: BooleanRequest, fingerprint: str,
                      visible: str) -> bool:
        """The model's (possibly corrupted) True/False answer.

        Pure function of (model, document, predicate, context fraction) —
        shared verbatim by the per-record and batched paths so batching can
        never change an answer.
        """
        truth = self.oracle.predicate_truth(request.document, request.predicate)
        if truth is None:
            truth = semantics.answer_boolean(request.predicate, visible)
            difficulty = 0.5
        else:
            difficulty = self.oracle.difficulty(request.document)
        task_key = f"judge|{request.predicate.lower()}"
        correct = quality.decide_correct(
            self.model, fingerprint, task_key, difficulty, request.context_fraction
        )
        return truth if correct else quality.corrupt_boolean(truth)

    # ------------------------------------------------------------------
    # Field extraction (semantic convert).
    # ------------------------------------------------------------------

    def extract(self, request: ExtractionRequest) -> LLMResponse:
        if not request.fields:
            raise InvalidRequestError("extraction request must name >= 1 field")
        fingerprint = fingerprint_text(request.document)
        cache_key = None
        if self.cache is not None:
            signature = "|".join(sorted(request.fields)) + (
                "|1:N" if request.one_to_many else "|1:1"
            )
            cache_key = CallCache.make_key(
                self.model.name, "extract", signature,
                fingerprint, request.context_fraction,
            )
            hit, value = self.cache.lookup(cache_key)
            if hit:
                return self._cache_hit_response(value, request.operation)
        replay_key = None
        if self.replay is not None:
            replay_key = ReplayLog.extract_key(
                self.model.name, request, fingerprint
            )
            entry = self.replay.lookup(replay_key)
            if entry is not None:
                return self._replayed_response(
                    entry, json.dumps(entry.value, default=str),
                    request.operation, replay_key,
                )
        visible = self._apply_context_fraction(
            request.document, request.context_fraction
        )
        payload = self._extract_payload(request, visible, fingerprint)
        text = json.dumps(payload, default=str)
        prompt = prompts.build_extract_prompt(
            request.fields, visible, request.schema_description,
            one_to_many=request.one_to_many,
        )
        usage = self._meter(prompt, text, request.operation)
        if cache_key is not None:
            self.cache.store(cache_key, payload)
        if replay_key is not None:
            self.replay.record(
                replay_key, payload, usage.input_tokens, usage.output_tokens
            )
        return LLMResponse(value=payload, text=text, usage=usage,
                           model=self.model.name)

    def _extract_payload(self, request: ExtractionRequest, visible: str,
                         fingerprint: str) -> Any:
        """The typed extraction answer (dict, or list of dicts for 1:N).

        Shared verbatim by the per-record and batched paths.
        """
        if request.one_to_many:
            return self._extract_instances(request, visible, fingerprint)
        return self._extract_single(request, visible, fingerprint)

    def _extract_single(self, request: ExtractionRequest, visible: str,
                        fingerprint: str) -> Dict[str, Any]:
        difficulty = self.oracle.difficulty(request.document)
        result: Dict[str, Any] = {}
        for name, desc in request.fields.items():
            known, true_value = self.oracle.field_truth(request.document, name)
            if not known:
                true_value = semantics.extract_field(name, desc, visible)
                doc_difficulty = 0.5
            else:
                doc_difficulty = difficulty
            task_key = f"extract|{name.lower()}"
            correct = quality.decide_correct(
                self.model, fingerprint, task_key, doc_difficulty,
                request.context_fraction,
            )
            if correct:
                result[name] = true_value
            else:
                result[name] = quality.corrupt_value(
                    self.model, fingerprint, task_key, true_value
                )
        return result

    def _extract_instances(self, request: ExtractionRequest, visible: str,
                           fingerprint: str) -> List[Dict[str, Any]]:
        known, instances = self.oracle.field_truth(
            request.document, "__instances__"
        )
        if known and isinstance(instances, list):
            difficulty = self.oracle.difficulty(request.document)
            out: List[Dict[str, Any]] = []
            for idx, instance in enumerate(instances):
                task_key = f"instance|{idx}"
                keep = quality.decide_correct(
                    self.model, fingerprint, task_key, difficulty,
                    request.context_fraction,
                )
                if not keep:
                    continue
                row: Dict[str, Any] = {}
                for name, desc in request.fields.items():
                    true_value = instance.get(name)
                    field_key = f"instance|{idx}|{name.lower()}"
                    correct = quality.decide_correct(
                        self.model, fingerprint, field_key, difficulty,
                        request.context_fraction,
                    )
                    row[name] = (
                        true_value
                        if correct
                        else quality.corrupt_value(
                            self.model, fingerprint, field_key, true_value
                        )
                    )
                out.append(row)
            return out
        # Unknown document: heuristics produce at most one instance.
        single = self._extract_single(request, visible, fingerprint)
        return [single] if any(v is not None for v in single.values()) else []

    # ------------------------------------------------------------------
    # Batched calls.
    #
    # A batch produces byte-identical answers and token/cost accounting to
    # issuing the requests one by one: answers are pure functions of
    # (model, document, task), and the tokenizer never matches across
    # whitespace so prompt token counts are exactly additive over the
    # (prefix, document, suffix) split.  What a batch saves is *real* work
    # — the prompt string is never materialized and the shared prefix /
    # suffix are tokenized once per batch instead of once per record — and
    # *simulated* per-call overhead: every request after the first priced
    # one amortizes the model's fixed ``overhead_seconds``.
    # ------------------------------------------------------------------

    def run_batch(
        self, requests: Sequence[Union[BooleanRequest, ExtractionRequest]]
    ) -> List[LLMResponse]:
        """Answer a batch of judge/extract requests in order.

        Returns one :class:`LLMResponse` per request, in request order.
        """
        responses: List[LLMResponse] = []
        filter_parts: Dict[str, Tuple[int, int]] = {}
        extract_parts: Dict[Any, Tuple[int, int]] = {}
        overhead_paid = False
        for request in requests:
            if isinstance(request, BooleanRequest):
                response, priced = self._judge_batched(
                    request, filter_parts, overhead_paid
                )
            elif isinstance(request, ExtractionRequest):
                response, priced = self._extract_batched(
                    request, extract_parts, overhead_paid
                )
            else:
                raise InvalidRequestError(
                    f"run_batch cannot handle {type(request).__name__}"
                )
            overhead_paid = overhead_paid or priced
            responses.append(response)
        return responses

    def judge_batch(self, requests: Sequence[BooleanRequest]) -> List[LLMResponse]:
        """Batched :meth:`judge`; same answers, amortized overhead."""
        return self.run_batch(requests)

    def extract_batch(
        self, requests: Sequence[ExtractionRequest]
    ) -> List[LLMResponse]:
        """Batched :meth:`extract`; same answers, amortized overhead."""
        return self.run_batch(requests)

    def _judge_batched(
        self, request: BooleanRequest,
        parts_memo: Dict[str, Tuple[int, int]], overhead_paid: bool,
    ) -> Tuple[LLMResponse, bool]:
        """(response, priced?) for one request inside a batch."""
        if not request.predicate.strip():
            raise InvalidRequestError("filter predicate must be non-empty")
        fingerprint = fingerprint_text(request.document)
        cache_key = None
        if self.cache is not None:
            cache_key = CallCache.make_key(
                self.model.name, "judge", request.predicate.lower(),
                fingerprint, request.context_fraction,
            )
            hit, value = self.cache.lookup(cache_key)
            if hit:
                return self._cache_hit_response(value, request.operation), False
        replay_key = None
        if self.replay is not None:
            replay_key = ReplayLog.judge_key(
                self.model.name, request, fingerprint
            )
            entry = self.replay.lookup(replay_key)
            if entry is not None:
                # A replayed call is *priced* (it charges the cold
                # accounting), so it pays/amortizes overhead like one.
                response = self._replayed_response(
                    entry, "TRUE" if entry.value else "FALSE",
                    request.operation, replay_key,
                    amortize_overhead=overhead_paid,
                )
                return response, True
        visible = self._apply_context_fraction(
            request.document, request.context_fraction
        )
        answer = self._judge_answer(request, fingerprint, visible)
        text = "TRUE" if answer else "FALSE"
        parts = parts_memo.get(request.predicate)
        if parts is None:
            prefix, suffix = prompts.filter_prompt_parts(request.predicate)
            parts = (count_tokens(prefix), count_tokens(suffix))
            parts_memo[request.predicate] = parts
        input_tokens = parts[0] + count_tokens(visible) + parts[1]
        usage = self._meter_tokens(
            input_tokens, text, request.operation,
            amortize_overhead=overhead_paid,
        )
        if cache_key is not None:
            self.cache.store(cache_key, answer)
        if replay_key is not None:
            self.replay.record(
                replay_key, answer, usage.input_tokens, usage.output_tokens
            )
        response = LLMResponse(value=answer, text=text, usage=usage,
                               model=self.model.name)
        return response, True

    def _extract_batched(
        self, request: ExtractionRequest,
        parts_memo: Dict[Any, Tuple[int, int]], overhead_paid: bool,
    ) -> Tuple[LLMResponse, bool]:
        """(response, priced?) for one request inside a batch."""
        if not request.fields:
            raise InvalidRequestError("extraction request must name >= 1 field")
        fingerprint = fingerprint_text(request.document)
        cache_key = None
        if self.cache is not None:
            signature = "|".join(sorted(request.fields)) + (
                "|1:N" if request.one_to_many else "|1:1"
            )
            cache_key = CallCache.make_key(
                self.model.name, "extract", signature,
                fingerprint, request.context_fraction,
            )
            hit, value = self.cache.lookup(cache_key)
            if hit:
                return self._cache_hit_response(value, request.operation), False
        replay_key = None
        if self.replay is not None:
            replay_key = ReplayLog.extract_key(
                self.model.name, request, fingerprint
            )
            entry = self.replay.lookup(replay_key)
            if entry is not None:
                response = self._replayed_response(
                    entry, json.dumps(entry.value, default=str),
                    request.operation, replay_key,
                    amortize_overhead=overhead_paid,
                )
                return response, True
        visible = self._apply_context_fraction(
            request.document, request.context_fraction
        )
        payload = self._extract_payload(request, visible, fingerprint)
        text = json.dumps(payload, default=str)
        parts_key = (
            tuple(request.fields.items()), request.schema_description,
            request.one_to_many,
        )
        parts = parts_memo.get(parts_key)
        if parts is None:
            prefix, suffix = prompts.extract_prompt_parts(
                request.fields, request.schema_description,
                one_to_many=request.one_to_many,
            )
            parts = (count_tokens(prefix), count_tokens(suffix))
            parts_memo[parts_key] = parts
        input_tokens = parts[0] + count_tokens(visible) + parts[1]
        usage = self._meter_tokens(
            input_tokens, text, request.operation,
            amortize_overhead=overhead_paid,
        )
        if cache_key is not None:
            self.cache.store(cache_key, payload)
        if replay_key is not None:
            self.replay.record(
                replay_key, payload, usage.input_tokens, usage.output_tokens
            )
        response = LLMResponse(value=payload, text=text, usage=usage,
                               model=self.model.name)
        return response, True

    # ------------------------------------------------------------------
    # Free-form completions (chat agent reasoning).
    # ------------------------------------------------------------------

    def complete(self, request: CompletionRequest) -> LLMResponse:
        if not request.prompt.strip():
            raise InvalidRequestError("completion prompt must be non-empty")
        # The deterministic agent brain supplies the semantic content of the
        # completion; the client only meters a plausible-size answer.
        text = semantics.summarize(request.prompt, max_sentences=1)
        text = truncate_to_tokens(text, request.max_output_tokens)
        usage = self._meter(request.prompt, text or "OK", request.operation)
        return LLMResponse(value=text, text=text, usage=usage,
                           model=self.model.name)
