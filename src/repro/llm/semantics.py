"""Heuristic semantic engine: the "brains" behind the simulated LLM.

When the ground-truth oracle has no entry for a document (e.g. a user brings
their own files), the simulated client falls back to this deterministic NLP
engine.  It is intentionally simple — keyword matching for boolean predicates
and a pattern library for field extraction — but it covers the document
shapes our corpora and examples produce, and it means the system remains
usable on arbitrary text rather than only on pre-registered corpora.
"""

from __future__ import annotations

import re
from typing import Any, List, Optional

# Words that carry no signal when matching a predicate against a document.
_STOPWORDS = frozenset(
    """a an and are as at be been but by for from has have in is it its of on
    or that the their there these they this to was were which with will would
    about papers paper documents document records record contains contain
    mention mentions mentioning discussing discusses discuss regarding
    related concerning describes describe present presents are is""".split()
)

_NEGATIONS = ("not ", "no ", "never ", "without ", "exclude", "n't ")


def _content_words(text: str) -> List[str]:
    return [
        w
        for w in re.findall(r"[a-z0-9][a-z0-9\-]+", text.lower())
        if w not in _STOPWORDS
    ]


def answer_boolean(predicate: str, text: str) -> bool:
    """Judge a natural-language predicate against a document heuristically.

    Strategy: strip stopwords from the predicate, then require that a
    majority of the remaining content words (and all quoted phrases) appear
    in the document.  A leading negation flips the verdict.
    """
    predicate = predicate.strip()
    if not predicate:
        return True

    negated = any(neg in predicate.lower() for neg in _NEGATIONS)
    haystack = text.lower()

    # Quoted phrases must match verbatim.
    phrases = re.findall(r'"([^"]+)"', predicate) + re.findall(
        r"'([^']+)'", predicate
    )
    phrase_hits = [phrase.lower() in haystack for phrase in phrases]
    if phrases and not all(phrase_hits):
        return negated

    words = _content_words(predicate)
    if not words:
        return not negated
    hits = sum(1 for w in words if w in haystack)
    satisfied = hits >= max(1, (len(words) + 1) // 2)
    return satisfied != negated


# ---------------------------------------------------------------------------
# Field extraction pattern library.
# ---------------------------------------------------------------------------

_URL_RE = re.compile(r"https?://[^\s)\]>,\"']+")
_EMAIL_RE = re.compile(r"[A-Za-z0-9._%+-]+@[A-Za-z0-9.-]+\.[A-Za-z]{2,}")
_MONEY_RE = re.compile(r"\$\s?([0-9][0-9,]*(?:\.[0-9]+)?)\s*(million|m|k|thousand|billion)?", re.I)
_NUMBER_RE = re.compile(r"(?<![\w.])(-?\d[\d,]*(?:\.\d+)?)(?![\w.])")
_DATE_RE = re.compile(
    r"\b(?:Jan|Feb|Mar|Apr|May|Jun|Jul|Aug|Sep|Oct|Nov|Dec)[a-z]*\.?\s+\d{1,2},?\s+\d{4}"
    r"|\b\d{4}-\d{2}-\d{2}\b",
    re.I,
)
_TITLE_RE = re.compile(r"^\s*(?:Title|TITLE)\s*[:\-]\s*(.+)$", re.M)
_AUTHOR_RE = re.compile(r"^\s*(?:Authors?|AUTHORS?)\s*[:\-]\s*(.+)$", re.M)

# Labelled-line extraction: "Field Name: value" lines inside documents.
def _labelled_value(field_name: str, text: str) -> Optional[str]:
    variants = {
        field_name,
        field_name.replace("_", " "),
        field_name.replace("_", "-"),
        field_name.title(),
        field_name.replace("_", " ").title(),
        field_name.upper(),
    }
    for variant in sorted(variants):
        pattern = re.compile(
            r"^\s*" + re.escape(variant) + r"\s*[:\-]\s*(.+)$", re.M | re.I
        )
        match = pattern.search(text)
        if match:
            return match.group(1).strip()
    return None


def _first_sentence(text: str) -> str:
    stripped = text.strip()
    match = re.search(r"[.!?](\s|$)", stripped)
    return stripped[: match.start() + 1] if match else stripped[:200]


def extract_field(field_name: str, description: str, text: str) -> Any:
    """Extract one field value from ``text`` heuristically.

    Dispatches on the field name / description: URLs, emails, dates, money,
    counts, titles, authors; otherwise falls back to labelled ``Name: value``
    lines, then to the first sentence of the document.
    Returns ``None`` when nothing plausible is found.
    """
    name = field_name.lower()
    desc = (description or "").lower()
    hint = f"{name} {desc}"

    labelled = _labelled_value(field_name, text)
    if labelled is not None:
        return labelled

    if "url" in hint or "link" in hint or "website" in hint:
        match = _URL_RE.search(text)
        return match.group(0).rstrip(".") if match else None
    if "email" in hint or "e-mail" in hint:
        match = _EMAIL_RE.search(text)
        return match.group(0) if match else None
    if "date" in hint or "deadline" in hint:
        match = _DATE_RE.search(text)
        return match.group(0) if match else None
    if "price" in hint or "cost" in hint or "amount" in hint or "salary" in hint:
        match = _MONEY_RE.search(text)
        return match.group(0) if match else None
    if "count" in hint or "number of" in hint or name.startswith("num_"):
        match = _NUMBER_RE.search(text)
        return match.group(1).replace(",", "") if match else None
    if "title" in hint:
        match = _TITLE_RE.search(text)
        return match.group(1).strip() if match else _first_sentence(text)
    if "author" in hint:
        match = _AUTHOR_RE.search(text)
        return match.group(1).strip() if match else None
    if "summary" in hint or "description" in hint or "abstract" in hint:
        return _first_sentence(text)
    if "name" in hint:
        # Look for 'the <Proper Noun Phrase> dataset/corpus/project'.
        match = re.search(
            r"\b[Tt]he\s+((?:[A-Z][\w\-]*\s*){1,5})(?:dataset|corpus|database|project)",
            text,
        )
        if match:
            return match.group(1).strip()
        return None
    return None


def extract_all_urls(text: str) -> List[str]:
    return [m.group(0).rstrip(".") for m in _URL_RE.finditer(text)]


def summarize(text: str, max_sentences: int = 2) -> str:
    """A deterministic extractive 'summary': the first N sentences."""
    sentences = re.split(r"(?<=[.!?])\s+", text.strip())
    return " ".join(sentences[:max_sentences])
