"""The seeded, quality-dependent error process.

The point of simulating multiple models is that they disagree in a structured
way: a 0.96-quality model should almost always return the true answer, a
0.72-quality model should make regular mistakes, and *which* records each
model gets wrong must be deterministic — independent of execution order, plan
shape, or parallelism — or the optimizer benchmarks would not be reproducible.

We achieve that by seeding a private RNG with a hash of
``(model name, document fingerprint, task key)``.  Error probability is
``(1 - model.quality) * difficulty_scale(document)``; easy documents (our
curated corpora) are mostly below every good model's threshold, hard
documents expose the gap between tiers.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, List, Optional

from repro.llm.models import ModelCard


def _seeded_rng(model_name: str, fingerprint: str, task_key: str) -> random.Random:
    material = f"{model_name}|{fingerprint}|{task_key}".encode("utf-8")
    seed = int.from_bytes(hashlib.sha256(material).digest()[:8], "big")
    return random.Random(seed)


def error_probability(model: ModelCard, difficulty: float,
                      context_fraction: float = 1.0) -> float:
    """Probability this model answers this document's task incorrectly.

    ``context_fraction`` < 1 models token-reduction operators that truncate
    the prompt: less context, more errors.
    """
    difficulty = min(max(difficulty, 0.0), 1.0)
    context_fraction = min(max(context_fraction, 0.0), 1.0)
    base = (1.0 - model.quality) * (0.25 + 1.5 * difficulty)
    truncation_penalty = (1.0 - context_fraction) * 0.45
    return min(0.95, base + truncation_penalty)


def decide_correct(model: ModelCard, fingerprint: str, task_key: str,
                   difficulty: float, context_fraction: float = 1.0) -> bool:
    """Deterministically decide whether this call returns the true answer."""
    rng = _seeded_rng(model.name, fingerprint, task_key)
    return rng.random() >= error_probability(model, difficulty, context_fraction)


def corrupt_boolean(true_value: bool) -> bool:
    return not true_value


def corrupt_value(model: ModelCard, fingerprint: str, task_key: str,
                  true_value: Any) -> Any:
    """Produce a plausible wrong answer for an extraction task.

    Mistake modes mirror real failure cases: dropping the value entirely
    (hallucinated "not found"), mangling a string, or perturbing a number.
    """
    rng = _seeded_rng(model.name, fingerprint, task_key + "|corrupt")
    mode = rng.random()
    if true_value is None or mode < 0.45:
        return None
    if isinstance(true_value, bool):
        return not true_value
    if isinstance(true_value, (int, float)):
        scale = 1.0 + rng.choice([-0.5, -0.1, 0.1, 0.5, 1.0])
        return type(true_value)(true_value * scale)
    if isinstance(true_value, str):
        if mode < 0.7 and len(true_value) > 6:
            # Truncate mid-string: a classic partial extraction.
            cut = rng.randint(3, max(4, len(true_value) // 2))
            return true_value[:cut].rstrip()
        return true_value.upper() if true_value != true_value.upper() else true_value.lower()
    if isinstance(true_value, list):
        if not true_value:
            return None
        keep = rng.randint(0, max(0, len(true_value) - 1))
        return list(true_value[:keep]) or None
    return None


def corrupt_list(model: ModelCard, fingerprint: str, task_key: str,
                 true_values: List[Any]) -> List[Any]:
    """Drop or mangle entries of a one-to-many extraction."""
    rng = _seeded_rng(model.name, fingerprint, task_key + "|list")
    if not true_values:
        return []
    kept = [v for v in true_values if rng.random() > 0.5]
    return kept
