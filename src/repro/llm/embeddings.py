"""Deterministic text embeddings.

A feature-hashing bag-of-words embedding: each content word hashes to a
coordinate and a sign, the document vector is the normalized sum.  It is not
a neural embedding, but it has the property the system actually needs —
documents that share vocabulary land close together — so semantic top-k
retrieval and the cheap embedding-based filter variant behave sensibly.
"""

from __future__ import annotations

import hashlib
import re
from typing import List, Optional, Sequence

import numpy as np

from repro.llm.clock import VirtualClock
from repro.llm.models import ModelCard, default_registry
from repro.llm.tokenizer import count_tokens
from repro.llm.usage import LLMUsage, UsageLedger

DEFAULT_DIM = 1024

_WORD_RE = re.compile(r"[a-z0-9][a-z0-9\-]+")


def _hash_word(word: str) -> int:
    return int.from_bytes(
        hashlib.blake2b(word.encode("utf-8"), digest_size=8).digest(), "big"
    )


def embed_text(text: str, dim: int = DEFAULT_DIM) -> np.ndarray:
    """Embed ``text`` into a unit vector of dimension ``dim``."""
    if dim <= 0:
        raise ValueError(f"embedding dimension must be positive, got {dim}")
    vector = np.zeros(dim, dtype=np.float64)
    for word in _WORD_RE.findall(text.lower()):
        h = _hash_word(word)
        index = h % dim
        sign = 1.0 if (h >> 63) & 1 else -1.0
        vector[index] += sign
    norm = np.linalg.norm(vector)
    if norm > 0:
        vector /= norm
    return vector


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two vectors (0.0 if either is zero)."""
    na, nb = np.linalg.norm(a), np.linalg.norm(b)
    if na == 0 or nb == 0:
        return 0.0
    return float(np.dot(a, b) / (na * nb))


class EmbeddingModel:
    """Metered wrapper around :func:`embed_text`.

    Charges the embedding model card's per-token price and advances the
    virtual clock, so retrieval operators participate in cost accounting.
    With a :class:`~repro.llm.cache.CallCache` attached, repeated
    embeddings of the same text are free (vector stores are cheap to keep).
    """

    def __init__(
        self,
        model: Optional[ModelCard] = None,
        dim: int = DEFAULT_DIM,
        clock: Optional[VirtualClock] = None,
        ledger: Optional[UsageLedger] = None,
        cache=None,
    ):
        if model is None:
            candidates = default_registry().embedding_models()
            if not candidates:
                raise ValueError("no embedding model registered")
            model = candidates[0]
        self.model = model
        self.dim = dim
        self.clock = clock
        self.ledger = ledger
        self.cache = cache

    def _meter(self, tokens: int, cost: float, latency: float,
               operation: str) -> None:
        timestamp = self.clock.advance(latency) if self.clock else 0.0
        if self.ledger is not None:
            self.ledger.record(
                LLMUsage(
                    model=self.model.name,
                    input_tokens=tokens,
                    output_tokens=0,
                    cost_usd=cost,
                    latency_seconds=latency,
                    operation=operation,
                    virtual_timestamp=timestamp,
                )
            )

    def embed(self, text: str, operation: str = "embed") -> np.ndarray:
        cache_key = None
        if self.cache is not None:
            from repro.llm.cache import CallCache
            from repro.llm.oracle import fingerprint_text

            cache_key = CallCache.make_key(
                self.model.name, "embed", str(self.dim),
                fingerprint_text(text),
            )
            hit, vector = self.cache.lookup(cache_key)
            if hit:
                from repro.llm.cache import CallCache as _CC

                self._meter(0, 0.0, _CC.HIT_LATENCY_SECONDS,
                            f"{operation}:cached")
                return vector
        tokens = count_tokens(text)
        self._meter(
            tokens,
            self.model.cost_usd(tokens, 0),
            self.model.latency_seconds(tokens, 0),
            operation,
        )
        vector = embed_text(text, self.dim)
        if cache_key is not None:
            self.cache.store(cache_key, vector)
        return vector

    def embed_batch(self, texts: Sequence[str],
                    operation: str = "embed") -> List[np.ndarray]:
        return [self.embed(t, operation=operation) for t in texts]

    def similarity(self, query: str, document: str) -> float:
        return cosine_similarity(self.embed(query), self.embed(document))
