"""Prompt construction for simulated semantic operators.

Even though no remote model ever sees these prompts, we build them anyway:
token counts of the *actual prompt text* are what drive cost and latency
accounting, so the simulation's economics respond to the same knobs a real
deployment's would (context length, number of fields per call, instruction
overhead).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

FILTER_SYSTEM_PROMPT = (
    "You are a precise data analyst. Decide whether the document below "
    "satisfies the stated condition. Answer with exactly TRUE or FALSE."
)

EXTRACT_SYSTEM_PROMPT = (
    "You are a precise information extraction engine. Read the document and "
    "output a JSON object with the requested fields. Use null for fields "
    "that are not present. Do not invent values."
)

ONE_TO_MANY_SUFFIX = (
    "The document may describe multiple such objects; output a JSON array "
    "with one object per instance."
)


def filter_prompt_parts(predicate: str) -> Tuple[str, str]:
    """(prefix, suffix) such that ``prefix + document + suffix`` equals
    :func:`build_filter_prompt` for any document.

    Batched execution counts the prefix/suffix tokens once per batch and
    only the document tokens per record; the tokenizer never matches across
    whitespace, and both boundaries here are whitespace, so the split token
    counts are exactly additive.
    """
    prefix = (
        f"{FILTER_SYSTEM_PROMPT}\n\n"
        f"Condition: {predicate}\n\n"
        f"Document:\n"
    )
    suffix = "\n\nAnswer (TRUE or FALSE):"
    return prefix, suffix


def build_filter_prompt(predicate: str, document: str) -> str:
    prefix, suffix = filter_prompt_parts(predicate)
    return f"{prefix}{document}{suffix}"


def extract_prompt_parts(
    field_descriptions: Dict[str, str],
    schema_description: str = "",
    one_to_many: bool = False,
) -> Tuple[str, str]:
    """(prefix, suffix) such that ``prefix + document + suffix`` equals
    :func:`build_extract_prompt` for any document (same additivity contract
    as :func:`filter_prompt_parts`)."""
    field_lines = "\n".join(
        f"- {name}: {desc or 'no description provided'}"
        for name, desc in field_descriptions.items()
    )
    parts = [EXTRACT_SYSTEM_PROMPT]
    if schema_description:
        parts.append(f"Target schema: {schema_description}")
    parts.append(f"Fields to extract:\n{field_lines}")
    if one_to_many:
        parts.append(ONE_TO_MANY_SUFFIX)
    prefix = "\n\n".join(parts) + "\n\nDocument:\n"
    suffix = "\n\nJSON output:"
    return prefix, suffix


def build_extract_prompt(
    field_descriptions: Dict[str, str],
    document: str,
    schema_description: str = "",
    one_to_many: bool = False,
) -> str:
    prefix, suffix = extract_prompt_parts(
        field_descriptions, schema_description, one_to_many=one_to_many
    )
    return f"{prefix}{document}{suffix}"


def build_agent_prompt(system: str, tools_block: str, scratchpad: str,
                       user_message: str) -> str:
    return (
        f"{system}\n\nAvailable tools:\n{tools_block}\n\n"
        f"Conversation so far:\n{scratchpad}\n\nUser: {user_message}\n"
        f"Thought:"
    )


def estimate_output_tokens_for_fields(field_names: Sequence[str],
                                      instances: int = 1) -> int:
    """Rough completion size for a JSON extraction answer.

    ~12 tokens per field (key, punctuation, value) plus array overhead.
    """
    per_instance = 4 + 12 * max(1, len(field_names))
    return per_instance * max(1, instances)
