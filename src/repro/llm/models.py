"""Model cards and the model registry.

Each simulated model is described by a :class:`ModelCard` whose prices and
speeds are calibrated to public mid-2024 price sheets, and whose ``quality``
tier drives the seeded error process in :mod:`repro.llm.quality`.  The
registry is what gives the Palimpzest optimizer a physical plan space: every
semantic logical operator (filter / convert) has one physical implementation
per *capable* registered model.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional


@dataclass(frozen=True)
class ModelCard:
    """Static description of a simulated LLM.

    Attributes:
        name: Unique model identifier, e.g. ``"gpt-4o"``.
        provider: Vendor label, for display only.
        usd_per_1m_input: Price in USD per million prompt tokens.
        usd_per_1m_output: Price in USD per million completion tokens.
        prefill_tokens_per_second: How fast the model ingests prompt tokens.
        decode_tokens_per_second: How fast the model emits completion tokens.
        overhead_seconds: Fixed per-call overhead (network + queueing).
        quality: Quality tier in ``[0, 1]``; drives the error process.
        context_window: Maximum prompt tokens accepted in one call.
        supports_reasoning: Whether the model is capable enough to drive the
            ReAct chat agent (only top-tier models are).
        is_embedding_model: Embedding models are priced per input token only
            and are not eligible for filter/convert physical operators.
    """

    name: str
    provider: str
    usd_per_1m_input: float
    usd_per_1m_output: float
    prefill_tokens_per_second: float = 2500.0
    decode_tokens_per_second: float = 40.0
    overhead_seconds: float = 0.8
    quality: float = 0.8
    context_window: int = 128_000
    supports_reasoning: bool = False
    is_embedding_model: bool = False
    tags: tuple = field(default_factory=tuple)

    def __post_init__(self):
        if not self.name:
            raise ValueError("model name must be non-empty")
        if not 0.0 <= self.quality <= 1.0:
            raise ValueError(f"quality must be in [0, 1], got {self.quality}")
        if self.usd_per_1m_input < 0 or self.usd_per_1m_output < 0:
            raise ValueError("model prices must be non-negative")
        if self.prefill_tokens_per_second <= 0 or self.decode_tokens_per_second <= 0:
            raise ValueError("token rates must be positive")
        if self.context_window <= 0:
            raise ValueError("context window must be positive")

    def cost_usd(self, input_tokens: int, output_tokens: int) -> float:
        """Dollar cost of one call with the given token counts."""
        if input_tokens < 0 or output_tokens < 0:
            raise ValueError("token counts must be non-negative")
        return (
            input_tokens * self.usd_per_1m_input
            + output_tokens * self.usd_per_1m_output
        ) / 1_000_000.0

    def latency_seconds(self, input_tokens: int, output_tokens: int) -> float:
        """Simulated latency of one call with the given token counts."""
        if input_tokens < 0 or output_tokens < 0:
            raise ValueError("token counts must be non-negative")
        return (
            self.overhead_seconds
            + input_tokens / self.prefill_tokens_per_second
            + output_tokens / self.decode_tokens_per_second
        )

    def with_quality(self, quality: float) -> "ModelCard":
        """Return a copy of this card with a different quality tier."""
        return replace(self, quality=quality)


# ---------------------------------------------------------------------------
# Default model catalogue.
#
# Prices/speeds are calibrated to published mid-2024 price sheets; they are
# inputs to the simulation, not claims about current vendor pricing.  Quality
# tiers are ordered the way public leaderboards ordered these models.
# ---------------------------------------------------------------------------

DEFAULT_MODEL_CARDS: List[ModelCard] = [
    ModelCard(
        name="gpt-4o",
        provider="openai",
        usd_per_1m_input=2.50,
        usd_per_1m_output=10.00,
        prefill_tokens_per_second=2200.0,
        decode_tokens_per_second=55.0,
        overhead_seconds=3.0,
        quality=0.96,
        supports_reasoning=True,
        tags=("frontier",),
    ),
    ModelCard(
        name="gpt-4o-mini",
        provider="openai",
        usd_per_1m_input=0.15,
        usd_per_1m_output=0.60,
        prefill_tokens_per_second=3800.0,
        decode_tokens_per_second=85.0,
        overhead_seconds=0.6,
        quality=0.84,
        supports_reasoning=True,
        tags=("cheap",),
    ),
    ModelCard(
        name="llama-3-70b",
        provider="together",
        usd_per_1m_input=0.90,
        usd_per_1m_output=0.90,
        prefill_tokens_per_second=2800.0,
        decode_tokens_per_second=65.0,
        overhead_seconds=0.7,
        quality=0.90,
        tags=("open",),
    ),
    ModelCard(
        name="llama-3-8b",
        provider="together",
        usd_per_1m_input=0.20,
        usd_per_1m_output=0.20,
        prefill_tokens_per_second=5200.0,
        decode_tokens_per_second=120.0,
        overhead_seconds=0.4,
        quality=0.72,
        tags=("open", "cheap"),
    ),
    ModelCard(
        name="mixtral-8x7b",
        provider="together",
        usd_per_1m_input=0.60,
        usd_per_1m_output=0.60,
        prefill_tokens_per_second=3500.0,
        decode_tokens_per_second=90.0,
        overhead_seconds=0.5,
        quality=0.78,
        tags=("open",),
    ),
    ModelCard(
        name="text-embedding-3-small",
        provider="openai",
        usd_per_1m_input=0.02,
        usd_per_1m_output=0.0,
        prefill_tokens_per_second=12_000.0,
        decode_tokens_per_second=1.0,
        overhead_seconds=0.15,
        quality=0.70,
        is_embedding_model=True,
        tags=("embedding",),
    ),
]


class ModelRegistry:
    """A mutable, thread-safe collection of model cards.

    The default registry is process-global (like an API key ring); tests and
    benchmarks can construct private registries to control the plan space.
    """

    _GUARDED_BY = {"_cards": "_lock"}

    def __init__(self, cards: Optional[Iterable[ModelCard]] = None):
        self._lock = threading.Lock()
        self._cards: Dict[str, ModelCard] = {}
        for card in cards or []:
            self.register(card)

    def register(self, card: ModelCard, overwrite: bool = False) -> None:
        with self._lock:
            if card.name in self._cards and not overwrite:
                raise ValueError(f"model {card.name!r} is already registered")
            self._cards[card.name] = card

    def unregister(self, name: str) -> None:
        with self._lock:
            if name not in self._cards:
                raise KeyError(f"model {name!r} is not registered")
            del self._cards[name]

    def get(self, name: str) -> ModelCard:
        with self._lock:
            try:
                return self._cards[name]
            except KeyError:
                known = ", ".join(sorted(self._cards)) or "<none>"
                raise KeyError(
                    f"unknown model {name!r}; registered models: {known}"
                ) from None

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._cards

    def __len__(self) -> int:
        with self._lock:
            return len(self._cards)

    def chat_models(self) -> List[ModelCard]:
        """Models eligible for filter/convert physical operators."""
        with self._lock:
            cards = [c for c in self._cards.values() if not c.is_embedding_model]
        return sorted(cards, key=lambda c: (-c.quality, c.name))

    def embedding_models(self) -> List[ModelCard]:
        with self._lock:
            cards = [c for c in self._cards.values() if c.is_embedding_model]
        return sorted(cards, key=lambda c: c.name)

    def reasoning_models(self) -> List[ModelCard]:
        """Models capable of driving the chat agent's ReAct loop."""
        return [c for c in self.chat_models() if c.supports_reasoning]

    def all_cards(self) -> List[ModelCard]:
        with self._lock:
            return sorted(self._cards.values(), key=lambda c: c.name)

    def copy(self) -> "ModelRegistry":
        return ModelRegistry(self.all_cards())


_default_registry = ModelRegistry(DEFAULT_MODEL_CARDS)


def default_registry() -> ModelRegistry:
    """The process-global model registry."""
    return _default_registry


def get_model(name: str) -> ModelCard:
    """Look up a model card in the global registry."""
    return _default_registry.get(name)


def register_model(card: ModelCard, overwrite: bool = False) -> None:
    """Add a model card to the global registry."""
    _default_registry.register(card, overwrite=overwrite)


def available_models() -> List[str]:
    """Names of all chat-capable models in the global registry."""
    return [c.name for c in _default_registry.chat_models()]
