"""Usage records and the usage ledger.

Every simulated LLM call produces an :class:`LLMUsage` record; a
:class:`UsageLedger` aggregates them per model and per logical operation so
execution statistics (Fig. 5 of the paper) can report exact token counts,
dollar costs, and call counts.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional


@dataclass(frozen=True)
class LLMUsage:
    """One simulated LLM call's accounting record."""

    model: str
    input_tokens: int
    output_tokens: int
    cost_usd: float
    latency_seconds: float
    operation: str = ""  # e.g. "filter", "convert:ClinicalData", "agent"
    virtual_timestamp: float = 0.0

    @property
    def total_tokens(self) -> int:
        return self.input_tokens + self.output_tokens


@dataclass
class UsageTotals:
    """Aggregated usage for one grouping key."""

    calls: int = 0
    input_tokens: int = 0
    output_tokens: int = 0
    cost_usd: float = 0.0
    latency_seconds: float = 0.0

    def add(self, usage: LLMUsage) -> None:
        self.calls += 1
        self.input_tokens += usage.input_tokens
        self.output_tokens += usage.output_tokens
        self.cost_usd += usage.cost_usd
        self.latency_seconds += usage.latency_seconds

    def merge(self, other: "UsageTotals") -> None:
        self.calls += other.calls
        self.input_tokens += other.input_tokens
        self.output_tokens += other.output_tokens
        self.cost_usd += other.cost_usd
        self.latency_seconds += other.latency_seconds

    @property
    def total_tokens(self) -> int:
        return self.input_tokens + self.output_tokens


class UsageLedger:
    """Collects :class:`LLMUsage` records and aggregates them.

    A ledger is attached to an execution context; operators record into it and
    the final :class:`~repro.execution.stats.ExecutionStats` summarizes it.

    Thread-safety contract: :meth:`record` may be called concurrently from
    real worker threads; the record list is guarded by a lock.  To attribute
    records to the operator call that caused them — which the single-threaded
    executors do by slicing the ledger before/after a call, a technique that
    breaks under interleaving — a thread can wrap a call in :meth:`capture`:
    records produced *by that thread* inside the block are additionally
    appended to the capture list.
    """

    _GUARDED_BY = {"_records": "_lock"}

    def __init__(self):
        self._records: List[LLMUsage] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    def record(self, usage: LLMUsage) -> None:
        with self._lock:
            self._records.append(usage)
        captures = getattr(self._local, "captures", None)
        if captures:
            for bucket in captures:
                bucket.append(usage)

    def extend(self, usages: Iterable[LLMUsage]) -> None:
        for usage in usages:
            self.record(usage)

    @contextmanager
    def capture(self) -> Iterator[List[LLMUsage]]:
        """Collect the records this thread produces inside the block.

        Captures nest: an inner capture's records also appear in the outer
        one, exactly like the slicing technique they replace.
        """
        bucket: List[LLMUsage] = []
        captures = getattr(self._local, "captures", None)
        if captures is None:
            captures = self._local.captures = []
        captures.append(bucket)
        try:
            yield bucket
        finally:
            captures.remove(bucket)

    @property
    def records(self) -> List[LLMUsage]:
        with self._lock:
            return list(self._records)

    def _canonical(self) -> List[LLMUsage]:
        """Records in an order that depends only on their multiset.

        Concurrent executors append in thread-arrival order, so float
        aggregation over ``records`` would drift by an ulp run-to-run.
        Sorting by the full value tuple makes every aggregate a pure
        function of *which* calls happened, not when they landed.
        """
        return sorted(
            self.records,
            key=lambda u: (u.model, u.operation, u.virtual_timestamp,
                           u.input_tokens, u.output_tokens, u.cost_usd,
                           u.latency_seconds),
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def total(self) -> UsageTotals:
        totals = UsageTotals()
        for usage in self._canonical():
            totals.add(usage)
        return totals

    def by_model(self) -> Dict[str, UsageTotals]:
        grouped: Dict[str, UsageTotals] = {}
        for usage in self._canonical():
            grouped.setdefault(usage.model, UsageTotals()).add(usage)
        return grouped

    def by_operation(self) -> Dict[str, UsageTotals]:
        grouped: Dict[str, UsageTotals] = {}
        for usage in self._canonical():
            grouped.setdefault(usage.operation, UsageTotals()).add(usage)
        return grouped

    def filtered(self, operation: Optional[str] = None,
                 model: Optional[str] = None) -> "UsageLedger":
        """A new ledger containing only the matching records."""
        ledger = UsageLedger()
        for usage in self.records:
            if operation is not None and usage.operation != operation:
                continue
            if model is not None and usage.model != model:
                continue
            ledger.record(usage)
        return ledger

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def summary_lines(self) -> List[str]:
        """Human-readable per-model summary (used in chat stats output)."""
        lines = []
        for model, totals in sorted(self.by_model().items()):
            lines.append(
                f"{model}: {totals.calls} calls, "
                f"{totals.input_tokens} in / {totals.output_tokens} out tokens, "
                f"${totals.cost_usd:.4f}"
            )
        return lines
