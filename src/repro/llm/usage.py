"""Usage records and the usage ledger.

Every simulated LLM call produces an :class:`LLMUsage` record; a
:class:`UsageLedger` aggregates them per model and per logical operation so
execution statistics (Fig. 5 of the paper) can report exact token counts,
dollar costs, and call counts.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional


@dataclass(frozen=True)
class LLMUsage:
    """One simulated LLM call's accounting record."""

    model: str
    input_tokens: int
    output_tokens: int
    cost_usd: float
    latency_seconds: float
    operation: str = ""  # e.g. "filter", "convert:ClinicalData", "agent"
    virtual_timestamp: float = 0.0

    @property
    def total_tokens(self) -> int:
        return self.input_tokens + self.output_tokens


@dataclass
class UsageTotals:
    """Aggregated usage for one grouping key."""

    calls: int = 0
    input_tokens: int = 0
    output_tokens: int = 0
    cost_usd: float = 0.0
    latency_seconds: float = 0.0

    def add(self, usage: LLMUsage) -> None:
        self.calls += 1
        self.input_tokens += usage.input_tokens
        self.output_tokens += usage.output_tokens
        self.cost_usd += usage.cost_usd
        self.latency_seconds += usage.latency_seconds

    def merge(self, other: "UsageTotals") -> None:
        self.calls += other.calls
        self.input_tokens += other.input_tokens
        self.output_tokens += other.output_tokens
        self.cost_usd += other.cost_usd
        self.latency_seconds += other.latency_seconds

    @property
    def total_tokens(self) -> int:
        return self.input_tokens + self.output_tokens


class QuotaExceededError(RuntimeError):
    """A spend cap was breached (raised *after* the breach is recorded).

    The breaching :class:`LLMUsage` is always charged to the
    :class:`BudgetMeter` before this error propagates, so accounting is
    never lost: the meter's totals include the partial run that aborted.
    """

    def __init__(self, message: str, *, spent_cost_usd: float = 0.0,
                 spent_tokens: int = 0,
                 max_cost_usd: Optional[float] = None,
                 max_tokens: Optional[int] = None):
        super().__init__(message)
        self.spent_cost_usd = spent_cost_usd
        self.spent_tokens = spent_tokens
        self.max_cost_usd = max_cost_usd
        self.max_tokens = max_tokens


class _MeterReading:
    """A point-in-time reading of a :class:`BudgetMeter`.

    Taken while the meter's lock is held, then used lock-free for cap
    checks and error messages — so one consistent (cost, tokens, caps)
    view backs each decision, never a torn mix of two updates.
    """

    __slots__ = ("cost_usd", "tokens", "max_cost_usd", "max_tokens")

    def __init__(self, cost_usd: float, tokens: int,
                 max_cost_usd: Optional[float],
                 max_tokens: Optional[int]):
        self.cost_usd = cost_usd
        self.tokens = tokens
        self.max_cost_usd = max_cost_usd
        self.max_tokens = max_tokens

    def over(self, strict: bool) -> bool:
        if self.max_cost_usd is not None:
            if (self.cost_usd > self.max_cost_usd if strict
                    else self.cost_usd >= self.max_cost_usd):
                return True
        if self.max_tokens is not None:
            if (self.tokens > self.max_tokens if strict
                    else self.tokens >= self.max_tokens):
                return True
        return False

    def raise_if(self, stage: str, strict: bool) -> None:
        if not self.over(strict):
            return
        raise QuotaExceededError(
            f"quota exhausted ({stage}): spent ${self.cost_usd:.6f} / "
            f"{self.tokens} tokens against caps "
            f"max_cost_usd={self.max_cost_usd}, "
            f"max_tokens={self.max_tokens}",
            spent_cost_usd=self.cost_usd,
            spent_tokens=self.tokens,
            max_cost_usd=self.max_cost_usd,
            max_tokens=self.max_tokens,
        )


class BudgetMeter:
    """Thread-safe cumulative spend tracker with optional hard caps.

    A meter outlives any single run: a tenant's meter is shared by every
    session and every pipeline execution of that tenant, so quotas apply
    to the *sum* of their spend.  Per-run :class:`UsageLedger` objects
    stay fresh (stats remain per-run); they :meth:`charge` the shared
    meter as records land.

    Cap semantics — a run that lands *exactly* at a cap succeeds:

    * :meth:`charge` raises :class:`QuotaExceededError` only when the
      accumulated spend goes strictly *over* a cap (the breaching usage
      is recorded first — no lost accounting);
    * :meth:`precheck` (the pre-turn gate) raises when no headroom
      remains (spent >= cap), so a fully consumed budget rejects the
      next turn before any work is spent;
    * :meth:`exceeded` reports whether a strict breach has happened —
      the cooperative abort checkpoint between operators polls it.
    """

    _GUARDED_BY = {
        "_cost_usd": "_lock", "_tokens": "_lock", "_calls": "_lock",
        "_max_cost_usd": "_lock", "_max_tokens": "_lock",
    }

    def __init__(self, max_cost_usd: Optional[float] = None,
                 max_tokens: Optional[int] = None):
        if max_cost_usd is not None and max_cost_usd < 0:
            raise ValueError(
                f"max_cost_usd must be >= 0, got {max_cost_usd}")
        if max_tokens is not None and max_tokens < 0:
            raise ValueError(f"max_tokens must be >= 0, got {max_tokens}")
        self._lock = threading.Lock()
        self._max_cost_usd = max_cost_usd
        self._max_tokens = max_tokens
        self._cost_usd = 0.0
        self._tokens = 0
        self._calls = 0

    # -- spending -------------------------------------------------------

    def charge(self, usage: LLMUsage) -> None:
        """Add one call's spend; raise if a cap is now strictly exceeded."""
        with self._lock:
            self._cost_usd += usage.cost_usd
            self._tokens += usage.total_tokens
            self._calls += 1
            reading = _MeterReading(
                self._cost_usd, self._tokens,
                self._max_cost_usd, self._max_tokens)
        reading.raise_if("charge", strict=True)

    def charge_totals(self, cost_usd: float, tokens: int,
                      calls: int = 0) -> None:
        """Restore previously persisted spend (no cap check — the spend
        already happened; the next precheck/charge enforces the cap)."""
        with self._lock:
            self._cost_usd += cost_usd
            self._tokens += tokens
            self._calls += calls

    def precheck(self) -> None:
        """Raise when no headroom remains (the pre-turn budget gate)."""
        self._reading().raise_if("precheck", strict=False)

    def exceeded(self) -> bool:
        """Has a cap been strictly breached?  (Cooperative checkpoint.)"""
        return self._reading().over(strict=True)

    def exhausted(self) -> bool:
        """Is the budget fully consumed (spent >= a cap)?"""
        return self._reading().over(strict=False)

    def _reading(self) -> "_MeterReading":
        with self._lock:
            return _MeterReading(
                self._cost_usd, self._tokens,
                self._max_cost_usd, self._max_tokens)

    # -- administration -------------------------------------------------

    def set_limits(self, max_cost_usd: Optional[float] = None,
                   max_tokens: Optional[int] = None) -> None:
        """Replace the caps (admin quota edit); ``None`` removes a cap.

        Raising a cap immediately unblocks a tenant whose turns were
        being rejected by :meth:`precheck`.
        """
        if max_cost_usd is not None and max_cost_usd < 0:
            raise ValueError(
                f"max_cost_usd must be >= 0, got {max_cost_usd}")
        if max_tokens is not None and max_tokens < 0:
            raise ValueError(f"max_tokens must be >= 0, got {max_tokens}")
        with self._lock:
            self._max_cost_usd = max_cost_usd
            self._max_tokens = max_tokens

    @property
    def spent_cost_usd(self) -> float:
        with self._lock:
            return self._cost_usd

    @property
    def spent_tokens(self) -> int:
        with self._lock:
            return self._tokens

    @property
    def calls(self) -> int:
        with self._lock:
            return self._calls

    def snapshot(self) -> Dict[str, Any]:
        """One consistent view of spend and caps (admin rollups)."""
        with self._lock:
            reading = _MeterReading(
                self._cost_usd, self._tokens,
                self._max_cost_usd, self._max_tokens)
            calls = self._calls
        remaining_cost = (
            None if reading.max_cost_usd is None
            else max(0.0, reading.max_cost_usd - reading.cost_usd)
        )
        remaining_tokens = (
            None if reading.max_tokens is None
            else max(0, reading.max_tokens - reading.tokens)
        )
        return {
            "spent_cost_usd": round(reading.cost_usd, 6),
            "spent_tokens": reading.tokens,
            "calls": calls,
            "max_cost_usd": reading.max_cost_usd,
            "max_tokens": reading.max_tokens,
            "remaining_cost_usd": (
                None if remaining_cost is None
                else round(remaining_cost, 6)
            ),
            "remaining_tokens": remaining_tokens,
            "exhausted": reading.over(strict=False),
        }

    def __repr__(self) -> str:
        snap = self.snapshot()
        return (
            f"BudgetMeter(spent=${snap['spent_cost_usd']:.4f}/"
            f"{snap['spent_tokens']}tok, caps=({snap['max_cost_usd']}, "
            f"{snap['max_tokens']}))"
        )


class UsageLedger:
    """Collects :class:`LLMUsage` records and aggregates them.

    A ledger is attached to an execution context; operators record into it and
    the final :class:`~repro.execution.stats.ExecutionStats` summarizes it.

    Thread-safety contract: :meth:`record` may be called concurrently from
    real worker threads; the record list is guarded by a lock.  To attribute
    records to the operator call that caused them — which the single-threaded
    executors do by slicing the ledger before/after a call, a technique that
    breaks under interleaving — a thread can wrap a call in :meth:`capture`:
    records produced *by that thread* inside the block are additionally
    appended to the capture list.
    """

    _GUARDED_BY = {"_records": "_lock"}

    def __init__(self, budget: Optional[BudgetMeter] = None):
        self._records: List[LLMUsage] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        #: Optional shared :class:`BudgetMeter` every record also charges
        #: (after being appended — accounting is never lost to a quota
        #: abort).  Shared across runs/sessions of one tenant.
        self.budget = budget

    def attach_budget(self, budget: Optional[BudgetMeter]) -> None:
        """Attach (or detach, with ``None``) the shared budget meter."""
        self.budget = budget

    def record(self, usage: LLMUsage) -> None:
        with self._lock:
            self._records.append(usage)
        captures = getattr(self._local, "captures", None)
        if captures:
            for bucket in captures:
                bucket.append(usage)
        # Charged last: the record is in the ledger (and any captures)
        # before a cap breach can raise, so a mid-run quota abort leaves
        # a complete partial-usage trail behind.
        if self.budget is not None:
            self.budget.charge(usage)

    def extend(self, usages: Iterable[LLMUsage]) -> None:
        for usage in usages:
            self.record(usage)

    @contextmanager
    def capture(self) -> Iterator[List[LLMUsage]]:
        """Collect the records this thread produces inside the block.

        Captures nest: an inner capture's records also appear in the outer
        one, exactly like the slicing technique they replace.
        """
        bucket: List[LLMUsage] = []
        captures = getattr(self._local, "captures", None)
        if captures is None:
            captures = self._local.captures = []
        captures.append(bucket)
        try:
            yield bucket
        finally:
            captures.remove(bucket)

    @property
    def records(self) -> List[LLMUsage]:
        with self._lock:
            return list(self._records)

    def _canonical(self) -> List[LLMUsage]:
        """Records in an order that depends only on their multiset.

        Concurrent executors append in thread-arrival order, so float
        aggregation over ``records`` would drift by an ulp run-to-run.
        Sorting by the full value tuple makes every aggregate a pure
        function of *which* calls happened, not when they landed.
        """
        return sorted(
            self.records,
            key=lambda u: (u.model, u.operation, u.virtual_timestamp,
                           u.input_tokens, u.output_tokens, u.cost_usd,
                           u.latency_seconds),
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def total(self) -> UsageTotals:
        totals = UsageTotals()
        for usage in self._canonical():
            totals.add(usage)
        return totals

    def by_model(self) -> Dict[str, UsageTotals]:
        grouped: Dict[str, UsageTotals] = {}
        for usage in self._canonical():
            grouped.setdefault(usage.model, UsageTotals()).add(usage)
        return grouped

    def by_operation(self) -> Dict[str, UsageTotals]:
        grouped: Dict[str, UsageTotals] = {}
        for usage in self._canonical():
            grouped.setdefault(usage.operation, UsageTotals()).add(usage)
        return grouped

    def filtered(self, operation: Optional[str] = None,
                 model: Optional[str] = None) -> "UsageLedger":
        """A new ledger containing only the matching records."""
        ledger = UsageLedger()
        for usage in self.records:
            if operation is not None and usage.operation != operation:
                continue
            if model is not None and usage.model != model:
                continue
            ledger.record(usage)
        return ledger

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def summary_lines(self) -> List[str]:
        """Human-readable per-model summary (used in chat stats output)."""
        lines = []
        for model, totals in sorted(self.by_model().items()):
            lines.append(
                f"{model}: {totals.calls} calls, "
                f"{totals.input_tokens} in / {totals.output_tokens} out tokens, "
                f"${totals.cost_usd:.4f}"
            )
        return lines
