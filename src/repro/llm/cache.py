"""Semantic call caching.

Palimpzest-style systems cache LLM answers: the same model asked the same
question about the same document always gives the same answer, so repeated
pipeline runs (and repeated sub-questions within a run) should not pay
twice.  A :class:`CallCache` keys on
``(model, task kind, task signature, document fingerprint, context
fraction)`` and the client consults it before "calling the model"; hits are
metered as a near-free cache lookup instead of a priced call.

Caching is opt-in (pass a cache to the client / execution context): cost
accounting benchmarks compare cold vs warm runs explicitly.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

CacheKey = Tuple[str, str, str, str, float]

_MISS = object()


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class CallCache:
    """In-memory cache of simulated model answers.

    Args:
        max_entries: evict the least-recently-used entry beyond this many;
            None = unbounded.  A lookup hit refreshes an entry's recency, so
            hot answers survive even when they were stored early.

    Thread-safety contract: lookups and stores are serialized by a lock —
    the LRU reordering (``move_to_end`` + eviction) is a compound mutation
    that would corrupt the OrderedDict under free interleaving.  Answers are
    pure functions of the key, so two threads racing to store the same key
    write the same value; at most the call accounting differs (both priced
    as misses).
    """

    #: Simulated latency of a cache hit, in seconds.
    HIT_LATENCY_SECONDS = 0.002

    #: Lock discipline, checked by pz-lint CC501 and the runtime
    #: sanitizer.  ``stats`` is writes-only: external callers read the
    #: counters lock-free (monotonic ints, staleness is harmless).
    _GUARDED_BY = {
        "_entries": "_lock",
        "stats": ("_lock", "writes"),
    }

    def __init__(self, max_entries: Optional[int] = None):
        if max_entries is not None and max_entries <= 0:
            raise ValueError("max_entries must be positive or None")
        self._entries: "OrderedDict[CacheKey, Any]" = OrderedDict()
        self._max_entries = max_entries
        self._lock = threading.Lock()
        self.stats = CacheStats()

    @staticmethod
    def make_key(model: str, kind: str, task_signature: str,
                 fingerprint: str, context_fraction: float = 1.0) -> CacheKey:
        return (model, kind, task_signature, fingerprint,
                round(context_fraction, 4))

    def lookup(self, key: CacheKey) -> Tuple[bool, Any]:
        """(hit?, value).  Updates hit/miss statistics and LRU recency."""
        with self._lock:
            value = self._entries.get(key, _MISS)
            if value is not _MISS:
                self.stats.hits += 1
                if self._max_entries is not None:
                    self._entries.move_to_end(key)
                return True, value
            self.stats.misses += 1
            return False, None

    def store(self, key: CacheKey, value: Any) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            elif (self._max_entries is not None
                    and len(self._entries) >= self._max_entries):
                self._entries.popitem(last=False)
                self.stats.evictions += 1
            self._entries[key] = value

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()
