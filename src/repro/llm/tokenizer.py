"""A deterministic, dependency-free token counter.

Real systems use BPE tokenizers (tiktoken and friends); for cost accounting we
only need a stable, monotone estimate that tracks text length the way BPE
does.  The heuristic below — whitespace words plus standalone punctuation,
with long words splitting into ~4-character subword chunks — lands within
~10% of tiktoken on English prose, which is plenty for reproducing *relative*
costs across models and plans.
"""

from __future__ import annotations

import re

from repro.llm.memo import TextMemo, register_memo

# Words, numbers, or single punctuation marks.
_TOKEN_RE = re.compile(r"[A-Za-z0-9_]+|[^\sA-Za-z0-9_]")

# Average characters per subword chunk for long words (BPE splits rare/long
# words into multiple tokens).
_SUBWORD_CHARS = 4

#: Memo of text -> token count: a record's document is counted by every
#: (model x operator x strategy) call that sees it, but the count is a pure
#: function of the text.
_count_memo = register_memo(TextMemo("count_tokens"))


def _count_tokens_uncached(text: str) -> int:
    total = 0
    for match in _TOKEN_RE.finditer(text):
        piece = match.group(0)
        if len(piece) <= _SUBWORD_CHARS or not piece[0].isalnum():
            total += 1
        else:
            # Long alphanumeric word: split into subword chunks.
            total += (len(piece) + _SUBWORD_CHARS - 1) // _SUBWORD_CHARS
    return total


def count_tokens(text: str) -> int:
    """Count simulated tokens in ``text`` (memoized on the text).

    >>> count_tokens("")
    0
    >>> count_tokens("hello world") >= 2
    True
    """
    if not text:
        return 0
    return _count_memo.get_or_compute(text, _count_tokens_uncached)


def split_into_token_chunks(text: str, max_tokens: int) -> list:
    """Split ``text`` into consecutive chunks of at most ``max_tokens``.

    Used by the chunked (map-reduce) convert strategy for documents that do
    not fit a model's context window.  Chunks are non-empty prefixes cut on
    token boundaries; their concatenation is a prefix-preserving cover of
    the original text.
    """
    if max_tokens <= 0:
        raise ValueError(f"max_tokens must be positive, got {max_tokens}")
    chunks = []
    remaining = text
    while remaining:
        chunk = truncate_to_tokens(remaining, max_tokens)
        if not chunk:
            # A single token exceeds the budget; hard-cut to make progress.
            chunk = remaining[: max_tokens * _SUBWORD_CHARS]
        chunks.append(chunk)
        remaining = remaining[len(chunk):]
        if remaining and not remaining.strip():
            break
    return chunks


def truncate_to_tokens(text: str, max_tokens: int) -> str:
    """Return the longest prefix of ``text`` with at most ``max_tokens`` tokens.

    Used by token-reduction physical operators that trade quality for cost by
    sending the model a truncated context.
    """
    if max_tokens <= 0:
        return ""
    if count_tokens(text) <= max_tokens:
        return text
    used = 0
    end = 0
    for match in _TOKEN_RE.finditer(text):
        piece = match.group(0)
        if len(piece) <= _SUBWORD_CHARS or not piece[0].isalnum():
            cost = 1
        else:
            cost = (len(piece) + _SUBWORD_CHARS - 1) // _SUBWORD_CHARS
        if used + cost > max_tokens:
            break
        used += cost
        end = match.end()
    return text[:end]
