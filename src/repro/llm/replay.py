"""Persisted LLM call log: capture on a base run, replay on a re-run.

Incremental execution (:mod:`repro.execution.incremental`) re-runs a plan
through the *same* executor as a cold run, but serves LLM calls whose
(model, task, document) identity already appears in a prior run's call log
from that log instead of "calling the model".  A replayed call charges the
clock and ledger exactly what the cold call would have charged — recomputed
from the recorded token counts through the model card's pure pricing
functions — so records, stats, traces, and provenance come out
byte-identical to a cold run.  What replay *saves* is tallied separately:
the re-run's own bill (its :class:`~repro.execution.incremental
.IncrementalReport`) counts only the fresh calls, the simulated analogue of
serving unchanged derivations from a result store instead of the provider.

A :class:`ReplayLog` plays both roles:

* **capture** — every fresh call records ``key -> (value, token counts)``;
  the registry persists the log as ``calls.json`` next to the run.
* **replay** — a log primed from a prior run's ``calls.json`` answers
  lookups; hits are tallied as *reused* spend.

Keys extend the :class:`~repro.llm.cache.CallCache` identity (model, task
kind, task signature, document fingerprint, context fraction) with the
operation label, so two operators asking the same question never share an
entry with mismatched accounting.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["CallRecord", "ReplayLog", "ReuseSummary"]

#: (model, kind, task signature, document fingerprint, context fraction,
#: operation label)
ReplayKey = Tuple[str, str, str, str, float, str]


@dataclass(frozen=True)
class CallRecord:
    """One captured call: the answer plus its batch-invariant token counts.

    Latency and cost are *not* stored: both are pure functions of the token
    counts and the model card, and latency additionally depends on the
    replaying run's batch composition (overhead amortization), so they are
    recomputed at replay time through the exact code path a cold call uses.
    """

    value: Any
    input_tokens: int
    output_tokens: int


@dataclass
class ReuseSummary:
    """Deterministic totals over the replayed (reused) calls of one run."""

    calls: int = 0
    cost_usd: float = 0.0
    seconds: float = 0.0
    input_tokens: int = 0
    output_tokens: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "calls": self.calls,
            "cost_usd": round(self.cost_usd, 6),
            "seconds": round(self.seconds, 3),
            "input_tokens": self.input_tokens,
            "output_tokens": self.output_tokens,
        }


def _normalize_value(value: Any) -> Any:
    """JSON round-trip, matching what a disk-persisted log would return.

    Priming from memory and priming from ``calls.json`` must hand the
    operators identical payloads, so values are normalized at capture
    serialization time rather than lazily on load.
    """
    return json.loads(json.dumps(value, default=str))


class ReplayLog:
    """Thread-safe LLM call log (see module docstring).

    The primed entry table is frozen at construction and read lock-free by
    executor worker threads (single dict lookups of immutable records);
    capture and reuse tallies are compound mutations and take the lock.
    """

    _GUARDED_BY = {
        "_captured": "_lock",
        "_reused": "_lock",
    }

    def __init__(self, entries: Optional[Dict[ReplayKey, CallRecord]] = None):
        #: Frozen after construction — never mutated, so worker threads
        #: read it without locking.
        self._entries: Dict[ReplayKey, CallRecord] = dict(entries or {})
        self._captured: Dict[ReplayKey, CallRecord] = {}
        #: (sortable key string, cost, seconds, in_tokens, out_tokens) per
        #: replayed call; totals are summed in sorted order so float
        #: accumulation is independent of thread arrival order.
        self._reused: List[Tuple[str, float, float, int, int]] = []
        self._lock = threading.Lock()

    # -- key construction ----------------------------------------------

    @staticmethod
    def make_key(model: str, kind: str, task_signature: str,
                 fingerprint: str, context_fraction: float,
                 operation: str) -> ReplayKey:
        return (model, kind, task_signature, fingerprint,
                round(context_fraction, 4), operation)

    @staticmethod
    def judge_key(model: str, request, fingerprint: str) -> ReplayKey:
        return ReplayLog.make_key(
            model, "judge", request.predicate.lower(), fingerprint,
            request.context_fraction, request.operation,
        )

    @staticmethod
    def extract_key(model: str, request, fingerprint: str) -> ReplayKey:
        signature = "|".join(sorted(request.fields)) + (
            "|1:N" if request.one_to_many else "|1:1"
        )
        return ReplayLog.make_key(
            model, "extract", signature, fingerprint,
            request.context_fraction, request.operation,
        )

    # -- replay ---------------------------------------------------------

    @property
    def primed(self) -> bool:
        """Does this log hold prior-run entries to replay from?"""
        return bool(self._entries)

    def lookup(self, key: ReplayKey) -> Optional[CallRecord]:
        """The prior run's record for ``key``, or None (fresh call)."""
        return self._entries.get(key)

    def note_reuse(self, key: ReplayKey, cost_usd: float, seconds: float,
                   input_tokens: int, output_tokens: int) -> None:
        """Tally one replayed call's cold-equivalent accounting."""
        sort_key = "".join(str(part) for part in key)
        with self._lock:
            self._reused.append(
                (sort_key, cost_usd, seconds, input_tokens, output_tokens)
            )

    def reused_summary(self) -> ReuseSummary:
        """Deterministic totals over every replayed call so far."""
        with self._lock:
            rows = sorted(self._reused)
        summary = ReuseSummary()
        for _, cost, seconds, in_tokens, out_tokens in rows:
            summary.calls += 1
            summary.cost_usd += cost
            summary.seconds += seconds
            summary.input_tokens += in_tokens
            summary.output_tokens += out_tokens
        return summary

    # -- capture --------------------------------------------------------

    def record(self, key: ReplayKey, value: Any, input_tokens: int,
               output_tokens: int) -> None:
        """Capture one call of *this* run (fresh or replayed).

        Answers are pure functions of the key, so concurrent writers racing
        on the same key store equal records.
        """
        entry = CallRecord(value, input_tokens, output_tokens)
        with self._lock:
            self._captured[key] = entry

    def __len__(self) -> int:
        with self._lock:
            return len(self._captured)

    # -- (de)serialization ----------------------------------------------

    def to_payload(self) -> List[Dict[str, Any]]:
        """JSON-ready call log of this run, sorted for determinism."""
        with self._lock:
            items = dict(self._captured)
        rows = []
        for key in sorted(items, key=lambda k: tuple(str(p) for p in k)):
            entry = items[key]
            rows.append({
                "key": list(key),
                "value": _normalize_value(entry.value),
                "input_tokens": entry.input_tokens,
                "output_tokens": entry.output_tokens,
            })
        return rows

    @classmethod
    def from_payload(cls, payload) -> "ReplayLog":
        """Prime a log from a persisted ``calls.json`` payload."""
        entries: Dict[ReplayKey, CallRecord] = {}
        for row in payload or []:
            raw = row["key"]
            key = (str(raw[0]), str(raw[1]), str(raw[2]), str(raw[3]),
                   float(raw[4]), str(raw[5]))
            entries[key] = CallRecord(
                value=row["value"],
                input_tokens=int(row["input_tokens"]),
                output_tokens=int(row["output_tokens"]),
            )
        return cls(entries)
